"""Shared fixtures for the benchmark harness.

The full study is expensive, so one session-scoped run (the dedicated
``StudyConfig.bench()`` preset, ~1:10000) backs every table/figure
benchmark; each benchmark
then times the analysis step that regenerates its table or figure, asserts
the paper's qualitative shape, and writes the rendered artifact to
``benchmarks/output/``.

The shared study runs with telemetry enabled, and its RunReport is written
to ``benchmarks/output/run_report.json`` — so every benchmark session also
leaves behind the per-stage wall/CPU breakdown (schema:
``docs/TELEMETRY.md``) alongside the rendered tables and figures.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.pipeline import run_study
from repro.studyconfig import StudyConfig
from repro.telemetry import Telemetry

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_config() -> StudyConfig:
    """The configuration behind the benchmark study."""
    return StudyConfig.bench(seed=2016)


@pytest.fixture(scope="session")
def study(bench_config):
    """One full study shared by all table/figure benchmarks.

    Runs instrumented and writes the telemetry report artifact so
    benchmark trajectories gain per-stage breakdowns.
    """
    result = run_study(bench_config, telemetry=Telemetry())
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "run_report.json").write_text(
        result.telemetry.to_json() + "\n"
    )
    return result


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    """Where rendered tables/figures are written."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_artifact(directory: pathlib.Path, name: str, content: str) -> None:
    """Persist one rendered table/figure."""
    (directory / f"{name}.txt").write_text(content + "\n")
