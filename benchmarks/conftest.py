"""Shared fixtures for the benchmark harness.

The full study is expensive, so one session-scoped run (the dedicated
``StudyConfig.bench()`` preset, ~1:10000) backs every table/figure
benchmark; each benchmark
then times the analysis step that regenerates its table or figure, asserts
the paper's qualitative shape, and writes the rendered artifact to
``benchmarks/output/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.pipeline import run_study
from repro.studyconfig import StudyConfig

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_config() -> StudyConfig:
    """The configuration behind the benchmark study."""
    return StudyConfig.bench(seed=2016)


@pytest.fixture(scope="session")
def study(bench_config):
    """One full study shared by all table/figure benchmarks."""
    return run_study(bench_config)


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    """Where rendered tables/figures are written."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_artifact(directory: pathlib.Path, name: str, content: str) -> None:
    """Persist one rendered table/figure."""
    (directory / f"{name}.txt").write_text(content + "\n")
