"""Helpers shared by the per-vendor figure benchmarks."""

from __future__ import annotations

from repro.analysis.timeseries import VendorSeries
from repro.pipeline import StudyResult
from repro.reporting.study import render_vendor_figure
from repro.timeline import Month


def series_for(study: StudyResult, vendor: str) -> VendorSeries:
    """The vendor's series; fails loudly when the vendor was never seen."""
    series = study.series.vendor(vendor)
    assert series.points, f"no observations for {vendor}"
    return series


def regenerate(benchmark, study: StudyResult, vendor: str, figure: str) -> str:
    """Benchmark the figure regeneration and return the rendering."""
    return benchmark(render_vendor_figure, study, vendor, figure)


def values_between(
    series: VendorSeries, start: Month, end: Month, vulnerable: bool = True
) -> list[float]:
    """Series values (vulnerable or total) for months in [start, end]."""
    return [
        (p.vulnerable if vulnerable else p.total)
        for p in series.points
        if start <= p.month <= end
    ]
