"""Ablations for the design choices DESIGN.md calls out.

1. **Chain reconstruction** (Section 3.1): without it, Rapid7-era scans
   inflate host-record and distinct-certificate counts with unchained
   intermediate CA certificates — "in order to better correlate our
   results across datasets, we excluded these intermediate certificates".
2. **Shared-prime extrapolation** (Section 3.3.2): without it, IP-only
   subjects (a large share of Fritz!Box) and owner-named IBM cards stay
   unattributed, shrinking every vendor series built on them.
3. **Artifact triage** (Sections 3.3.3/3.3.5): without it, bit-error
   moduli and the Rimon substitution key would count as "vulnerable
   keygen", polluting vendor prime pools and the OpenSSL fingerprint.
"""

import random

import pytest

from repro.devices.models import (
    DeviceModel,
    KeygenKind,
    KeygenSpec,
    PopulationSchedule,
    SubjectStyle,
)
from repro.devices.population import IpAllocator, ModelPopulation
from repro.entropy.keygen import WeakKeyFactory
from repro.numt.sieve import first_n_primes
from repro.scans.background import build_ca_pool
from repro.scans.records import CertificateStore
from repro.scans.scanner import HttpsScanner, reconstruct_chains
from repro.scans.sources import ScanSource
from repro.timeline import Month

from conftest import write_artifact

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)


def _rapid7_like_scan():
    table = first_n_primes(65)[1:]
    factory = WeakKeyFactory(seed=11, prime_bits=48, openssl_table=table)
    ca_pool = build_ca_pool(random.Random(1), count=4, key_bits=96)
    model = DeviceModel(
        model_id="ablation-web",
        vendor="Juniper",
        subject_style=SubjectStyle.WEB_SERVER,
        keygen=KeygenSpec(kind=KeygenKind.HEALTHY, profile_id="ablation-web"),
        schedule=PopulationSchedule(points=((Month(2014, 1), 400),)),
    )
    population = ModelPopulation(
        model=model, divisor=1, factory=factory,
        allocator=IpAllocator(random.Random(2)), rng=random.Random(3),
        ca_pool=ca_pool, ca_fraction=0.7,
    )
    population.step(Month(2014, 1))
    store = CertificateStore()
    scanner = HttpsScanner(store, random.Random(4), ca_pool=ca_pool)
    source = ScanSource(
        name="Rapid7", first=Month(2014, 2), last=Month(2015, 6),
        coverage=1.0, includes_unchained_intermediates=True,
    )
    snapshot = scanner.scan(Month(2014, 6), source, [(population, False)])
    return snapshot, store, population


def test_chain_reconstruction_ablation(benchmark, artifact_dir):
    snapshot, store, population = _rapid7_like_scan()
    hosts = population.online_count()
    inflated = snapshot.host_count
    removed = benchmark.pedantic(
        reconstruct_chains, args=(snapshot, store), rounds=1, iterations=1
    )
    lines = [
        f"true hosts                 {hosts}",
        f"records without exclusion  {inflated}",
        f"intermediates removed      {removed}",
        f"records after exclusion    {snapshot.host_count}",
    ]
    write_artifact(artifact_dir, "ablation_chain_reconstruction", "\n".join(lines))
    # Without reconstruction the record count is visibly inflated...
    assert inflated > hosts * 1.15
    # ...and with it, the artifact is fully removed.
    assert snapshot.host_count == hosts


def test_extrapolation_ablation(benchmark, study, artifact_dir):
    from repro.fingerprint.sharedprimes import extrapolate_vendors

    report = study.fingerprints
    # Re-run the extrapolation step in isolation (the ablated mechanism).
    subject_only = {
        n: vendor
        for n, vendor in report.vendor_by_modulus.items()
        if n not in report.extrapolated_moduli
    }
    rerun = benchmark.pedantic(
        extrapolate_vendors,
        args=(report.factored_clean, subject_only),
        rounds=1,
        iterations=1,
    )
    assert set(rerun) == set(report.extrapolated_moduli)
    extrapolated_certs = report.rule_counts["shared-primes"]
    subject_certs = sum(
        count for rule, count in report.rule_counts.items()
        if rule != "shared-primes"
    )
    lines = [
        f"certificates labelled by subject/banner rules  {subject_certs}",
        f"additional via shared-prime extrapolation      {extrapolated_certs}",
        f"extrapolated moduli                            "
        f"{len(report.extrapolated_moduli)}",
    ]
    write_artifact(artifact_dir, "ablation_extrapolation", "\n".join(lines))
    # The extrapolation contributes real coverage (IP-only Fritz!Box,
    # owner-named IBM cards).
    assert extrapolated_certs > 0
    assert len(report.extrapolated_moduli) > 0


def test_artifact_triage_ablation(benchmark, study, artifact_dir):
    from repro.fingerprint.anomalies import detect_bit_errors

    corpus = set(study.batch_result.moduli)
    findings = benchmark.pedantic(
        detect_bit_errors, args=(study.batch_result, corpus),
        rounds=1, iterations=1,
    )
    assert {f.modulus for f in findings} == {
        f.modulus for f in study.fingerprints.bit_errors
    }
    flagged = set(study.batch_result.vulnerable_moduli)
    clean = set(study.fingerprints.factored_clean)
    resolved = set(study.batch_result.resolve())
    junk = resolved - clean
    lines = [
        f"moduli flagged by batch GCD     {len(flagged)}",
        f"resolved into factors           {len(resolved)}",
        f"well-formed weak keys           {len(clean)}",
        f"artifacts triaged out           {len(junk)}",
    ]
    write_artifact(artifact_dir, "ablation_artifact_triage", "\n".join(lines))
    # Without triage, artifacts would inflate the vulnerable count.
    assert junk
    # Triage never discards a true weak key.
    assert clean <= study.weak_moduli_truth
    assert not (junk & study.weak_moduli_truth)
