"""Section 3.2 performance claim: the k-subset cluster trade-off.

The paper ran k=16 across a 22-machine cluster in 86 minutes (1,089 CPU
hours) versus 500 minutes for the unmodified single-machine algorithm —
more total work, less wall-clock.  At simulation scale we measure the same
two quantities over the *study corpus itself* and check the directions:
CPU time grows with k; with worker processes, wall time at k>1 beats the
serial single-tree time for large enough corpora.
"""

import pytest

from repro.core.batchgcd import batch_gcd
from repro.core.clustered import ClusteredBatchGcd

from conftest import write_artifact

#: The sweep runs on a deterministic subsample of the study corpus so the
#: five k-values complete in minutes; the trade-off directions are scale-
#: independent.
SWEEP_CORPUS_SIZE = 8_000


def _sweep_corpus(study):
    corpus = study.batch_result.moduli
    stride = max(1, len(corpus) // SWEEP_CORPUS_SIZE)
    return corpus[::stride]


@pytest.fixture(scope="module")
def sweep(study):
    """The subsampled corpus and its classic-engine baseline, computed once."""
    corpus = _sweep_corpus(study)
    return corpus, batch_gcd(corpus).vulnerable_indices


@pytest.mark.parametrize("k", [1, 2, 4, 8, 16])
def test_k_sweep_on_study_corpus(benchmark, sweep, k):
    corpus, expected = sweep
    engine = ClusteredBatchGcd(k=k)
    result = benchmark.pedantic(engine.run, args=(corpus,), rounds=1, iterations=1)
    assert result.vulnerable_indices == expected


def test_parallel_speedup_with_processes(benchmark, sweep, artifact_dir):
    corpus, _expected = sweep
    lines = ["engine                wall(s)  cpu(s)"]
    serial = ClusteredBatchGcd(k=1)
    serial_result = serial.run(corpus)
    serial_stats = serial.last_stats
    lines.append(
        f"classic (k=1)        {serial_stats.wall_seconds:7.2f} "
        f"{serial_stats.cpu_seconds:7.2f}"
    )
    parallel = ClusteredBatchGcd(k=8, processes=4)
    result = benchmark.pedantic(
        parallel.run, args=(corpus,), rounds=1, iterations=1
    )
    stats = parallel.last_stats
    lines.append(
        f"clustered k=8, 4 ps  {stats.wall_seconds:7.2f} {stats.cpu_seconds:7.2f}"
    )
    write_artifact(artifact_dir, "k_sweep_parallel", "\n".join(lines))
    assert result.vulnerable_indices == serial_result.vulnerable_indices
    # The paper's direction: clustered does more total work...
    assert stats.cpu_seconds > serial_stats.cpu_seconds * 0.8
    # ...but parallelism keeps wall time in the same league or better.
    assert stats.wall_seconds < serial_stats.wall_seconds * 2.0
