"""Before/after benchmark for the clustered batch-GCD task-graph overhaul.

Measures the two schedulers of :class:`repro.core.clustered.ClusteredBatchGcd`
against each other and against the naive / classic engines, and emits
``BENCH_batchgcd.json`` — the committed perf-trajectory artifact proving the
streaming task graph's win:

- **fanout** (the original driver): every task payload carries its whole
  subset and product (k**2 big-int serialisations) and rebuilds its
  subset's product tree from scratch (k**2 builds);
- **streaming** (the overhaul): per-subset trees built once, one-shot
  worker broadcast, index-pair task payloads, bounded in-flight window;
- **alltoall** (the sharded engine): compact per-shard products exchanged
  all-to-all, foreign passes served by gcd-descent instead of a full
  remainder tree — the ``crossover`` section records where it meets the
  streaming scheduler (n=600 vs the full corpus).

Scale is selected by ``REPRO_BENCH_BATCHGCD_SCALE``:

- ``bench`` (default): the committed-artifact scale — 8 000 moduli from a
  48-bit prime pool, k=128, 2 workers, 3 repetitions (medians).
- ``smoke``: CI-sized (seconds); same legs, no speedup assertion (a loaded
  shared runner cannot honestly assert a ratio), telemetry overhead budget
  still enforced.

Timing uses ``time.perf_counter`` directly: benchmarks are exempt from the
determinism linter by design (they measure, they don't simulate).
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import random
import statistics
import time

import pytest

from repro.core.alltoall import AllToAllBatchGcd
from repro.core.batchgcd import batch_gcd
from repro.core.clustered import ClusteredBatchGcd
from repro.core.naive import naive_pairwise_gcd
from repro.crypto.primes import generate_prime
from repro.numt.backend import available_backends
from repro.numt.trees import product_tree
from repro.telemetry import Telemetry, use_telemetry

from conftest import OUTPUT_DIR

REPO_ROOT = pathlib.Path(__file__).parent.parent

SCALE = os.environ.get("REPRO_BENCH_BATCHGCD_SCALE", "bench")

#: Per-scale knobs: corpus size, prime bits, subset count, workers, reps,
#: and the subsample size for the (quadratic) naive-engine leg.
PARAMS = {
    "bench": dict(
        moduli=8_000, prime_bits=48, k=128, processes=2, reps=3, subsample=600
    ),
    "smoke": dict(
        moduli=400, prime_bits=32, k=16, processes=2, reps=1, subsample=200
    ),
}[SCALE]


def _make_corpus(n: int, bits: int, seed: int = 2016) -> list[int]:
    """A benchmark corpus shaped like the study's: mostly-unique semiprimes
    with a small shared-prime pool injecting vulnerable cliques (~2%)."""
    rng = random.Random(seed)
    shared_pool = [generate_prime(bits, rng) for _ in range(max(8, n // 100))]
    corpus = []
    for i in range(n):
        if i % 50 == 0:
            p, q = rng.sample(shared_pool, 2)
        else:
            p = generate_prime(bits, rng)
            q = generate_prime(bits, rng)
        corpus.append(p * q)
    rng.shuffle(corpus)
    return corpus


@pytest.fixture(scope="module")
def corpus():
    return _make_corpus(PARAMS["moduli"], PARAMS["prime_bits"])


@pytest.fixture(scope="module")
def subsample(corpus):
    stride = max(1, len(corpus) // PARAMS["subsample"])
    return corpus[::stride]


@pytest.fixture(scope="module")
def bench_record():
    """Accumulates every leg's measurements; dumped to JSON at teardown."""
    record = {
        "schema": "bench-batchgcd/1",
        "scale": SCALE,
        "params": dict(PARAMS),
        "backends_available": available_backends(),
        "engines": {},
        "headline": {},
        "crossover": {},
        "ipc": {},
        "telemetry_overhead": {},
    }
    yield record
    OUTPUT_DIR.mkdir(exist_ok=True)
    payload = json.dumps(record, indent=2, sort_keys=True) + "\n"
    (OUTPUT_DIR / "BENCH_batchgcd.json").write_text(payload)
    if SCALE == "bench":
        (REPO_ROOT / "BENCH_batchgcd.json").write_text(payload)


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def test_all_engines_agree_and_are_recorded(subsample, bench_record):
    """naive vs classic vs both clustered schedulers: identical verdicts."""
    legs = {
        "naive": lambda m: naive_pairwise_gcd(m),
        "classic": lambda m: batch_gcd(m),
        "clustered_fanout": lambda m: ClusteredBatchGcd(
            k=8, scheduler="fanout"
        ).run(m),
        "clustered_streaming": lambda m: ClusteredBatchGcd(
            k=8, scheduler="streaming"
        ).run(m),
        "clustered_streaming_pool": lambda m: ClusteredBatchGcd(
            k=8, processes=PARAMS["processes"], scheduler="streaming"
        ).run(m),
        "alltoall": lambda m: AllToAllBatchGcd(shards=8).run(m),
        "alltoall_pool": lambda m: AllToAllBatchGcd(
            shards=8, processes=PARAMS["processes"]
        ).run(m),
    }
    reference = None
    divisors = {}
    for name, run in legs.items():
        result, wall = _timed(run, subsample)
        bench_record["engines"][name] = {
            "wall_seconds": round(wall, 4),
            "moduli": len(subsample),
            "vulnerable": result.vulnerable_count(),
        }
        divisors[name] = result.divisors
        flags = [d > 1 for d in result.divisors]
        if reference is None:
            reference = flags
        assert flags == reference, f"{name} disagrees with naive"
    # Stronger than flag parity: shards=8 mirrors the k=8 subset
    # decomposition, so the divisor lists must be byte-identical.
    assert divisors["alltoall"] == divisors["clustered_streaming"]
    assert divisors["alltoall_pool"] == divisors["clustered_streaming"]


def test_backends_identical_results(subsample, bench_record):
    """Every importable big-int backend produces identical divisors.

    The all-to-all engine runs the same sweep (at ``shards=8``, matching
    the streaming legs' ``k=8``), so its divisors must also be identical
    across backends *and* to the streaming reference.
    """
    reference = None
    for name in ("python", "gmpy2"):
        if name not in available_backends():
            bench_record["engines"][f"streaming_backend_{name}"] = "unavailable"
            bench_record["engines"][f"alltoall_backend_{name}"] = "unavailable"
            continue
        engine = ClusteredBatchGcd(k=8, scheduler="streaming", backend=name)
        result, wall = _timed(engine.run, subsample)
        bench_record["engines"][f"streaming_backend_{name}"] = {
            "wall_seconds": round(wall, 4),
            "cpu_seconds": round(engine.last_stats.cpu_seconds, 4),
        }
        if reference is None:
            reference = result.divisors
        assert result.divisors == reference, f"backend {name} diverges"
        alltoall = AllToAllBatchGcd(shards=8, backend=name)
        result, wall = _timed(alltoall.run, subsample)
        bench_record["engines"][f"alltoall_backend_{name}"] = {
            "wall_seconds": round(wall, 4),
            "cpu_seconds": round(alltoall.last_stats.cpu_seconds, 4),
        }
        assert result.divisors == reference, f"alltoall backend {name} diverges"


def test_ipc_payload_asymmetry(corpus, bench_record):
    """Streaming tasks are index pairs; fanout payloads carry the corpus."""
    k = PARAMS["k"]
    engine = ClusteredBatchGcd(
        k=k, processes=PARAMS["processes"], scheduler="streaming"
    )
    telemetry = Telemetry()
    with use_telemetry(telemetry), telemetry.span("bench"):
        engine.run(corpus)
    stats = engine.last_stats
    # What the fanout driver would have pickled for the same run: every
    # task tuple with its embedded subset and product.
    subsets = [corpus[s::k] for s in range(k)]
    products = [product_tree(s)[-1][0] for s in subsets]
    fanout_bytes = sum(
        len(pickle.dumps((i, j, subsets[i], products[j], i == j, False, "python")))
        for i in range(k)
        for j in range(k)
    )
    bench_record["ipc"] = {
        "streaming_broadcast_bytes": stats.ipc_broadcast_bytes,
        "streaming_task_bytes": stats.ipc_task_bytes,
        "fanout_task_bytes": fanout_bytes,
        "tasks": stats.tasks,
    }
    assert stats.ipc_task_bytes < 100 * stats.tasks
    assert stats.ipc_task_bytes * 10 < fanout_bytes


def test_headline_pooled_speedup(corpus, bench_record):
    """The committed number: pooled streaming vs pooled fanout, medians."""
    k, processes, reps = PARAMS["k"], PARAMS["processes"], PARAMS["reps"]
    walls = {"fanout": [], "streaming": []}
    cpus = {"fanout": [], "streaming": []}
    results = {}
    for rep in range(reps):
        for scheduler in ("fanout", "streaming"):
            engine = ClusteredBatchGcd(
                k=k, processes=processes, scheduler=scheduler
            )
            result, wall = _timed(engine.run, corpus)
            walls[scheduler].append(wall)
            cpus[scheduler].append(engine.last_stats.cpu_seconds)
            results[scheduler] = result.divisors
    assert results["streaming"] == results["fanout"]
    fanout_wall = statistics.median(walls["fanout"])
    streaming_wall = statistics.median(walls["streaming"])
    speedup = fanout_wall / streaming_wall
    bench_record["headline"] = {
        "k": k,
        "processes": processes,
        "moduli": len(corpus),
        "reps": reps,
        "fanout_wall_seconds": round(fanout_wall, 4),
        "streaming_wall_seconds": round(streaming_wall, 4),
        "fanout_cpu_seconds": round(statistics.median(cpus["fanout"]), 4),
        "streaming_cpu_seconds": round(statistics.median(cpus["streaming"]), 4),
        "fanout_walls": [round(w, 4) for w in walls["fanout"]],
        "streaming_walls": [round(w, 4) for w in walls["streaming"]],
        "speedup": round(speedup, 4),
    }
    if SCALE == "bench":
        # Committed-artifact criterion is >= 1.5x; assert with noise
        # headroom so a loaded machine doesn't flake the suite.
        assert speedup >= 1.2, f"streaming speedup regressed: {speedup:.2f}x"


def test_alltoall_crossover(corpus, bench_record):
    """Where the sharded all-to-all engine meets the streaming scheduler.

    Records a ``crossover`` entry per corpus size (``n600`` and the full
    corpus, ``n8000`` at bench scale): median walls for streaming ``k=8``
    vs all-to-all ``shards=8`` and their ratio.  The compact-product
    exchange pays off as the corpus grows — foreign passes gcd-descend
    into a shard tree instead of computing a full remainder tree — so the
    ratio should move in the all-to-all engine's favour from the small
    size to the large one.  Divisor equality is asserted at every size;
    the trend is recorded, not asserted (a loaded runner cannot honestly
    assert a ratio).
    """
    reps = PARAMS["reps"]
    sizes = [PARAMS["subsample"], len(corpus)]
    for size in sizes:
        moduli = corpus if size == len(corpus) else _make_corpus(
            size, PARAMS["prime_bits"]
        )
        walls = {"clustered_streaming": [], "alltoall": []}
        results = {}
        for _ in range(reps):
            engine = ClusteredBatchGcd(k=8, scheduler="streaming")
            result, wall = _timed(engine.run, moduli)
            walls["clustered_streaming"].append(wall)
            results["clustered_streaming"] = result
            engine = AllToAllBatchGcd(shards=8)
            result, wall = _timed(engine.run, moduli)
            walls["alltoall"].append(wall)
            results["alltoall"] = result
        assert (
            results["alltoall"].divisors
            == results["clustered_streaming"].divisors
        ), f"alltoall diverges from clustered_streaming at n={size}"
        clustered_wall = statistics.median(walls["clustered_streaming"])
        alltoall_wall = statistics.median(walls["alltoall"])
        bench_record["crossover"][f"n{size}"] = {
            "moduli": size,
            "k": 8,
            "shards": 8,
            "reps": reps,
            "clustered_streaming_wall_seconds": round(clustered_wall, 4),
            "alltoall_wall_seconds": round(alltoall_wall, 4),
            "alltoall_over_clustered": round(alltoall_wall / clustered_wall, 4),
            "vulnerable": results["alltoall"].vulnerable_count(),
        }


def test_telemetry_overhead_budget(subsample, bench_record):
    """Instrumentation must not dominate: generous 2x + slack budget."""
    engine = ClusteredBatchGcd(k=8, scheduler="streaming")
    _, plain_wall = _timed(engine.run, subsample)
    telemetry = Telemetry()
    with use_telemetry(telemetry), telemetry.span("bench"):
        _, instrumented_wall = _timed(engine.run, subsample)
    bench_record["telemetry_overhead"] = {
        "plain_wall_seconds": round(plain_wall, 4),
        "instrumented_wall_seconds": round(instrumented_wall, 4),
    }
    assert instrumented_wall <= plain_wall * 2.0 + 0.5
