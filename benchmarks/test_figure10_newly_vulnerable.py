"""Figure 10: products that became vulnerable *after* the 2012 disclosure.

Paper shape: ADTRAN, D-Link, Huawei, Sangfor and Schmid Telecom had few or
no vulnerable hosts in 2012 but ramped afterwards — Huawei's first
vulnerable hosts appear April 2015; D-Link's population "has since
increased dramatically"; these ramps drive Figure 1's late rise.
"""

import pytest

from repro.reporting.study import render_vendor_figure
from repro.timeline import STUDY_END, Month

from conftest import write_artifact
from figutil import series_for, values_between

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)

FIGURE10_VENDORS = ("ADTRAN", "D-Link", "Huawei", "Sangfor", "Schmid Telecom")

#: Vendors whose late ramps survive the simulation's resolution floor
#: (ADTRAN's ~180 and Sangfor's ~15 paper-scale vulnerable hosts are noisy
#: at bench scale; see EXPERIMENTS.md deviation D4).
RAMP_ASSERTED = ("D-Link", "Huawei", "Schmid Telecom")


def test_figure10_regeneration(benchmark, study, artifact_dir):
    def render_all():
        return [
            render_vendor_figure(study, vendor, "Figure 10")
            for vendor in FIGURE10_VENDORS
        ]

    renderings = benchmark(render_all)
    write_artifact(
        artifact_dir, "figure10_newly_vulnerable", "\n\n".join(renderings)
    )

    # No meaningful vulnerable population in 2012 compared to the ramp.
    for vendor in FIGURE10_VENDORS:
        series = series_for(study, vendor)
        in_2012 = values_between(series, Month(2012, 1), Month(2012, 12))
        late = values_between(series, Month(2015, 6), STUDY_END)
        if not in_2012 or not late:
            continue
        assert max(in_2012) <= max(max(late) * 0.35, 1.0), vendor

    # Dramatic late ramps for the resolvable vendors.
    for vendor in RAMP_ASSERTED:
        series = series_for(study, vendor)
        late = values_between(series, Month(2015, 6), STUDY_END)
        assert max(late) > 0, vendor
        assert series.points[-1].vulnerable > 0, vendor

    # Huawei: first vulnerable hosts no earlier than April 2015 (§4.4).
    series = series_for(study, "Huawei")
    first = next((p.month for p in series.points if p.vulnerable > 0), None)
    assert first is not None
    assert first >= Month(2015, 4)

    # D-Link's ramp dwarfs its 2012 level.
    series = series_for(study, "D-Link")
    in_2012 = max(values_between(series, Month(2012, 1), Month(2012, 12)))
    peak = max(series.vulnerable())
    assert peak > max(in_2012 * 3, 5_000)
