"""Figure 1: total HTTPS hosts and factorable hosts over six years.

Paper shape: totals grow from ~11 M (EFF 2010) to ~38-40 M (Censys 2016)
with visible methodology artifacts between eras; vulnerable hosts climb
into 2012-2014, drop sharply around Heartbleed (April 2014), then climb
again late in the study as newly vulnerable products (Figure 10) appear.
"""

import pytest

from repro.analysis.timeseries import build_series
from repro.reporting.study import render_figure1
from repro.timeline import HEARTBLEED, Month

from conftest import write_artifact

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)


def test_figure1_regeneration(benchmark, study, artifact_dir):
    series = benchmark(
        build_series,
        study.snapshots,
        study.store,
        study.fingerprints.vendor_by_cert,
        study.vulnerable_moduli(),
    )
    write_artifact(artifact_dir, "figure1", render_figure1(study))
    overall = series.overall

    # Totals triple over the study window.
    assert overall.points[-1].total > 2.3 * overall.points[0].total

    # The single largest vulnerable drop is at (or within a month of)
    # Heartbleed — the paper's headline observation.
    month, drop = overall.largest_drop(vulnerable=True)
    assert abs(month - HEARTBLEED) <= 1, f"largest drop at {month}"
    assert drop > 0

    # Vulnerable counts rise again after 2015 (newly vulnerable vendors).
    post_2015 = [p.vulnerable for p in overall.points if p.month >= Month(2015, 7)]
    trough = min(
        p.vulnerable for p in overall.points
        if HEARTBLEED <= p.month < Month(2015, 7)
    )
    assert max(post_2015) > trough

    # Every scan-source era contributes points.
    sources = {p.source for p in overall.points}
    assert sources == {"EFF", "P&Q", "Ecosystem", "Rapid7", "Censys"}
