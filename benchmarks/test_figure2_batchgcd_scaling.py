"""Figure 2 / Section 3.2: batch-GCD engines and their scaling.

The paper's claims to reproduce:

- the naive all-pairs computation is quadratic and "not feasible" at
  corpus scale, while the tree-based batch GCD is quasilinear — so the
  batch engine must pull ahead as the corpus grows;
- the k-subset clustered modification does *more total work* (growing
  with k) but decomposes into k**2 independent tasks whose largest
  operand shrinks with k — the cluster-parallelism trade-off.
"""

import random

import pytest

from repro.core.batchgcd import batch_gcd
from repro.core.clustered import ClusteredBatchGcd
from repro.core.naive import naive_pairwise_gcd
from repro.entropy.keygen import HealthyProfile, SharedPrimeProfile, WeakKeyFactory

from conftest import write_artifact


def build_corpus(count: int, seed: int = 5, prime_bits: int = 64) -> list[int]:
    rng = random.Random(seed)
    factory = WeakKeyFactory(seed=seed, prime_bits=prime_bits)
    weak = SharedPrimeProfile(
        profile_id="bench-fleet", boot_states=max(2, count // 50)
    )
    healthy = HealthyProfile(profile_id="bench-healthy")
    moduli = [
        weak.generate(rng, factory).keypair.public.n for _ in range(count // 25)
    ]
    moduli += [
        healthy.generate(rng, factory).keypair.public.n
        for _ in range(count - len(moduli))
    ]
    rng.shuffle(moduli)
    return moduli


CORPUS_1K = build_corpus(1000)
CORPUS_4K = build_corpus(4000)


@pytest.mark.parametrize("corpus_name,corpus", [("1k", CORPUS_1K), ("4k", CORPUS_4K)])
def test_batch_gcd_engine(benchmark, corpus_name, corpus):
    result = benchmark.pedantic(batch_gcd, args=(corpus,), rounds=2, iterations=1)
    assert result.vulnerable_count() > 0


def test_naive_engine_1k(benchmark):
    result = benchmark.pedantic(
        naive_pairwise_gcd, args=(CORPUS_1K,), rounds=1, iterations=1
    )
    assert result.divisors == batch_gcd(CORPUS_1K).divisors


@pytest.mark.parametrize("k", [1, 4, 16])
def test_clustered_engine_k(benchmark, k):
    engine = ClusteredBatchGcd(k=k)
    result = benchmark.pedantic(engine.run, args=(CORPUS_4K,), rounds=1, iterations=1)
    assert result.divisors == batch_gcd(CORPUS_4K).divisors


def test_quasilinear_vs_quadratic_crossover(benchmark, artifact_dir):
    """The batch engine's advantage must grow with corpus size."""
    import time

    def run_crossover():
        lines = ["corpus  naive(s)  batch(s)  ratio"]
        ratios = []
        for count in (250, 500, 1000):
            corpus = build_corpus(count)
            t0 = time.perf_counter()
            naive_result = naive_pairwise_gcd(corpus)
            naive_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            batch_result = batch_gcd(corpus)
            batch_s = time.perf_counter() - t0
            assert naive_result.divisors == batch_result.divisors
            ratio = naive_s / max(batch_s, 1e-9)
            ratios.append(ratio)
            lines.append(
                f"{count:6d}  {naive_s:8.3f}  {batch_s:8.3f}  {ratio:5.1f}x"
            )
        return lines, ratios

    lines, ratios = benchmark.pedantic(run_crossover, rounds=1, iterations=1)
    write_artifact(artifact_dir, "figure2_crossover", "\n".join(lines))
    # Quadratic vs quasilinear: the ratio grows with corpus size.
    assert ratios[-1] > ratios[0]


def test_k_subset_work_and_operand_tradeoff(benchmark, artifact_dir):
    """Tasks grow as k**2 and the largest single operand shrinks as ~1/k.

    These are the structural halves of the paper's trade-off; raw CPU
    timings are recorded in the artifact but not asserted (they are too
    noisy under a loaded machine at this corpus size).
    """
    from repro.numt.trees import tree_product

    corpus = CORPUS_4K
    full_bits = tree_product(corpus).bit_length()

    def run_sweep():
        lines = ["k   tasks  max-operand(bits)  cpu(s)  wall(s)"]
        tasks_by_k = {}
        operand_by_k = {}
        for k in (1, 2, 4, 8, 16):
            engine = ClusteredBatchGcd(k=k)
            engine.run(corpus)
            stats = engine.last_stats
            tasks_by_k[k] = stats.tasks
            operand_by_k[k] = max(
                tree_product(corpus[s::k]).bit_length() for s in range(k)
            )
            lines.append(
                f"{k:<3d} {stats.tasks:>5d} {operand_by_k[k]:>17d} "
                f"{stats.cpu_seconds:7.2f} {stats.wall_seconds:8.2f}"
            )
        return lines, tasks_by_k, operand_by_k

    lines, tasks_by_k, operand_by_k = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    write_artifact(artifact_dir, "figure2_k_sweep", "\n".join(lines))
    for k in (1, 2, 4, 8, 16):
        # k**2 independent tasks...
        assert tasks_by_k[k] == k * k
        # ...whose largest operand is ~1/k of the monolithic product (the
        # bottleneck the paper's modification removes).
        assert operand_by_k[k] <= full_bits // k + 64
