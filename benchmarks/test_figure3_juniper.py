"""Figure 3: Juniper — advisories did not stop the rise; Heartbleed did.

Paper shape: vulnerable hosts kept increasing for ~two years after the
April/July 2012 advisories; the single largest drop in both vulnerable and
total fingerprinted hosts is April 2014 (Heartbleed), when ~30 k hosts
(>9 k vulnerable) went offline; 1,100 / 1,200 / 250 IPs transitioned
vulnerable->clean / clean->vulnerable / multiple times.
"""

import pytest

from repro.timeline import HEARTBLEED, Month

from conftest import write_artifact
from figutil import regenerate, series_for, values_between

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)


def test_figure3_regeneration(benchmark, study, artifact_dir):
    rendering = regenerate(benchmark, study, "Juniper", "Figure 3")
    write_artifact(artifact_dir, "figure3_juniper", rendering)
    series = series_for(study, "Juniper")

    # Vulnerable hosts rose after the advisory (7/2012) toward Heartbleed.
    at_advisory = values_between(series, Month(2012, 6), Month(2012, 9))
    pre_heartbleed = values_between(series, Month(2013, 6), HEARTBLEED + (-1))
    assert max(pre_heartbleed) > max(at_advisory)

    # The largest drops (total and vulnerable) are at Heartbleed.
    total_month, total_drop = series.largest_drop(vulnerable=False)
    assert abs(total_month - HEARTBLEED) <= 1
    assert total_drop > 0
    vuln_month, vuln_drop = series.largest_drop(vulnerable=True)
    assert abs(vuln_month - HEARTBLEED) <= 1
    assert vuln_drop > 0

    # Magnitudes: peak vulnerable in the paper's band (~30 k).
    assert 15_000 < series.peak_vulnerable().vulnerable < 60_000

    # No recovery to the pre-Heartbleed level afterwards.
    post = values_between(series, HEARTBLEED, Month(2016, 5), vulnerable=False)
    assert max(post) < max(
        values_between(series, Month(2013, 1), HEARTBLEED + (-1), vulnerable=False)
    )

    # Transition structure (paper: 1,100 v->n / 1,200 n->v / 250 multiple):
    # both directions plus flapping exist, and transitions are a small
    # minority of observed IPs (~1.5% in the paper).
    stats = study.transitions["Juniper"]
    assert stats.to_nonvulnerable > 0
    assert stats.to_vulnerable + stats.multiple > 0
    changed = stats.to_nonvulnerable + stats.to_vulnerable + stats.multiple
    assert changed < stats.ips_observed * 0.35
