"""Figure 4: Innominate mGuard — advisory, yet a constant vulnerable floor.

Paper shape: the total mGuard population rose over the study (new devices
are fixed), while the vulnerable population "has stayed mostly consistent
during the four years since the public security advisory" (June 2012).
"""

import pytest

from repro.timeline import STUDY_END, Month

from conftest import write_artifact
from figutil import regenerate, series_for, values_between

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)


def test_figure4_regeneration(benchmark, study, artifact_dir):
    rendering = regenerate(benchmark, study, "Innominate", "Figure 4")
    write_artifact(artifact_dir, "figure4_innominate", rendering)
    series = series_for(study, "Innominate")

    # Totals rise over the study.
    totals = series.totals()
    assert totals[-1] > totals[0] * 1.5

    # The vulnerable population after the advisory is roughly flat:
    # non-zero at the end, and bounded within a factor ~2.5 band.
    post_advisory = values_between(series, Month(2012, 7), STUDY_END)
    assert post_advisory[-1] > 0
    positive = [v for v in post_advisory if v > 0]
    assert max(positive) <= min(positive) * 2.5

    # No Heartbleed shock for this fleet (industrial, not internet-edge).
    _month, drop = series.largest_drop(vulnerable=True)
    assert drop <= max(positive) * 0.5
