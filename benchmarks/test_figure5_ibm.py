"""Figure 5: IBM RSA-II / BladeCenter — the 36-key clique, fading away.

Paper shape: the vulnerable population was already declining by 2012 and
drops markedly at Heartbleed; every key is a product of two of nine primes
(36 possible moduli); apparent "patching" was IP churn — 350 of 1,728
ever-vulnerable IPs later served unrelated certificates.
"""

import pytest

from repro.timeline import HEARTBLEED, Month

from conftest import write_artifact
from figutil import regenerate, series_for, values_between

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)


def test_figure5_regeneration(benchmark, study, artifact_dir):
    rendering = regenerate(benchmark, study, "IBM", "Figure 5")
    write_artifact(artifact_dir, "figure5_ibm", rendering)
    series = series_for(study, "IBM")

    # Declining before disclosure: 2012 average below the 2010 start.
    early = values_between(series, Month(2010, 7), Month(2011, 10))
    at_disclosure = values_between(series, Month(2012, 6), Month(2012, 12))
    assert max(at_disclosure) < max(early)

    # Heartbleed leaves a visible step down.
    before = values_between(series, Month(2013, 10), HEARTBLEED + (-1))
    after = values_between(series, HEARTBLEED + 1, Month(2014, 10))
    assert min(before) > max(after)

    # Still a residual population at the end (unmaintained fleets linger).
    assert series.points[-1].vulnerable > 0

    # Clique structure: all factored IBM moduli come from <= 9 primes and
    # <= 36 moduli.
    (clique,) = study.fingerprints.degenerate_cliques
    assert clique.label == "IBM"
    assert len(clique.primes) <= 9
    assert len(clique.moduli) <= 36

    # The "patching" that is really IP churn (paper: 350 of 1,728).
    stats = study.transitions.get("IBM")
    assert stats is not None
    assert stats.ips_ever_vulnerable > 0
    reuse = study.ibm_ip_reuse
    assert reuse.ips_ever_vulnerable > 0
    assert reuse.later_served_other_certificate <= reuse.ips_ever_vulnerable
