"""Figure 6: Cisco small-business lines — rising through 2014, then down.

Paper shape: "The number of broken Cisco hosts increased steadily through
2014, although it has begun to decrease in the past year."  Cisco responded
privately and never published an advisory.
"""

import pytest

from repro.timeline import Month

from conftest import write_artifact
from figutil import regenerate, series_for, values_between

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)


def test_figure6_regeneration(benchmark, study, artifact_dir):
    rendering = regenerate(benchmark, study, "Cisco", "Figure 6")
    write_artifact(artifact_dir, "figure6_cisco", rendering)
    series = series_for(study, "Cisco")

    # Rising through 2014...
    early = values_between(series, Month(2010, 7), Month(2011, 10))
    peak_era = values_between(series, Month(2013, 6), Month(2015, 1))
    assert max(peak_era) > max(early)

    # ...then decreasing in the final year.
    final_year = values_between(series, Month(2015, 7), Month(2016, 5))
    assert final_year[-1] < max(peak_era)

    # Peak magnitude in the paper's band (~8-10 k).
    assert 4_000 < max(peak_era) < 20_000

    # Cisco certificates expose the model in the OU; the fingerprinting
    # layer must have recovered the Figure 7 model names.
    models = set(study.fingerprints.model_by_cert.values())
    assert {"RV120W", "RV220W", "RV180/180W", "SA520/540"} <= models
