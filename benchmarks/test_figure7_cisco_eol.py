"""Figure 7: Cisco end-of-life announcements vs device populations.

Paper shape: "the end-of-life announcements marked the beginning of a slow
decrease in the total number of devices online"; EOL announcements precede
end-of-sale by several months; vulnerable hosts were found for all models
except the RV082.
"""

import pytest

from repro.analysis.eol import analyze_eol
from repro.devices.catalog import DEVICE_CATALOG
from repro.reporting.study import render_figure7

from conftest import write_artifact

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)


def test_figure7_regeneration(benchmark, study, artifact_dir):
    eol_dates = {
        model.display_model: (model.eol, model.end_of_sale)
        for model in DEVICE_CATALOG
        if model.display_model and model.eol is not None
    }
    analyses = benchmark(
        analyze_eol,
        study.snapshots,
        study.store,
        study.fingerprints.model_by_cert,
        eol_dates,
    )
    write_artifact(artifact_dir, "figure7_cisco_eol", render_figure7(study))
    by_model = {a.model: a for a in analyses}

    # All five Figure 7 models observed.
    expected = {"RV082", "RV120W", "RV220W", "RV180/180W", "SA520/540"}
    assert expected <= set(by_model)

    for model in expected:
        analysis = by_model[model]
        # EOL precedes end-of-sale by several months.
        assert analysis.eol is not None and analysis.end_of_sale is not None
        assert 1 <= analysis.end_of_sale - analysis.eol <= 12
        # Populations decline after the announcement.
        assert analysis.declining_after_eol, model
        # The peak is not long after EOL (the announcement marks the turn).
        assert analysis.peak_month <= analysis.eol + 6, model

    # "We identified vulnerable hosts associated with all the device models
    # in this figure except the RV082."
    vulnerable = study.vulnerable_moduli()
    for cert_id, model in study.fingerprints.model_by_cert.items():
        if model == "RV082":
            entry = study.store[cert_id]
            assert entry.certificate.public_key.n not in vulnerable
