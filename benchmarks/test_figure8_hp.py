"""Figure 8: HP iLO — a big fleet, a tiny vulnerable tail, a Heartbleed dent.

Paper shape: ~100 k iLO interfaces; vulnerable hosts peaked around 2012 at
a few tens and declined steadily; totals drop visibly after Heartbleed
(iLO cards reportedly crashed when scanned for it).

Scale note: the paper's HP vulnerable population (~30 hosts of ~110 k) is
below the simulation's resolution at the benchmark scale — the per-model
divisor needed to keep 110 k hosts tractable rounds ~30 weak hosts to ~0.
The vulnerable-series assertions are therefore bounded rather than exact;
DESIGN.md documents this floor.
"""

import pytest

from repro.timeline import HEARTBLEED, Month

from conftest import write_artifact
from figutil import regenerate, series_for, values_between

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)


def test_figure8_regeneration(benchmark, study, artifact_dir):
    rendering = regenerate(benchmark, study, "HP", "Figure 8")
    write_artifact(artifact_dir, "figure8_hp", rendering)
    series = series_for(study, "HP")

    # A large fleet, ~100k at peak.
    assert 60_000 < max(series.totals()) < 160_000

    # Heartbleed dents the total population.
    before = values_between(
        series, Month(2013, 11), HEARTBLEED + (-1), vulnerable=False
    )
    after = values_between(
        series, HEARTBLEED, Month(2014, 9), vulnerable=False
    )
    assert min(before) > min(after)
    assert max(after) < max(before)

    # The vulnerable tail is tiny relative to the fleet (paper: ~30/110k).
    assert max(series.vulnerable()) < max(series.totals()) * 0.01
