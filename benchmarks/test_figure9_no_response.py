"""Figure 9: the ten vendors that never responded to the notification.

Paper shape: vulnerable populations decline gradually over the study for
most of these vendors; for Thomson, Linksys, ZyXEL and McAfee the
vulnerable decline closely tracks the overall fingerprint decline;
Fritz!Box instead rises until its silent 2014 fix, then declines.
"""

import pytest

from repro.reporting.study import render_vendor_figure
from repro.timeline import STUDY_END, Month

from conftest import write_artifact
from figutil import series_for, values_between

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)

FIGURE9_VENDORS = (
    "Thomson", "Fritz!Box", "Linksys", "Fortinet", "ZyXEL",
    "Dell", "Kronos", "Xerox", "McAfee", "TP-LINK",
)

#: Vendors whose paper-scale vulnerable fleets are large enough to survive
#: the simulation's resolution floor (see EXPERIMENTS.md deviation D4).
DECLINE_ASSERTED = ("ZyXEL", "TP-LINK", "Kronos", "Xerox", "McAfee")

#: "Thomson, Linksys, ZyXEL, and McAfee show a decline in the vulnerable
#: population that closely tracks the decline in the overall number of
#: hosts with that device fingerprint."
TOTAL_TRACKING = ("Thomson", "Linksys", "ZyXEL", "McAfee")


def test_figure9_regeneration(benchmark, study, artifact_dir):
    def render_all():
        return [
            render_vendor_figure(study, vendor, "Figure 9")
            for vendor in FIGURE9_VENDORS
        ]

    renderings = benchmark(render_all)
    write_artifact(artifact_dir, "figure9_no_response", "\n\n".join(renderings))

    # Every vendor observed throughout the study.
    for vendor in FIGURE9_VENDORS:
        series = series_for(study, vendor)
        assert max(series.totals()) > 0, vendor

    # Vulnerable populations decline from their early peaks.
    for vendor in DECLINE_ASSERTED:
        series = series_for(study, vendor)
        early_peak = max(values_between(series, Month(2010, 7), Month(2013, 6)))
        late = values_between(series, Month(2015, 6), STUDY_END)
        assert early_peak > 0, vendor
        assert max(late) < early_peak, vendor

    # The decline tracks the shrinking fingerprint totals.
    for vendor in TOTAL_TRACKING:
        series = series_for(study, vendor)
        totals = series.totals()
        assert totals[-1] < max(totals), vendor

    # Fritz!Box: marked increase before an eventual decline.
    series = series_for(study, "Fritz!Box")
    start = max(values_between(series, Month(2010, 7), Month(2011, 6)))
    peak = max(series.vulnerable())
    end = series.points[-1].vulnerable
    assert peak > start
    assert end < peak
