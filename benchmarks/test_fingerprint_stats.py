"""Section 3.3 statistics: labelling coverage and artifact counts.

Paper anchors (at 1:1 scale): 26.3 M certificates labelled by subject
heuristics across 18 vendors; 20,717 Fritz!Box certificates (many via
shared primes); 3,229 certificates on IBM primes; 922 Rimon-intercepted
IPs; 107 non-well-formed (bit-error) moduli; ~5 % of weak certificates
from non-OpenSSL implementations.
"""

from collections import Counter

import pytest

from repro.fingerprint.engine import fingerprint_study

from conftest import write_artifact

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)


def test_fingerprint_pipeline_benchmark(benchmark, study, bench_config, artifact_dir):
    report = benchmark.pedantic(
        fingerprint_study,
        args=(study.store, study.batch_result),
        kwargs={
            "openssl_table": bench_config.openssl_table(),
            "check_safe_primes": False,
        },
        rounds=1,
        iterations=1,
    )
    assert len(report.factored_clean) == len(study.fingerprints.factored_clean)

    # ---- labelling coverage -------------------------------------------
    vendors = Counter(report.vendor_by_cert.values())
    lines = [f"{vendor:24s} {count}" for vendor, count in vendors.most_common()]
    lines.append("")
    for rule, count in report.rule_counts.most_common():
        lines.append(f"rule {rule:20s} {count}")
    write_artifact(artifact_dir, "fingerprint_stats", "\n".join(lines))

    # Subject heuristics labelled many vendors (paper: 18 via DN alone).
    assert len(vendors) >= 15
    # Every fingerprinting path fired.
    for rule in ("system-generated", "vendor-in-o", "fritz-names",
                 "banner", "shared-primes"):
        assert report.rule_counts[rule] > 0, rule

    # ---- artifact triage (Sections 3.3.3 / 3.3.5) ---------------------
    # Bit errors present and triaged out (paper: 107 of 313,330 flagged).
    assert report.bit_errors
    flagged = study.batch_result.vulnerable_count()
    assert len(report.bit_errors) < flagged * 0.8

    # Exactly one key-substitution interceptor (Internet Rimon).
    assert len(report.substitutions) == 1
    finding = report.substitutions[0]
    assert finding.certificate_count >= 5
    assert finding.invalid_signatures > 0
    # The interceptor's healthy key is never "factored".
    assert finding.modulus not in report.factored_clean

    # ---- OpenSSL share of weak keys (paper: ~5% non-OpenSSL) ----------
    verdict_by_vendor = {v.vendor: v.verdict for v in report.openssl_verdicts}
    openssl = non_openssl = 0
    for n in report.factored_clean:
        vendor = report.vendor_by_modulus.get(n)
        verdict = verdict_by_vendor.get(vendor or "")
        if verdict == "openssl":
            openssl += 1
        elif verdict == "not-openssl":
            non_openssl += 1
    assert openssl > non_openssl


def test_exposure_statistic(benchmark, study):
    """Section 1: most vulnerable devices are passively decryptable."""
    from repro.analysis.exposure import analyze_exposure

    exposure = benchmark(
        analyze_exposure,
        study.snapshots[-1],
        study.store,
        study.vulnerable_moduli(),
    )
    assert exposure.vulnerable_hosts > 0
    # Paper: 74% support only RSA key exchange.
    assert 0.45 < exposure.passive_fraction <= 1.0