"""End-to-end pipeline benchmark at test scale, plus phase accounting.

Times one complete study — world simulation, 51 monthly scans, protocol
corpora, clustered batch GCD, fingerprinting, analysis — and records the
shared benchmark study's per-phase timings as an artifact.
"""

import pytest

from repro.pipeline import run_study
from repro.studyconfig import StudyConfig

from conftest import write_artifact

pytestmark = pytest.mark.benchmark(warmup=False)


def test_full_study_tiny(benchmark, study, artifact_dir):
    result = benchmark.pedantic(
        run_study, args=(StudyConfig.tiny(seed=99),), rounds=1, iterations=1
    )
    assert result.table1.vulnerable_moduli_raw > 0
    assert len(result.snapshots) == 51

    # Record the shared benchmark study's per-phase accounting too.
    lines = [
        f"{phase:18s} {seconds:8.2f}s" for phase, seconds in study.timings.items()
    ]
    if study.cluster_stats:
        lines.append(
            f"{'batchgcd cpu':18s} {study.cluster_stats.cpu_seconds:8.2f}s "
            f"(k={study.cluster_stats.k}, {study.cluster_stats.tasks} tasks)"
        )
    write_artifact(artifact_dir, "phase_timings", "\n".join(lines))
    assert study.timings["batch_gcd"] > 0
