"""Latency benchmark for the incremental product-tree store.

The serving-path question: a new modulus arrives — how long until the
service can say whether it is weak against the existing corpus?  Before
this store existed the only answer was a full batch-GCD recompute over
``corpus + [m]`` (seconds at study scale); the store answers with one
remainder descent (``gcd(m, P mod m)``) plus an O(log n) spine rebuild
on insert.  This benchmark measures both paths across corpus sizes and
emits ``BENCH_incremental.json`` — the committed artifact behind the
"≥10x per-job speedup at n=8000" acceptance criterion — while asserting
the two paths produce byte-identical divisors and factors.

Scale is selected by ``REPRO_BENCH_INCREMENTAL_SCALE``:

- ``bench`` (default): committed-artifact scale — corpus sizes 1 000 /
  8 000 / 32 000 from 48-bit primes, persistent on-disk stores, the
  speedup assertion enforced at n=8 000.
- ``smoke``: CI-sized (seconds) — small corpora, same legs and parity
  assertions, no speedup assertion (a loaded shared runner cannot
  honestly assert a ratio).

Timing uses ``time.perf_counter`` directly: benchmarks are exempt from
the determinism linter by design (they measure, they don't simulate).
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import statistics
import time

import pytest

from repro.core.batchgcd import batch_gcd, batch_gcd_divisors
from repro.core.results import BatchGcdResult
from repro.crypto.primes import generate_prime
from repro.numt.backend import available_backends
from repro.numt.incremental import ProductTreeStore

from conftest import OUTPUT_DIR

REPO_ROOT = pathlib.Path(__file__).parent.parent

SCALE = os.environ.get("REPRO_BENCH_INCREMENTAL_SCALE", "bench")

#: Per-scale knobs: corpus sizes for the latency curve, prime bits, the
#: number of probe moduli timed per size, and the size the headline
#: speedup assertion runs at.
PARAMS = {
    "bench": dict(
        sizes=(1_000, 8_000, 32_000),
        prime_bits=48,
        probes=12,
        headline_size=8_000,
        parity_size=1_000,
    ),
    "smoke": dict(
        sizes=(200, 600),
        prime_bits=32,
        probes=6,
        headline_size=600,
        parity_size=200,
    ),
}[SCALE]


def _make_corpus(
    n: int, bits: int, seed: int = 2016
) -> tuple[list[int], list[int]]:
    """A study-shaped corpus (mostly-unique semiprimes, ~2% sharing a
    prime from a small pool) plus the pool, so probes can be planted
    weak on demand.  All primes are distinct: the corpus is squarefree
    and exact-divisor parity with the classic engine holds."""
    rng = random.Random(seed)
    pool = [generate_prime(bits, rng) for _ in range(max(8, n // 100))]
    corpus = []
    for i in range(n):
        if i % 50 == 0:
            p, q = rng.sample(pool, 2)
        else:
            p = generate_prime(bits, rng)
            q = generate_prime(bits, rng)
        corpus.append(p * q)
    rng.shuffle(corpus)
    return corpus, pool


def _weak_primes(pool: list[int], corpus: list[int]) -> list[int]:
    """The pool primes that actually divide some corpus modulus (the
    shuffled prefix a given size sees need not cover the whole pool)."""
    return [p for p in pool if any(c % p == 0 for c in corpus)]


def _make_probes(weak: list[int], bits: int, count: int) -> list[int]:
    """Alternate weak (sharing a corpus prime) and clean probe moduli."""
    rng = random.Random(9)
    probes = []
    for i in range(count):
        if i % 2 == 0:
            probes.append(rng.choice(weak) * generate_prime(bits, rng))
        else:
            probes.append(
                generate_prime(bits, rng) * generate_prime(bits, rng)
            )
    return probes


@pytest.fixture(scope="module")
def corpus_and_pool():
    return _make_corpus(max(PARAMS["sizes"]), PARAMS["prime_bits"])


@pytest.fixture(scope="module")
def bench_record():
    """Accumulates every leg's measurements; dumped to JSON at teardown."""
    record = {
        "schema": "bench-incremental/1",
        "scale": SCALE,
        "params": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in PARAMS.items()
        },
        "backends_available": available_backends(),
        "sizes": {},
        "headline": {},
        "parity": {},
    }
    yield record
    OUTPUT_DIR.mkdir(exist_ok=True)
    payload = json.dumps(record, indent=2, sort_keys=True) + "\n"
    (OUTPUT_DIR / "BENCH_incremental.json").write_text(payload)
    if SCALE == "bench":
        (REPO_ROOT / "BENCH_incremental.json").write_text(payload)


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def test_latency_curve(corpus_and_pool, bench_record, tmp_path_factory):
    """Per-job check latency vs corpus size: descent+insert vs recompute.

    One full classic run per size plays both roles: its wall time is the
    per-job full-recompute baseline (recomputing over n+1 moduli costs
    what recomputing over n does) and its divisors bootstrap the on-disk
    store the incremental probes and inserts then run against.
    """
    corpus_full, pool = corpus_and_pool
    for n in PARAMS["sizes"]:
        corpus = corpus_full[:n]
        divisors, full_wall = _timed(batch_gcd_divisors, corpus)

        store_dir = tmp_path_factory.mktemp(f"store-{n}")
        store = ProductTreeStore(store_dir)
        _, bootstrap_wall = _timed(store.bootstrap, corpus, divisors)

        probes = _make_probes(
            _weak_primes(pool, corpus), PARAMS["prime_bits"], PARAMS["probes"]
        )
        probe_walls, insert_walls = [], []
        weak_found = 0
        for m in probes:
            outcome, wall = _timed(store.probe, m)
            probe_walls.append(wall)
            weak_found += outcome.divisor > 1
        for m in probes:
            _, wall = _timed(store.insert, m)
            insert_walls.append(wall)

        probe_wall = statistics.median(probe_walls)
        insert_wall = statistics.median(insert_walls)
        bench_record["sizes"][str(n)] = {
            "moduli": n,
            "full_recompute_seconds": round(full_wall, 4),
            "store_bootstrap_seconds": round(bootstrap_wall, 4),
            "probe_seconds_median": round(probe_wall, 6),
            "insert_seconds_median": round(insert_wall, 6),
            "probe_walls": [round(w, 6) for w in probe_walls],
            "insert_walls": [round(w, 6) for w in insert_walls],
            "weak_probes_found": weak_found,
            "store_nodes": store.node_count,
            "speedup_probe": round(full_wall / probe_wall, 2),
            "speedup_insert": round(full_wall / insert_wall, 2),
        }
        # Every weak-planted probe (even index) must be flagged by the
        # single-descent check; the clean ones must not false-positive
        # against a corpus of fresh primes.
        assert weak_found == (len(probes) + 1) // 2


def test_headline_speedup(bench_record):
    """The committed number: per-job insert vs full recompute at n=8000."""
    leg = bench_record["sizes"][str(PARAMS["headline_size"])]
    bench_record["headline"] = {
        "moduli": PARAMS["headline_size"],
        "full_recompute_seconds": leg["full_recompute_seconds"],
        "incremental_check_seconds": leg["insert_seconds_median"],
        "speedup": leg["speedup_insert"],
    }
    if SCALE == "bench":
        assert leg["speedup_insert"] >= 10.0, (
            f"per-job speedup regressed: {leg['speedup_insert']:.1f}x"
        )


def test_factor_parity(corpus_and_pool, bench_record):
    """Insert-by-insert store state is byte-identical to the classic run:
    same divisors, same recovered factors (the corpus is squarefree)."""
    corpus_full, pool = corpus_and_pool
    n = PARAMS["parity_size"]
    corpus = corpus_full[:n] + _make_probes(
        _weak_primes(pool, corpus_full[:n]), PARAMS["prime_bits"], 4
    )
    store = ProductTreeStore()
    for m in corpus:
        store.insert(m)
    reference = batch_gcd(corpus)
    assert store.divisors() == reference.divisors
    incremental = BatchGcdResult(store.moduli, store.divisors())
    incremental_factors = sorted(
        (f.modulus, f.p, f.q) for f in incremental.resolve().values()
    )
    reference_factors = sorted(
        (f.modulus, f.p, f.q) for f in reference.resolve().values()
    )
    assert incremental_factors == reference_factors
    bench_record["parity"] = {
        "moduli": len(corpus),
        "vulnerable": sum(d > 1 for d in store.divisors()),
        "factors_recovered": len(reference_factors),
        "identical_divisors": True,
        "identical_factors": True,
    }
