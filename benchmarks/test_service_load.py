"""Load test for the key-checking service (:mod:`repro.service`).

Boots one embedded :class:`~repro.service.ServiceApp` (real engine, real
journal, real HTTP over a loopback socket) and drives it the way a
deployment would be driven: many concurrent clients submitting distinct
corpora, then polling until the queue drains. Emits
``BENCH_service.json`` — the committed artifact recording submission
p50/p99 latency and end-to-end job throughput (methodology:
``docs/PERFORMANCE.md``).

Scale is selected by ``REPRO_BENCH_SERVICE_SCALE``:

- ``bench`` (default): the committed-artifact scale — 2 000 submissions
  from 32 concurrent clients, every 10th corpus carrying a planted
  shared prime.
- ``smoke``: CI-sized (seconds); same legs, no latency assertions (a
  loaded shared runner cannot honestly assert a percentile).

Timing uses ``time.perf_counter`` directly: benchmarks are exempt from
the determinism linter by design (they measure, they don't simulate).
"""

from __future__ import annotations

import http.client
import json
import os
import pathlib
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.crypto.primes import generate_prime
from repro.service import ServiceApp, ServiceConfig

from conftest import OUTPUT_DIR

REPO_ROOT = pathlib.Path(__file__).parent.parent

SCALE = os.environ.get("REPRO_BENCH_SERVICE_SCALE", "bench")

#: Per-scale knobs: submissions, concurrent clients, corpus shape, and
#: how many status polls the latency leg samples.
PARAMS = {
    "bench": dict(
        jobs=2_000, clients=32, moduli_per_job=4, prime_bits=40,
        prime_pool=600, weak_every=10, poll_sample=500,
        drain_timeout=600.0,
    ),
    "smoke": dict(
        jobs=120, clients=8, moduli_per_job=4, prime_bits=32,
        prime_pool=120, weak_every=10, poll_sample=60,
        drain_timeout=120.0,
    ),
}[SCALE]


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a non-empty sample."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def _latency_stats(samples: list[float]) -> dict[str, float]:
    return {
        "count": len(samples),
        "p50_ms": round(_percentile(samples, 0.50) * 1000, 3),
        "p90_ms": round(_percentile(samples, 0.90) * 1000, 3),
        "p99_ms": round(_percentile(samples, 0.99) * 1000, 3),
        "max_ms": round(max(samples) * 1000, 3),
        "mean_ms": round(sum(samples) / len(samples) * 1000, 3),
    }


class _Client:
    """Keep-alive HTTP client; one connection per calling thread."""

    def __init__(self, port: int) -> None:
        self._port = port
        self._local = threading.local()

    def _conn(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection("127.0.0.1", self._port, timeout=30)
            self._local.conn = conn
        return conn

    def request(self, method: str, path: str, payload: dict | None = None):
        """One round trip; returns (status, parsed body, wall seconds)."""
        body = None if payload is None else json.dumps(payload)
        conn = self._conn()
        start = time.perf_counter()
        try:
            conn.request(method, path, body=body)
            response = conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            conn.close()
            self._local.conn = None
            raise
        wall = time.perf_counter() - start
        return response.status, json.loads(raw), wall


@pytest.fixture(scope="module")
def corpus_plan():
    """Distinct per-job corpora drawn from one shared prime pool.

    Every ``weak_every``-th job's first two moduli share a prime, so the
    drained queue also proves end-to-end correctness under load.
    """
    rng = random.Random(2016)
    pool = [
        generate_prime(PARAMS["prime_bits"], rng)
        for _ in range(PARAMS["prime_pool"])
    ]
    jobs = []
    for index in range(PARAMS["jobs"]):
        primes = rng.sample(pool, 2 * PARAMS["moduli_per_job"])
        weak = index % PARAMS["weak_every"] == 0
        if weak:
            primes[2] = primes[0]  # moduli 0 and 1 share primes[0]
        moduli = [
            primes[2 * m] * primes[2 * m + 1]
            for m in range(PARAMS["moduli_per_job"])
        ]
        jobs.append(
            {
                "moduli": [f"{n:x}" for n in moduli],
                "weak": weak,
                "shared_prime": primes[0] if weak else None,
            }
        )
    return jobs


@pytest.fixture(scope="module")
def app(tmp_path_factory):
    state_dir = tmp_path_factory.mktemp("service-load")
    service = ServiceApp(ServiceConfig(state_dir=str(state_dir)))
    port = service.start_background()
    yield service, port
    service.shutdown()


@pytest.fixture(scope="module")
def client(app):
    _, port = app
    return _Client(port)


@pytest.fixture(scope="module")
def bench_record():
    """Accumulates every leg's measurements; dumped to JSON at teardown."""
    record = {
        "schema": "bench-service/1",
        "scale": SCALE,
        "params": dict(PARAMS),
        "submit": {},
        "status_poll": {},
        "drain": {},
        "correctness": {},
    }
    yield record
    OUTPUT_DIR.mkdir(exist_ok=True)
    payload = json.dumps(record, indent=2, sort_keys=True) + "\n"
    (OUTPUT_DIR / "BENCH_service.json").write_text(payload)
    if SCALE == "bench":
        (REPO_ROOT / "BENCH_service.json").write_text(payload)


#: Shared across the ordered tests in this module.
_state: dict = {"job_ids": []}


def test_concurrent_submission_latency(client, corpus_plan, bench_record):
    """The headline: p50/p99 POST /v1/jobs round trip under concurrency."""

    def submit(job):
        status, body, wall = client.request(
            "POST", "/v1/jobs", {"moduli": job["moduli"]}
        )
        return status, body, wall

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=PARAMS["clients"]) as pool:
        # Thread pool, not a process pool: the closure never pickles.
        outcomes = list(pool.map(submit, corpus_plan))  # reprolint: disable=PAR001
    elapsed = time.perf_counter() - start

    walls = []
    for (status, body, wall), job in zip(outcomes, corpus_plan):
        assert status == 202, body
        assert body["created"] is True
        job["job_id"] = body["job_id"]
        _state["job_ids"].append(body["job_id"])
        walls.append(wall)
    assert len(set(_state["job_ids"])) == PARAMS["jobs"]

    bench_record["submit"] = {
        **_latency_stats(walls),
        "clients": PARAMS["clients"],
        "wall_seconds": round(elapsed, 4),
        "accepted_per_second": round(PARAMS["jobs"] / elapsed, 2),
    }


def test_drain_throughput(client, bench_record):
    """Time from last submission until every job reaches a terminal state."""
    total = PARAMS["jobs"]
    deadline = time.perf_counter() + PARAMS["drain_timeout"]
    start = time.perf_counter()
    while True:
        _, stats, _ = client.request("GET", "/v1/queue")
        done = stats["by_status"]["succeeded"] + stats["by_status"]["failed"]
        if done >= total:
            break
        assert time.perf_counter() < deadline, f"queue stuck: {stats}"
        time.sleep(0.1)
    elapsed = time.perf_counter() - start
    assert stats["by_status"]["failed"] == 0, stats
    assert stats["by_status"]["succeeded"] == total
    bench_record["drain"] = {
        "jobs": total,
        "wall_seconds": round(elapsed, 4),
        "jobs_per_second": round(total / max(elapsed, 1e-9), 2),
    }


def test_status_poll_latency(client, bench_record):
    """GET status round trips on a drained queue (steady-state reads)."""
    sample = _state["job_ids"][:: max(1, len(_state["job_ids"]) // PARAMS["poll_sample"])]

    def poll(job_id):
        status, body, wall = client.request("GET", f"/v1/jobs/{job_id}/status")
        assert status == 200 and body["status"] == "succeeded", body
        return wall

    with ThreadPoolExecutor(max_workers=PARAMS["clients"]) as pool:
        # Thread pool, not a process pool: the closure never pickles.
        walls = list(pool.map(poll, sample))  # reprolint: disable=PAR001
    bench_record["status_poll"] = _latency_stats(walls)


def test_weak_corpora_factored_under_load(client, corpus_plan, bench_record):
    """Planted shared primes must be recovered by every weak job."""
    checked = 0
    for job in corpus_plan:
        if not job["weak"]:
            continue
        status, body, _ = client.request(
            "GET", f"/v1/jobs/{job['job_id']}/result"
        )
        assert status == 200, body
        assert body["vulnerable_count"] >= 2
        vulnerable = {index for index, _ in body["divisors"]}
        assert {0, 1} <= vulnerable
        recovered = {
            int(entry["p"], 16) for entry in body["factored"]
        } | {int(entry["q"], 16) for entry in body["factored"]}
        assert job["shared_prime"] in recovered
        checked += 1
    assert checked == (PARAMS["jobs"] + PARAMS["weak_every"] - 1) // PARAMS["weak_every"]
    bench_record["correctness"] = {
        "weak_jobs_checked": checked,
        "factored_ok": True,
    }
