"""Table 1: dataset summary (host records, moduli, vulnerable counts).

Paper values: 1.53 B HTTPS host records, 81.2 M distinct moduli, 313,330
vulnerable moduli (0.39 %), 2.96 M vulnerable host records.  The benchmark
regenerates the table from the shared study and checks the magnitudes land
within the documented tolerance of the paper's scale-corrected values.
"""

import pytest

from repro.analysis.tables import build_table1
from repro.reporting.study import render_table1

from conftest import write_artifact

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)


def test_table1_regeneration(benchmark, study, artifact_dir):
    table = benchmark(
        build_table1,
        study.snapshots,
        study.store,
        study.protocol_corpora,
        study.vulnerable_moduli(),
    )
    write_artifact(artifact_dir, "table1", render_table1(study))

    # Corpus magnitudes (scale-corrected) within ~2x of the paper.
    assert 0.7e9 < table.https_host_records < 3.1e9
    assert 40e6 < table.total_distinct_moduli < 165e6
    assert 30e6 < table.distinct_https_moduli < 110e6

    # Vulnerability magnitudes: the paper found 313 k vulnerable moduli and
    # 2.96 M vulnerable host records.
    assert 100_000 < table.vulnerable_moduli < 700_000
    assert 1.0e6 < table.vulnerable_https_host_records < 6.5e6

    # The headline fraction: well under 1 % of moduli factor.
    assert 0.0008 < table.vulnerable_moduli_fraction < 0.008

    # Internal consistency.
    assert table.vulnerable_moduli_raw <= table.total_distinct_moduli_raw
    assert table.distinct_https_moduli <= table.total_distinct_moduli
    assert (
        table.vulnerable_https_certificates_raw
        >= table.vulnerable_moduli_raw * 0.5
    )
