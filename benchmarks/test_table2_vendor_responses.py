"""Table 2: the 37 notified vendors and their response categories."""

import pytest

from repro.analysis.tables import build_table2
from repro.devices.vendors import ResponseCategory
from repro.reporting.study import render_table2

from conftest import write_artifact

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)


def test_table2_regeneration(benchmark, study, artifact_dir):
    table = benchmark(build_table2)
    write_artifact(artifact_dir, "table2", render_table2(study))

    # "37 vendors were notified ... Only five released a public security
    # advisory.  About half of the vendors acknowledged receipt."
    assert table.notified_count == 37
    assert table.public_advisory_count == 5
    assert 10 <= table.acknowledged_count <= 20

    advisories = table.by_category[ResponseCategory.PUBLIC_ADVISORY]
    assert set(advisories) == {"Juniper", "Innominate", "IBM", "Intel", "Tropos"}
    no_response = table.by_category[ResponseCategory.NO_RESPONSE]
    # The majority never responded at all.
    assert len(no_response) > table.notified_count / 3
