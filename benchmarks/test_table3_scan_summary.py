"""Table 3: earliest (EFF 7/2010) vs latest (Censys 2016) scan summary.

Paper: 11.26 M -> 38.01 M TLS handshakes; 5.48 M -> 10.67 M distinct
certificates (per-scan); nearly all keys RSA.
"""

import pytest

from repro.analysis.tables import build_table3
from repro.reporting.study import render_table3

from conftest import write_artifact

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)


def test_table3_regeneration(benchmark, study, artifact_dir):
    earliest, latest = benchmark(build_table3, study.snapshots, study.store)
    write_artifact(artifact_dir, "table3", render_table3(study))

    assert earliest.source == "EFF"
    assert latest.source == "Censys"

    # Growth shape: the ecosystem roughly tripled over the study.
    ratio = latest.tls_handshakes / earliest.tls_handshakes
    assert 2.3 < ratio < 4.5

    # Magnitudes near the paper's endpoints.
    assert 7e6 < earliest.tls_handshakes < 15e6
    assert 30e6 < latest.tls_handshakes < 45e6

    # Certificates and keys track handshakes (one certificate per host).
    for column in (earliest, latest):
        assert column.distinct_rsa_keys <= column.distinct_certificates
        assert column.distinct_certificates <= column.tls_handshakes
