"""Table 4: per-protocol vulnerable hosts.

Paper: HTTPS 59,628 vulnerable; SSH 723; IMAPS/POP3S/SMTPS all zero —
"the majority of vulnerable keys were associated with HTTPS".
"""

import pytest

from repro.analysis.tables import build_table4
from repro.reporting.study import render_table4

from conftest import write_artifact

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)


def test_table4_regeneration(benchmark, study, artifact_dir):
    rows = benchmark(
        build_table4,
        study.snapshots,
        study.store,
        study.protocol_corpora,
        study.vulnerable_moduli(),
    )
    write_artifact(artifact_dir, "table4", render_table4(study))
    by_protocol = {row.protocol: row for row in rows}

    # HTTPS dominates, in the paper's magnitude band.
    https = by_protocol["HTTPS"]
    assert 25_000 < https.vulnerable_hosts < 120_000

    # SSH: a small vulnerable population (paper: 723).
    ssh = by_protocol["SSH"]
    assert 200 < ssh.vulnerable_hosts < 2_000
    assert ssh.vulnerable_hosts < https.vulnerable_hosts / 10

    # Mail protocols: zero.
    for protocol in ("POP3S", "IMAPS", "SMTPS"):
        assert by_protocol[protocol].vulnerable_hosts == 0

    # Totals near the paper's scan sizes.
    assert 30e6 < https.total_hosts < 45e6
    assert 8e6 < ssh.total_hosts < 13e6
    assert 5e6 < ssh.rsa_hosts < 8e6  # 6.26M of 10.7M SSH hosts had RSA keys
