"""Table 5: the OpenSSL prime-generation fingerprint per vendor.

Paper: 23 vendors' factored keys satisfy the fingerprint, 8 do not
(DrayTek, Fortinet, Huawei, Juniper, Kronos, Siemens, Xerox, ZyXEL);
no vulnerable implementation emitted exclusively safe primes.
"""

import pytest

from repro.analysis.tables import build_table5
from repro.devices.vendors import VENDORS
from repro.reporting.study import render_table5

from conftest import write_artifact

pytestmark = pytest.mark.benchmark(min_rounds=1, max_time=0.5, warmup=False)


def test_table5_regeneration(benchmark, study, artifact_dir):
    table = benchmark(build_table5, study.fingerprints)
    write_artifact(artifact_dir, "table5", render_table5(study))

    # Most fingerprinted vendors satisfy (paper: 23 vs 8).
    assert len(table.satisfy) > len(table.do_not_satisfy)
    assert len(table.satisfy) >= 10

    # The non-OpenSSL side contains the paper's named refuters.
    for vendor in ("Juniper", "ZyXEL", "Kronos", "Xerox"):
        assert vendor in table.do_not_satisfy, vendor
    for vendor in ("IBM", "Cisco", "Innominate", "TP-LINK", "Fritz!Box"):
        assert vendor in table.satisfy, vendor

    # Every decisive verdict agrees with the registry ground truth.
    for vendor, (expected, measured) in table.expected_vs_registry().items():
        if expected is None or measured == "inconclusive":
            continue
        assert (measured == "openssl") == expected, vendor

    # The paper's confound check.  Safe primes satisfy the fingerprint, so
    # a safe-prime-only generator would be misclassified; none exists.
    from repro.crypto.primes import is_safe_prime

    for verdict in study.table5.verdicts:
        if verdict.verdict != "openssl":
            continue
        primes = set()
        for n, fact in study.fingerprints.factored_clean.items():
            if study.fingerprints.vendor_by_modulus.get(n) == verdict.vendor:
                primes.update((fact.p, fact.q))
        sample = sorted(primes)[:10]
        if len(sample) >= 4:
            assert not all(is_safe_prime(p) for p in sample), verdict.vendor
