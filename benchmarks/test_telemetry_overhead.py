"""Disabled-mode telemetry overhead, measured against the shared study.

The telemetry layer promises near-zero cost when disabled (the default):
every instrumented call site hits one attribute check and returns.  This
benchmark prices that promise in the currency that matters — the fraction
of ``test_full_pipeline`` wall time the instrumentation adds — by timing
the disabled no-op path directly and scaling it by a generous
overestimate of how many telemetry calls a study performs.
"""

from __future__ import annotations

import time

import pytest

from repro.telemetry import RunReport, Telemetry

from conftest import write_artifact

pytestmark = pytest.mark.benchmark(warmup=False)

#: Spans + counters + gauges a bench-scale study actually records is a few
#: thousand; budget two orders of magnitude above that.
CALLS_PER_STUDY = 200_000


def _disabled_calls(n: int) -> float:
    """Wall seconds for n disabled span+counter+gauge call triples."""
    telemetry = Telemetry(enabled=False)
    started = time.perf_counter()
    for i in range(n):
        with telemetry.span("bench.noop"):
            telemetry.counter("bench.count")
            telemetry.gauge("bench.depth", i)
    return time.perf_counter() - started


def test_disabled_overhead_under_two_percent(study, artifact_dir):
    study_wall = sum(study.timings.values())
    overhead = _disabled_calls(CALLS_PER_STUDY)
    fraction = overhead / study_wall

    # How many call sites the instrumented study actually exercised, from
    # the enabled report: all spans, plus one call per counter/gauge/timer
    # observation (counters are called once per scan, not per record).
    report: RunReport = study.telemetry
    spans = sum(1 for root in report.spans for _ in root.walk())
    observations = sum(t.count for t in report.timers.values())
    actual_calls = spans + observations + len(report.counters) + len(report.gauges)
    assert actual_calls < CALLS_PER_STUDY

    write_artifact(
        artifact_dir,
        "telemetry_overhead",
        "\n".join(
            [
                f"study wall (all stages):    {study_wall:9.2f}s",
                f"recorded call sites:        {actual_calls:9d}",
                f"budgeted disabled calls:    {CALLS_PER_STUDY:9d}",
                f"disabled-mode cost:         {overhead:9.4f}s",
                f"overhead fraction:          {fraction:9.2%}  (budget < 2%)",
            ]
        ),
    )
    assert fraction < 0.02, (
        f"disabled telemetry costs {fraction:.2%} of a study "
        f"({overhead:.3f}s of {study_wall:.1f}s)"
    )


def test_enabled_report_is_valid(study):
    from repro.telemetry import validate_report

    problems = validate_report(study.telemetry.to_dict())
    assert problems == []
