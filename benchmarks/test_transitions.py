"""Section 4.1 transition statistics across vendors."""

from repro.analysis.transitions import analyze_transitions

from conftest import write_artifact


def test_transition_analysis_benchmark(benchmark, study, artifact_dir):
    stats = benchmark.pedantic(
        analyze_transitions,
        args=(
            study.snapshots,
            study.store,
            study.fingerprints.vendor_by_cert,
            study.vulnerable_moduli(),
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{s.vendor:16s} ips={s.ips_observed:<6d} everV={s.ips_ever_vulnerable:<5d} "
        f"v->n={s.to_nonvulnerable:<4d} n->v={s.to_vulnerable:<4d} "
        f"multi={s.multiple:<4d} churn={s.ever_served_nonvulnerable_after_vulnerable}"
        for s in sorted(stats.values(), key=lambda s: -s.ips_observed)[:15]
    ]
    write_artifact(artifact_dir, "transitions", "\n".join(lines))

    juniper = stats["Juniper"]
    # Both directions present, comparable in magnitude (paper: 1,100 vs
    # 1,200 of 169k IPs), with some multi-flappers.
    assert juniper.to_nonvulnerable > 0
    assert juniper.to_vulnerable > 0
    total_changed = (
        juniper.to_nonvulnerable + juniper.to_vulnerable + juniper.multiple
    )
    assert total_changed < juniper.ips_observed * 0.35

    # Innominate stability (paper: only ~6 of 561 IPs ever transitioned).
    innominate = stats.get("Innominate")
    assert innominate is not None
    changed = (
        innominate.to_nonvulnerable + innominate.to_vulnerable
        + innominate.multiple
    )
    assert changed <= max(2, innominate.ips_observed * 0.15)

    # Across the board, flapping is the exception: the dominant pattern is
    # devices serving the same (possibly weak) certificate for years.
    for vendor_stats in stats.values():
        changed = (
            vendor_stats.to_nonvulnerable + vendor_stats.to_vulnerable
            + vendor_stats.multiple
        )
        assert changed <= vendor_stats.ips_observed * 0.5, vendor_stats.vendor
