#!/usr/bin/env python3
"""The Figure 2 algorithm: cluster-parallel batch GCD, measured.

Builds a corpus with a known weak fraction, then compares the three
engines — naive all-pairs, classic product/remainder tree, and the paper's
k-subset clustered variant — for correctness and timing, including the
k**2 total-work / parallel-speedup trade-off of Section 3.2.

Run:  python examples/cluster_batchgcd_demo.py [--moduli 3000] [--processes 4]
"""

from __future__ import annotations

import argparse
import random
import time

from repro.core.batchgcd import batch_gcd
from repro.core.clustered import ClusteredBatchGcd
from repro.core.naive import naive_pairwise_gcd
from repro.entropy.keygen import HealthyProfile, SharedPrimeProfile, WeakKeyFactory


def build_corpus(count: int, weak_fraction: float, seed: int) -> list[int]:
    """A corpus with ``weak_fraction`` of moduli drawn from a shared pool."""
    rng = random.Random(seed)
    factory = WeakKeyFactory(seed=seed, prime_bits=96)
    weak_profile = SharedPrimeProfile(
        profile_id="demo-fleet", boot_states=max(2, int(count * weak_fraction) // 4)
    )
    healthy_profile = HealthyProfile(profile_id="demo-healthy")
    moduli = []
    weak_count = int(count * weak_fraction)
    for _ in range(weak_count):
        moduli.append(weak_profile.generate(rng, factory).keypair.public.n)
    for _ in range(count - weak_count):
        moduli.append(healthy_profile.generate(rng, factory).keypair.public.n)
    rng.shuffle(moduli)
    return moduli


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--moduli", type=int, default=2000)
    parser.add_argument("--weak-fraction", type=float, default=0.02)
    parser.add_argument("--processes", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    print(f"building corpus: {args.moduli} moduli, "
          f"{args.weak_fraction:.0%} from a flawed fleet...")
    corpus = build_corpus(args.moduli, args.weak_fraction, args.seed)

    started = time.perf_counter()
    classic = batch_gcd(corpus)
    classic_time = time.perf_counter() - started
    print(f"\nclassic batch GCD:  {classic_time:8.2f}s  "
          f"({classic.vulnerable_count()} moduli flagged)")

    if args.moduli <= 3000:
        started = time.perf_counter()
        naive = naive_pairwise_gcd(corpus)
        naive_time = time.perf_counter() - started
        assert naive.divisors == classic.divisors
        print(f"naive all-pairs:    {naive_time:8.2f}s  "
              f"({naive_time / max(classic_time, 1e-9):.1f}x the classic engine "
              "- quadratic, 'not feasible' at paper scale)")

    print(f"\nk-subset clustered engine ({args.processes} worker processes):")
    print(f"{'k':>4} {'tasks':>6} {'wall s':>8} {'cpu s':>8} {'work vs k=1':>12}")
    base_cpu = None
    for k in (1, 2, 4, 8, 16):
        engine = ClusteredBatchGcd(k=k, processes=args.processes)
        result = engine.run(corpus)
        assert result.divisors == classic.divisors
        stats = engine.last_stats
        if base_cpu is None:
            base_cpu = stats.cpu_seconds
        print(f"{k:>4} {stats.tasks:>6} {stats.wall_seconds:>8.2f} "
              f"{stats.cpu_seconds:>8.2f} {stats.cpu_seconds / base_cpu:>11.1f}x")
    print("\ntotal work grows with k (the paper: quadratic in k), but the "
          "k**2 independent tasks spread across the cluster - the paper ran "
          "k=16 over 22 machines in 86 min vs 500 min for the classic "
          "algorithm on one machine.")


if __name__ == "__main__":
    main()
