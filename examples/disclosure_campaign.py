#!/usr/bin/env python3
"""Simulate the 2012 vendor-notification campaign (Sections 2.5 and 5).

Runs the stochastic disclosure-process model over the 37 notified vendors
and prints a Table 2-shaped outcome, then the counterfactual the paper's
Discussion suggests: what if every unreachable vendor had been routed
through CERT/CC from day one?

Run:  python examples/disclosure_campaign.py [--seed N]
"""

from __future__ import annotations

import argparse
import random
from collections import Counter

from repro.devices.vendors import notified_2012_vendors
from repro.disclosure.process import NotificationCampaign
from repro.reporting.text import render_table
from repro.timeline import Month


def summarize(label: str, cert_fraction: float, seeds: range) -> dict:
    acked = advisories = contacts = cert_advisories = 0
    for seed in seeds:
        campaign = NotificationCampaign(Month(2012, 2), cert_fraction=cert_fraction)
        summary = campaign.run(notified_2012_vendors(), random.Random(seed))
        acked += summary.acknowledged
        advisories += summary.advisories
        contacts += summary.contacts_found
        cert_advisories += summary.cert_assisted_advisories
    n = len(seeds)
    return {
        "campaign": label,
        "acknowledged": acked / n,
        "advisories": advisories / n,
        "contacts found": contacts / n,
        "cert-assisted advisories": cert_advisories / n,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2012)
    args = parser.parse_args()

    # One concrete campaign, vendor by vendor.
    campaign = NotificationCampaign(Month(2012, 2), cert_fraction=0.6)
    summary = campaign.run(notified_2012_vendors(), random.Random(args.seed))
    rows = []
    for outcome in summary.outcomes:
        rows.append(
            (
                outcome.vendor,
                outcome.channel.value,
                str(outcome.acknowledged) if outcome.acknowledged else "-",
                str(outcome.advisory) if outcome.advisory else "-",
            )
        )
    print(render_table(
        ["Vendor", "Channel", "Acknowledged", "Advisory"],
        rows,
        title="Simulated 2012 notification campaign "
        f"({summary.acknowledged} acknowledged, {summary.advisories} advisories; "
        "paper: ~half acknowledged, 5 advisories)",
    ))

    channels = Counter(o.channel.value for o in summary.outcomes)
    print("\nchannels used:", dict(channels))

    # Counterfactual: route everything through CERT (Section 5.1's
    # recommendation) vs. never escalating.
    print()
    seeds = range(args.seed, args.seed + 40)
    rows = []
    for label, fraction in (("as run (60% CERT)", 0.6),
                            ("no CERT escalation", 0.0),
                            ("full CERT routing", 1.0)):
        stats = summarize(label, fraction, seeds)
        rows.append(
            (
                stats["campaign"],
                f"{stats['acknowledged']:.1f}",
                f"{stats['advisories']:.1f}",
                f"{stats['cert-assisted advisories']:.1f}",
            )
        )
    print(render_table(
        ["Campaign", "Acked (mean)", "Advisories (mean)", "via CERT"],
        rows,
        title="Counterfactual campaigns (40 runs each)",
    ))


if __name__ == "__main__":
    main()
