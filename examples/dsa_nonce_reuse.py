#!/usr/bin/env python3
"""The DSA half of the 2012 disclosures: repeated nonces leak keys.

Of the 61 vendors notified in 2012, those not covered by this paper's RSA
analysis "produced vulnerable DSA signatures only" (Section 2.5).  The
mechanism is the same boot-time entropy hole: a device whose pool state
repeats reuses the per-signature nonce ``k``, and two signatures with a
shared nonce reveal the private key with schoolbook algebra.

Run:  python examples/dsa_nonce_reuse.py
"""

from __future__ import annotations

import random

from repro.crypto.dsa import (
    DsaKeyPair,
    generate_dsa_keypair,
    generate_parameters,
    recover_private_key_from_nonce_reuse,
    sign,
    verify,
)
from repro.entropy.boot import DeviceBootSimulator
from repro.entropy.sources import BootClockSource


def main() -> None:
    rng = random.Random(61)
    params = generate_parameters(rng, p_bits=256, q_bits=96)
    device = generate_dsa_keypair(params, rng)
    print(f"device SSH host key: q={params.q:#x}")

    # The flawed firmware derives its signing nonce from the (unseeded)
    # boot-time pool — which is identical on every boot.
    boot = DeviceBootSimulator(premix_sources=[BootClockSource(distinct_values=1)])
    nonce_boot1 = int.from_bytes(boot.boot(random.Random(1)).pool.read(16), "big")
    nonce_boot2 = int.from_bytes(boot.boot(random.Random(2)).pool.read(16), "big")
    assert nonce_boot1 == nonce_boot2
    k = nonce_boot1 % params.q or 1
    print("two boots produced the same signing nonce:", nonce_boot1 == nonce_boot2)

    # Two protocol runs observed on the wire (SSH host authentication).
    sig1 = sign(device, b"session-id-5f21|host-proof", nonce=k)
    sig2 = sign(device, b"session-id-a9c4|host-proof", nonce=k)
    assert verify(params, device.y, b"session-id-5f21|host-proof", sig1)
    print(f"signatures share r = {sig1.r == sig2.r} (the observable telltale)")

    # The attacker recovers the private key from public data alone.
    x = recover_private_key_from_nonce_reuse(
        params, b"session-id-5f21|host-proof", sig1,
        b"session-id-a9c4|host-proof", sig2,
    )
    print(f"recovered private key matches: {x == device.x}")

    # And can now impersonate the host.
    impostor = DsaKeyPair(parameters=params, x=x, y=device.y)
    forged = sign(impostor, b"welcome to the real server", rng=random.Random(3))
    assert verify(params, device.y, b"welcome to the real server", forged)
    print("forged a host signature that verifies under the device's key")


if __name__ == "__main__":
    main()
