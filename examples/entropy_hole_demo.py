#!/usr/bin/env python3
"""Root-cause demo: the boot-time entropy hole (Section 2.4), step by step.

Shows *why* the weak keys exist, at the mechanism level:

1. two headless devices boot from the same firmware image with no external
   entropy — their urandom pools are byte-identical;
2. both generate the first RSA prime from that state -> identical primes;
3. a clock tick arrives mid-generation -> the second primes diverge;
4. the resulting moduli look unrelated but share a factor, and a single
   gcd() breaks both in microseconds;
5. the patched boot (getrandom(2) semantics, Linux 2014) refuses to emit
   key material before the pool is seeded, closing the hole.

Run:  python examples/entropy_hole_demo.py
"""

from __future__ import annotations

import math
import random

from repro.crypto.primes import generate_prime
from repro.crypto.rsa import keypair_from_primes
from repro.entropy.boot import DeviceBootSimulator
from repro.entropy.pool import InsufficientEntropyError
from repro.entropy.sources import (
    BootClockSource,
    HardwareRngSource,
    NetworkInterruptSource,
)


def prime_from_pool(pool, bits: int = 128) -> int:
    """Derive a prime deterministically from the pool state (flawed keygen)."""
    seed = int.from_bytes(pool.read(32), "big")
    return generate_prime(bits, random.Random(seed))


def main() -> None:
    # --- the flawed boot: nothing mixed before keygen --------------------
    flawed = DeviceBootSimulator(
        premix_sources=[BootClockSource(distinct_values=1)],
        postmix_sources=[NetworkInterruptSource(events=6)],
    )
    device_a = flawed.boot(random.Random(101))
    device_b = flawed.boot(random.Random(202))
    print("flawed boot: pool seeded at keygen?",
          device_a.seeded_at_keygen, "/", device_b.seeded_at_keygen)

    p_a = prime_from_pool(device_a.pool)
    p_b = prime_from_pool(device_b.pool)
    print(f"first primes identical across devices: {p_a == p_b}")

    # Divergence arrives before the second prime (packets, clock ticks).
    flawed.continue_after_keygen(device_a, random.Random(303))
    flawed.continue_after_keygen(device_b, random.Random(404))
    q_a = prime_from_pool(device_a.pool)
    q_b = prime_from_pool(device_b.pool)
    print(f"second primes diverged:               {q_a != q_b}")

    key_a = keypair_from_primes(p_a, q_a)
    key_b = keypair_from_primes(p_b, q_b)
    n_a, n_b = key_a.public.n, key_b.public.n
    print(f"moduli look unrelated:                {n_a != n_b}")

    # --- the one-line attack (Section 2.3) -------------------------------
    shared = math.gcd(n_a, n_b)
    print(f"gcd(N_a, N_b) recovers the shared prime: {shared == p_a}")
    print(f"  q_a = N_a / p = {n_a // shared == q_a}")
    print(f"  q_b = N_b / p = {n_b // shared == q_b}")

    # --- the patched boot -------------------------------------------------
    patched = DeviceBootSimulator(premix_sources=[HardwareRngSource()])
    outcome = patched.boot(random.Random(505))
    print("\npatched boot: pool seeded at keygen?", outcome.seeded_at_keygen)

    # And the old behaviour would now raise instead of silently repeating:
    unseeded = DeviceBootSimulator(premix_sources=[]).boot(random.Random(1))
    try:
        unseeded.pool.getrandom(32)
    except InsufficientEntropyError as exc:
        print(f"getrandom(2) on an unseeded pool refuses: {exc}")


if __name__ == "__main__":
    main()
