#!/usr/bin/env python3
"""Quickstart: factor weak RSA keys with batch GCD in under a minute.

This walks the core loop of the paper in miniature:

1. simulate a small fleet of embedded devices with the boot-time entropy
   hole (identical boot states -> shared first primes);
2. mix them into a crowd of healthy keys;
3. run the batch GCD to find and factor every weak modulus;
4. recover a full private key from one shared factor and forge a signature.

Run:  python examples/quickstart.py [--telemetry-json report.json]

With ``--telemetry-json`` the run records spans/counters into a telemetry
RunReport and writes it as JSON — the worked example behind
``docs/TELEMETRY.md`` (validate it with ``python -m repro.telemetry``).
"""

from __future__ import annotations

import argparse
import random

from repro.core import batch_gcd, clustered_batch_gcd, naive_pairwise_gcd
from repro.crypto.rsa import recover_private_key
from repro.entropy.keygen import HealthyProfile, SharedPrimeProfile, WeakKeyFactory
from repro.telemetry import Telemetry, use_telemetry


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--telemetry-json", metavar="PATH",
        help="record telemetry and write the RunReport as JSON",
    )
    args = parser.parse_args(argv)
    telemetry = Telemetry(enabled=args.telemetry_json is not None)

    rng = random.Random(2016)
    factory = WeakKeyFactory(seed=2016, prime_bits=128)

    with use_telemetry(telemetry):
        # A flawed product line: the whole fleet can only boot into 12
        # distinct entropy-pool states, so first primes repeat across devices.
        with telemetry.span("quickstart.keygen"):
            flawed_fleet = SharedPrimeProfile(
                profile_id="acme-router", boot_states=12, openssl_style=True
            )
            weak_keys = [flawed_fleet.generate(rng, factory) for _ in range(40)]

            # A healthy crowd: properly seeded servers with unique primes.
            healthy = HealthyProfile(profile_id="web-servers")
            healthy_keys = [healthy.generate(rng, factory) for _ in range(160)]

        corpus = [k.keypair.public.n for k in weak_keys + healthy_keys]
        rng.shuffle(corpus)
        telemetry.counter("quickstart.corpus_moduli", len(corpus))
        print(f"corpus: {len(corpus)} distinct RSA moduli "
              f"({len(weak_keys)} from the flawed fleet)")

        # --- the paper's computation -------------------------------------
        with telemetry.span("quickstart.batch_gcd"):
            result = batch_gcd(corpus)
            factored = result.resolve()
        telemetry.counter("quickstart.factored", len(factored))
        print(f"batch GCD factored {len(factored)} moduli")

        # All three engines agree.
        with telemetry.span("quickstart.cross_check"):
            assert naive_pairwise_gcd(corpus).divisors == result.divisors
            assert clustered_batch_gcd(corpus, k=4).divisors == result.divisors
        print("naive / classic / clustered engines agree")

        # Every factored key is genuinely from the flawed fleet.
        weak_truth = {k.keypair.public.n for k in weak_keys}
        assert set(factored) <= weak_truth
        recall = len(factored) / len(weak_truth)
        print(f"recall on the flawed fleet: {recall:.0%} "
              "(unfactored ones never collided on a boot state)")

        # --- what an attacker does next ----------------------------------
        with telemetry.span("quickstart.key_recovery"):
            n, fact = next(iter(factored.items()))
            private = recover_private_key(n, 65537, fact.p)
            signature = private.sign(b"firmware-update-v2.bin")
            assert private.public_key.verify(b"firmware-update-v2.bin", signature)
        print(f"recovered a private key for modulus {str(n)[:24]}... "
              "and forged a signature with it")

    if args.telemetry_json:
        with open(args.telemetry_json, "w", encoding="utf-8") as handle:
            handle.write(telemetry.report().to_json() + "\n")
        print(f"telemetry report written to {args.telemetry_json}")


if __name__ == "__main__":
    main()
