#!/usr/bin/env python3
"""Quickstart: factor weak RSA keys with batch GCD in under a minute.

This walks the core loop of the paper in miniature:

1. simulate a small fleet of embedded devices with the boot-time entropy
   hole (identical boot states -> shared first primes);
2. mix them into a crowd of healthy keys;
3. run the batch GCD to find and factor every weak modulus;
4. recover a full private key from one shared factor and forge a signature.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.core import batch_gcd, clustered_batch_gcd, naive_pairwise_gcd
from repro.crypto.rsa import recover_private_key
from repro.entropy.keygen import HealthyProfile, SharedPrimeProfile, WeakKeyFactory


def main() -> None:
    rng = random.Random(2016)
    factory = WeakKeyFactory(seed=2016, prime_bits=128)

    # A flawed product line: the whole fleet can only boot into 12 distinct
    # entropy-pool states, so first primes repeat across devices.
    flawed_fleet = SharedPrimeProfile(
        profile_id="acme-router", boot_states=12, openssl_style=True
    )
    weak_keys = [flawed_fleet.generate(rng, factory) for _ in range(40)]

    # A healthy crowd: properly seeded servers with unique primes.
    healthy = HealthyProfile(profile_id="web-servers")
    healthy_keys = [healthy.generate(rng, factory) for _ in range(160)]

    corpus = [k.keypair.public.n for k in weak_keys + healthy_keys]
    rng.shuffle(corpus)
    print(f"corpus: {len(corpus)} distinct RSA moduli "
          f"({len(weak_keys)} from the flawed fleet)")

    # --- the paper's computation -------------------------------------
    result = batch_gcd(corpus)
    factored = result.resolve()
    print(f"batch GCD factored {len(factored)} moduli")

    # All three engines agree.
    assert naive_pairwise_gcd(corpus).divisors == result.divisors
    assert clustered_batch_gcd(corpus, k=4).divisors == result.divisors
    print("naive / classic / clustered engines agree")

    # Every factored key is genuinely from the flawed fleet.
    weak_truth = {k.keypair.public.n for k in weak_keys}
    assert set(factored) <= weak_truth
    recall = len(factored) / len(weak_truth)
    print(f"recall on the flawed fleet: {recall:.0%} "
          "(unfactored ones never collided on a boot state)")

    # --- what an attacker does next ----------------------------------
    n, fact = next(iter(factored.items()))
    private = recover_private_key(n, 65537, fact.p)
    signature = private.sign(b"firmware-update-v2.bin")
    assert private.public_key.verify(b"firmware-update-v2.bin", signature)
    print(f"recovered a private key for modulus {str(n)[:24]}... "
          "and forged a signature with it")


if __name__ == "__main__":
    main()
