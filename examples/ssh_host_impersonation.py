#!/usr/bin/env python3
"""SSH host impersonation with recovered keys — no warning shown.

Table 4's SSH column (723 vulnerable RSA host keys) and the DSA-only
vendors of Section 2.5 share a punchline: once a host key is recovered —
by batch GCD for RSA, by nonce-reuse algebra for DSA — a client that has
already pinned the host in known_hosts reconnects to the impostor
*silently*. The scary "host key changed" warning only fires for key
mismatches, and the impostor serves the genuine key.

Run:  python examples/ssh_host_impersonation.py
"""

from __future__ import annotations

import random

from repro.core import batch_gcd
from repro.crypto import dsa
from repro.crypto.primes import generate_prime
from repro.crypto.rsa import keypair_from_primes
from repro.ssh import (
    DsaHostKey,
    HostImpersonator,
    KnownHostsClient,
    RsaHostKey,
    SshServer,
)


def rsa_story(rng: random.Random) -> None:
    print("--- RSA host keys (batch GCD) ---")
    shared = generate_prime(96, rng)
    fleet = [
        SshServer(
            host=f"gw-{i}.example",
            host_key=RsaHostKey(keypair_from_primes(shared, generate_prime(96, rng))),
        )
        for i in range(3)
    ]
    client = KnownHostsClient()
    for server in fleet:
        client.connect(server, rng)
    print(f"client pinned {len(client.known_hosts)} host keys")

    moduli = [s.host_key.keypair.public.n for s in fleet]
    factored = batch_gcd(moduli).resolve()
    print(f"batch GCD factored {len(factored)}/{len(moduli)} host keys")

    victim = fleet[0]
    impostor = HostImpersonator().impersonate_rsa(
        victim, factored[victim.host_key.keypair.public.n].p
    )
    client.connect(impostor, rng)  # no HostVerificationError: silent MITM
    print(f"impersonated {victim.host}: client reconnected with NO warning")


def dsa_story(rng: random.Random) -> None:
    print("\n--- DSA host keys (nonce reuse) ---")
    params = dsa.generate_parameters(rng, p_bits=256, q_bits=96)
    keypair = dsa.generate_dsa_keypair(params, rng)
    victim = SshServer(
        host="plc.factory",
        host_key=DsaHostKey(keypair=keypair, nonce_source=424242 % params.q),
    )
    client = KnownHostsClient()
    client.connect(victim, rng)
    print("client pinned the PLC's ssh-dss host key")

    # Record two key exchanges off the wire.
    _n1, digest1, sig1 = victim.key_exchange(client.version, rng)
    _n2, digest2, sig2 = victim.key_exchange(client.version, rng)
    print(f"two recorded exchanges share r: {sig1[0] == sig2[0]}")

    impostor = HostImpersonator().impersonate_dsa_from_signatures(
        victim, digest1, sig1, digest2, sig2
    )
    client.connect(impostor, rng)
    print("recovered the DSA key from signatures alone; silent MITM again")


def main() -> None:
    rng = random.Random(2016)
    rsa_story(rng)
    dsa_story(rng)


if __name__ == "__main__":
    main()
