#!/usr/bin/env python3
"""TLS-level attacks with factored keys: passive wiretap and active MITM.

Reproduces Section 2.1's threat model on live (simulated) protocol runs:

1. a weak-fleet firewall terminates TLS management sessions; a wiretap
   records them — some RSA key transport, some DHE;
2. batch GCD factors the fleet's moduli from public data only;
3. the passive attacker decrypts every recorded RSA-kex session but none
   of the DHE ones (forward secrecy) — the paper's "74% only support RSA
   key exchange" is exactly the share with no such protection;
4. the active attacker impersonates the device and defeats DHE too.

Run:  python examples/tls_interception.py
"""

from __future__ import annotations

import random

from repro.core import batch_gcd
from repro.crypto.certs import DistinguishedName, self_signed_certificate
from repro.entropy.keygen import SharedPrimeProfile, WeakKeyFactory
from repro.tls import (
    ActiveMitm,
    CipherSuite,
    PassiveEavesdropper,
    TlsClient,
    TlsServer,
    handshake,
)


def build_fleet(count: int, rng: random.Random) -> list[TlsServer]:
    """A fleet of firewalls with the boot-time entropy hole."""
    from datetime import date

    factory = WeakKeyFactory(seed=99, prime_bits=128)
    profile = SharedPrimeProfile(profile_id="fw-fleet", boot_states=4)
    servers = []
    for index in range(count):
        key = profile.generate(rng, factory)
        certificate = self_signed_certificate(
            subject=DistinguishedName(O="Acme Firewalls", CN=f"fw-{index:03d}"),
            keypair=key.keypair,
            serial=index,
            not_before=date(2012, 1, 1),
            not_after=date(2022, 1, 1),
        )
        servers.append(
            TlsServer(certificate=certificate, private_key=key.keypair.private)
        )
    return servers


def main() -> None:
    rng = random.Random(2016)
    fleet = build_fleet(12, rng)
    victim = fleet[0]

    # --- 1. legitimate sessions, recorded off the wire ------------------
    eve = PassiveEavesdropper()
    secrets = []
    for i in range(6):
        suite = CipherSuite.RSA if i % 3 else CipherSuite.DHE_RSA
        session = handshake(TlsClient(offered=(suite,)), victim, rng)
        payload = f"admin-command-{i}".encode()
        session.send(payload)
        secrets.append((suite, payload))
        eve.record(session.transcript)
    print(f"recorded {len(eve.transcripts)} sessions "
          f"({sum(1 for s, _ in secrets if s is CipherSuite.RSA)} RSA-kex, "
          f"{sum(1 for s, _ in secrets if s is CipherSuite.DHE_RSA)} DHE)")

    # --- 2. the batch-GCD step over public moduli ------------------------
    moduli = [s.certificate.public_key.n for s in fleet]
    factored = batch_gcd(moduli).resolve()
    print(f"batch GCD factored {len(factored)}/{len(moduli)} fleet moduli")

    n = victim.certificate.public_key.n
    eve.learn_factor(n, factored[n].p)

    # --- 3. passive decryption -------------------------------------------
    decrypted = 0
    for transcript, (suite, payload) in zip(eve.transcripts, secrets):
        if eve.can_decrypt(transcript):
            assert eve.decrypt(transcript) == [payload]
            decrypted += 1
        else:
            assert suite is CipherSuite.DHE_RSA  # forward secrecy held
    print(f"passively decrypted {decrypted} RSA-kex sessions; "
          f"{eve.decryptable_fraction():.0%} of the wiretap readable "
          "(DHE sessions stayed opaque)")

    # --- 4. active impersonation defeats DHE ------------------------------
    mitm = ActiveMitm()
    mitm.learn_factor(n, factored[n].p)
    session = mitm.intercept(TlsClient(), victim, rng)
    assert session.transcript.suite is CipherSuite.DHE_RSA
    session.send(b"credentials: admin / hunter2")
    print("active MITM completed a DHE handshake as the victim "
          "(genuine certificate, forged key-exchange signature)")


if __name__ == "__main__":
    main()
