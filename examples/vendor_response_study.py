#!/usr/bin/env python3
"""The full measurement study in miniature: every table, key figures.

Runs the complete pipeline — world simulation, six years of monthly scans,
clustered batch GCD, fingerprinting, longitudinal analysis — at a small
scale, then prints the reproduced Tables 1-5, Figure 1, and the vendor
stories the paper tells (Juniper's post-advisory rise, the Heartbleed drop,
the newly-vulnerable vendors of Figure 10).

Run:  python examples/vendor_response_study.py [--seed N]
      (takes ~1 minute at the default example scale)
"""

from __future__ import annotations

import argparse

from repro.pipeline import run_study
from repro.reporting.study import (
    render_figure1,
    render_figure7,
    render_summary,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_vendor_figure,
)
from repro.studyconfig import StudyConfig
from repro.timeline import HEARTBLEED


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--preset", choices=("tiny", "medium"), default="tiny",
        help="tiny runs in seconds; medium takes a couple of minutes",
    )
    args = parser.parse_args()
    config = (
        StudyConfig.tiny(seed=args.seed)
        if args.preset == "tiny"
        else StudyConfig.medium(seed=args.seed)
    )

    result = run_study(config)

    print(render_summary(result))
    for render in (render_table1, render_table2, render_table3,
                   render_table4, render_table5):
        print()
        print(render(result))
    print()
    print(render_figure1(result))
    print()
    print(render_vendor_figure(result, "Juniper", "Figure 3"))
    print()
    print(render_figure7(result))

    # --- the paper's vendor-response story, as assertions ---------------
    print("\n--- headline findings ---")
    juniper = result.series.vendor("Juniper")
    pre_heartbleed = [p for p in juniper.points if p.month < HEARTBLEED]
    early = [p for p in pre_heartbleed if p.month.year <= 2012]
    if early and pre_heartbleed:
        rose = max(p.vulnerable for p in pre_heartbleed) > max(
            p.vulnerable for p in early
        )
        print(f"Juniper vulnerable hosts rose after its 2012 advisory: {rose}")
    impact = result.heartbleed
    print(
        "largest vulnerable drop at "
        f"{impact.global_largest_vulnerable_drop_month} "
        f"(Heartbleed month: {HEARTBLEED})"
    )
    for vendor in ("Huawei", "D-Link", "Schmid Telecom"):
        series = result.series.vendor(vendor)
        if not series.points:
            continue
        first_vulnerable = next(
            (p.month for p in series.points if p.vulnerable > 0), None
        )
        print(f"{vendor}: first vulnerable hosts observed {first_vulnerable}")


if __name__ == "__main__":
    main()
