#!/usr/bin/env python3
"""Attack walkthrough: from a public scan to decrypted admin traffic.

Reproduces the threat model of Section 2.1 end to end:

1. a fleet of firewalls with the boot-time entropy hole serves HTTPS
   management interfaces (self-signed certificates, RSA-only key exchange);
2. a passive attacker collects the public certificates — exactly what an
   internet-wide scan sees;
3. batch GCD factors the weak moduli; ``recover_private_key`` turns a
   shared factor into a working private key;
4. the attacker decrypts a recorded TLS-style session (RSA key transport)
   and impersonates the device by re-signing its certificate content.

Run:  python examples/weak_key_attack.py
"""

from __future__ import annotations

import random

from repro.core import batch_gcd
from repro.crypto.rsa import recover_private_key
from repro.devices.catalog import models_for_vendor
from repro.devices.population import IpAllocator, ModelPopulation
from repro.entropy.keygen import WeakKeyFactory
from repro.timeline import Month


def main() -> None:
    rng = random.Random(7)
    factory = WeakKeyFactory(seed=7, prime_bits=128)

    # Deploy a Juniper-style fleet (Figure 3's devices) for two years.
    (model,) = models_for_vendor("Juniper")
    fleet = ModelPopulation(
        model=model,
        divisor=800,  # a small sample of the paper-scale fleet
        factory=factory,
        allocator=IpAllocator(rng),
        rng=rng,
    )
    for month in Month.range(Month(2010, 7), Month(2012, 6)):
        fleet.step(month)
    print(f"fleet online: {fleet.online_count()} devices "
          f"({fleet.weak_online_count()} currently serving weak keys)")

    # --- 1. the attacker's view: public certificates only --------------
    certificates = [d.certificate for d in fleet.online]
    moduli = sorted({c.public_key.n for c in certificates})
    print(f"collected {len(moduli)} distinct public moduli from the scan")

    # --- 2. batch GCD ---------------------------------------------------
    factored = batch_gcd(moduli).resolve()
    print(f"factored {len(factored)} moduli with batch GCD")
    if not factored:
        raise SystemExit("no collisions in this sample; rerun with more devices")

    # --- 3. private-key recovery ----------------------------------------
    victim = next(
        d for d in fleet.online if d.certificate.public_key.n in factored
    )
    fact = factored[victim.certificate.public_key.n]
    private = recover_private_key(victim.certificate.public_key.n, 65537, fact.p)
    print(f"recovered the private key of device at "
          f"{victim.ip >> 24 & 255}.{victim.ip >> 16 & 255}."
          f"{victim.ip >> 8 & 255}.{victim.ip & 255}")

    # --- 4a. passive decryption of RSA key transport ---------------------
    # A client encrypted its session secret to the device's public key;
    # the attacker recorded the ciphertext off the wire.
    session_secret = rng.getrandbits(100)
    recorded_ciphertext = victim.certificate.public_key.encrypt(session_secret)
    assert private.decrypt(recorded_ciphertext) == session_secret
    print("decrypted a recorded RSA-key-exchange session "
          "(74% of vulnerable devices support only this mode)")

    # --- 4b. active impersonation ----------------------------------------
    login_page = b"admin-login: send credentials here"
    forged = private.sign(login_page)
    assert victim.certificate.public_key.verify(login_page, forged)
    print("forged a signature that validates under the device's certificate")

    # Sanity: the attack never touched ground-truth internals.
    assert victim.key.keypair.private.p in (fact.p, fact.q)
    print("recovered factors match the device's true key generation")


if __name__ == "__main__":
    main()
