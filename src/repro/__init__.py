"""repro: a full reproduction of "Weak Keys Remain Widespread in Network
Devices" (Hastings, Fried, Heninger — IMC 2016).

The paper measured six years of internet-wide HTTPS scans, factored 313,330
weak RSA moduli with a cluster-parallel batch GCD, fingerprinted the flawed
device implementations, and analysed vendor and end-user (non-)response to
the 2012 weak-key disclosures.

This package rebuilds the measurement system end to end on a simulated
internet (the paper's scan corpus is not redistributable), exercising the
identical algorithms and analysis pipeline:

>>> from repro import StudyConfig, run_study
>>> result = run_study(StudyConfig.tiny())          # doctest: +SKIP
>>> result.table1.vulnerable_moduli_raw             # doctest: +SKIP

Subpackages:

- :mod:`repro.numt` — number theory (trees, primality, gcd machinery).
- :mod:`repro.crypto` — primes, RSA, certificates.
- :mod:`repro.entropy` — the boot-time entropy-hole simulator.
- :mod:`repro.core` — batch-GCD engines (naive, classic, clustered).
- :mod:`repro.devices` — vendors, device models, population dynamics.
- :mod:`repro.scans` — internet-wide scan simulation and artifacts.
- :mod:`repro.fingerprint` — implementation fingerprinting.
- :mod:`repro.analysis` — tables, figures, transitions, event studies.
- :mod:`repro.reporting` — text rendering of tables and chart series.
- :mod:`repro.telemetry` — counters, timers, spans; the RunReport every
  instrumented run can emit (``repro-study --telemetry-json``).

See ``ARCHITECTURE.md`` for the guided tour and data-flow diagram.
"""

from repro.core import batch_gcd, clustered_batch_gcd, naive_pairwise_gcd
from repro.pipeline import StudyResult, StudyWorld, build_world, run_study
from repro.studyconfig import StudyConfig
from repro.telemetry import RunReport, Telemetry
from repro.timeline import HEARTBLEED, STUDY_END, STUDY_START, Month

__version__ = "1.0.0"

__all__ = [
    "HEARTBLEED",
    "Month",
    "RunReport",
    "STUDY_END",
    "STUDY_START",
    "StudyConfig",
    "StudyResult",
    "StudyWorld",
    "Telemetry",
    "batch_gcd",
    "build_world",
    "clustered_batch_gcd",
    "naive_pairwise_gcd",
    "run_study",
    "__version__",
]
