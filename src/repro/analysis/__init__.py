"""Longitudinal analysis: time series, transitions, tables, event studies.

- :mod:`repro.analysis.timeseries` — Figures 1 and 3–10 series.
- :mod:`repro.analysis.transitions` — per-IP vulnerable/non-vulnerable
  transition statistics (Section 4.1).
- :mod:`repro.analysis.tables` — Tables 1–5 builders.
- :mod:`repro.analysis.heartbleed` — the April 2014 drop (Section 4.1).
- :mod:`repro.analysis.eol` — Cisco end-of-life correlation (Figure 7).
"""

from repro.analysis.eol import ModelEolAnalysis, analyze_eol, build_model_series
from repro.analysis.exposure import ExposureStats, analyze_exposure
from repro.analysis.heartbleed import (
    HeartbleedImpact,
    VendorHeartbleedImpact,
    analyze_heartbleed,
)
from repro.analysis.lifetimes import (
    CertificateLifetimes,
    analyze_certificate_lifetimes,
)
from repro.analysis.tables import (
    Table1DatasetSummary,
    Table2VendorResponses,
    Table3ScanComparison,
    Table4ProtocolRow,
    Table5OpensslTable,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
)
from repro.analysis.timeseries import (
    GlobalSeries,
    SeriesPoint,
    VendorSeries,
    build_series,
)
from repro.analysis.transitions import (
    IpReuseStats,
    TransitionStats,
    analyze_ip_reuse,
    analyze_transitions,
)

__all__ = [
    "CertificateLifetimes",
    "ExposureStats",
    "GlobalSeries",
    "HeartbleedImpact",
    "IpReuseStats",
    "ModelEolAnalysis",
    "SeriesPoint",
    "Table1DatasetSummary",
    "Table2VendorResponses",
    "Table3ScanComparison",
    "Table4ProtocolRow",
    "Table5OpensslTable",
    "TransitionStats",
    "VendorHeartbleedImpact",
    "VendorSeries",
    "analyze_certificate_lifetimes",
    "analyze_eol",
    "analyze_exposure",
    "analyze_heartbleed",
    "analyze_ip_reuse",
    "analyze_transitions",
    "build_model_series",
    "build_series",
    "build_table1",
    "build_table2",
    "build_table3",
    "build_table4",
    "build_table5",
]
