"""End-of-life correlation for Cisco model populations (Figure 7).

"We found that the end-of-life announcements marked the beginning of a slow
decrease in the total number of devices online.  We also note that the
end-of-life announcement typically preceded the end-of-sale date by several
months."

Cisco certificates expose the model in the distinguished name, so per-model
series are built from the fingerprinting layer's ``model_by_cert`` labels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scans.records import CertificateStore, ScanSnapshot
from repro.timeline import Month

__all__ = ["ModelEolAnalysis", "build_model_series", "analyze_eol"]


@dataclass(frozen=True, slots=True)
class ModelEolAnalysis:
    """One model row of Figure 7.

    Attributes:
        model: model name as shown in certificates (e.g. "RV082").
        eol: end-of-life announcement month (None if never announced).
        end_of_sale: final sale month where announced.
        peak_month: month of the model's peak observed population.
        population_at_eol: weighted population when EOL was announced.
        population_at_end: weighted population in the final scan.
        declining_after_eol: whether the post-EOL trend is downward.
    """

    model: str
    eol: Month | None
    end_of_sale: Month | None
    peak_month: Month | None
    population_at_eol: float
    population_at_end: float
    declining_after_eol: bool


def build_model_series(
    snapshots: list[ScanSnapshot],
    store: CertificateStore,
    model_by_cert: dict[int, str],
) -> dict[str, list[tuple[Month, float]]]:
    """Weighted monthly totals per certificate-exposed model."""
    entries = store.entries()
    series: dict[str, dict[Month, float]] = {}
    for snapshot in snapshots:
        for _ip, cert_id in snapshot.records():
            model = model_by_cert.get(cert_id)
            if model is None:
                continue
            bucket = series.setdefault(model, {})
            bucket[snapshot.month] = bucket.get(snapshot.month, 0.0) + entries[
                cert_id
            ].weight
    return {
        model: sorted(points.items()) for model, points in series.items()
    }


def analyze_eol(
    snapshots: list[ScanSnapshot],
    store: CertificateStore,
    model_by_cert: dict[int, str],
    eol_dates: dict[str, tuple[Month | None, Month | None]],
) -> list[ModelEolAnalysis]:
    """Correlate per-model population trends with EOL announcements.

    Args:
        snapshots: HTTPS snapshots in month order.
        store: certificate store.
        model_by_cert: fingerprint model labels.
        eol_dates: model -> (eol announcement, end of sale).
    """
    series = build_model_series(snapshots, store, model_by_cert)
    analyses = []
    for model, points in sorted(series.items()):
        if not points:
            continue
        eol, end_of_sale = eol_dates.get(model, (None, None))
        peak_month, _peak_value = max(points, key=lambda mp: mp[1])
        at_eol = 0.0
        if eol is not None:
            on_or_before = [value for month, value in points if month <= eol]
            at_eol = on_or_before[-1] if on_or_before else 0.0
        at_end = points[-1][1]
        declining = False
        if eol is not None:
            after = [value for month, value in points if month >= eol]
            if len(after) >= 2:
                declining = after[-1] < max(after)
        analyses.append(
            ModelEolAnalysis(
                model=model,
                eol=eol,
                end_of_sale=end_of_sale,
                peak_month=peak_month,
                population_at_eol=at_eol,
                population_at_end=at_end,
                declining_after_eol=declining,
            )
        )
    return analyses
