"""Exposure analysis: what an attacker could do with the factored keys.

Section 1 of the paper: "74% of the 61,240 vulnerable devices present in
our most recent scan data from April 2016 only support RSA key exchange,
making them vulnerable to passive decryption by an attacker who is able to
observe network traffic."  Hosts supporting (EC)DHE are still vulnerable to
active man-in-the-middle attacks, but not passive decryption.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scans.records import CertificateStore, ScanSnapshot

__all__ = ["ExposureStats", "analyze_exposure"]


@dataclass(frozen=True, slots=True)
class ExposureStats:
    """Key-exchange exposure of the vulnerable population in one scan.

    Attributes:
        month: the scan analysed.
        vulnerable_hosts: weighted vulnerable host count.
        passively_decryptable: weighted vulnerable hosts that negotiate
            only RSA key exchange.
        vulnerable_hosts_raw: simulated vulnerable host count.
        passively_decryptable_raw: simulated RSA-kex-only count.
    """

    month: "object"
    vulnerable_hosts: float
    passively_decryptable: float
    vulnerable_hosts_raw: int
    passively_decryptable_raw: int

    @property
    def passive_fraction(self) -> float:
        """Share of vulnerable hosts open to passive decryption (paper: 74%)."""
        if not self.vulnerable_hosts:
            return 0.0
        return self.passively_decryptable / self.vulnerable_hosts


def analyze_exposure(
    snapshot: ScanSnapshot,
    store: CertificateStore,
    vulnerable_moduli: set[int],
) -> ExposureStats:
    """Compute the passive-decryption exposure for one scan snapshot."""
    entries = store.entries()
    vulnerable_w = passive_w = 0.0
    vulnerable_raw = passive_raw = 0
    for _ip, cert_id in snapshot.records():
        entry = entries[cert_id]
        if entry.certificate.public_key.n not in vulnerable_moduli:
            continue
        vulnerable_w += entry.weight
        vulnerable_raw += 1
        if entry.only_rsa_kex:
            passive_w += entry.weight
            passive_raw += 1
    return ExposureStats(
        month=snapshot.month,
        vulnerable_hosts=vulnerable_w,
        passively_decryptable=passive_w,
        vulnerable_hosts_raw=vulnerable_raw,
        passively_decryptable_raw=passive_raw,
    )
