"""Heartbleed-drop quantification (Sections 1 and 4.1).

"The single largest drop in the number of vulnerable keys occurred shortly
after the disclosure of the Heartbleed vulnerability in April 2014.  The
decrease in vulnerable keys is confined to a handful of devices, for which
there was an even larger concurrent drop in the total population of
fingerprinted devices."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.timeseries import GlobalSeries, VendorSeries
from repro.timeline import HEARTBLEED, Month

__all__ = ["HeartbleedImpact", "VendorHeartbleedImpact", "analyze_heartbleed"]


@dataclass(frozen=True, slots=True)
class VendorHeartbleedImpact:
    """One vendor's change across the Heartbleed month.

    Attributes:
        vendor: vendor name.
        total_before, total_after: weighted totals in the scans bracketing
            April 2014.
        vulnerable_before, vulnerable_after: weighted vulnerable counts.
    """

    vendor: str
    total_before: float
    total_after: float
    vulnerable_before: float
    vulnerable_after: float

    @property
    def total_drop(self) -> float:
        """Hosts lost across the event (positive = drop)."""
        return self.total_before - self.total_after

    @property
    def vulnerable_drop(self) -> float:
        """Vulnerable hosts lost across the event."""
        return self.vulnerable_before - self.vulnerable_after


@dataclass(frozen=True, slots=True)
class HeartbleedImpact:
    """Global and per-vendor impact of the April 2014 event."""

    global_largest_vulnerable_drop_month: Month | None
    global_vulnerable_drop: float
    by_vendor: tuple[VendorHeartbleedImpact, ...]

    @property
    def drop_is_at_heartbleed(self) -> bool:
        """True when the study's largest vulnerable drop is at April 2014."""
        month = self.global_largest_vulnerable_drop_month
        return month is not None and abs(month - HEARTBLEED) <= 1


#: Months averaged on each side of April 2014; a window smooths the
#: scan-coverage noise that single-month brackets suffer from.
BRACKET_WINDOW = 3


def _bracket(series: VendorSeries) -> tuple[float, float, float, float] | None:
    """(total_before, total_after, vuln_before, vuln_after) around 2014-04.

    Each side is the mean over a ``BRACKET_WINDOW``-month window.
    """
    before = [
        p for p in series.points
        if HEARTBLEED + (-BRACKET_WINDOW) <= p.month < HEARTBLEED
    ]
    after = [
        p for p in series.points
        if HEARTBLEED <= p.month < HEARTBLEED + BRACKET_WINDOW
    ]
    if not before or not after:
        return None

    def mean(points, attr):
        return sum(getattr(p, attr) for p in points) / len(points)

    return (
        mean(before, "total"),
        mean(after, "total"),
        mean(before, "vulnerable"),
        mean(after, "vulnerable"),
    )


def analyze_heartbleed(
    series: GlobalSeries, vendors: list[str] | None = None
) -> HeartbleedImpact:
    """Quantify the Heartbleed drop globally and per vendor.

    Args:
        series: output of :func:`repro.analysis.timeseries.build_series`.
        vendors: vendors to break out (None = all observed).
    """
    drop = series.overall.largest_drop(vulnerable=True)
    impacts = []
    names = vendors if vendors is not None else sorted(series.by_vendor)
    for name in names:
        vendor_series = series.by_vendor.get(name)
        if vendor_series is None:
            continue
        bracket = _bracket(vendor_series)
        if bracket is None:
            continue
        total_before, total_after, vuln_before, vuln_after = bracket
        impacts.append(
            VendorHeartbleedImpact(
                vendor=name,
                total_before=total_before,
                total_after=total_after,
                vulnerable_before=vuln_before,
                vulnerable_after=vuln_after,
            )
        )
    return HeartbleedImpact(
        global_largest_vulnerable_drop_month=drop[0] if drop else None,
        global_vulnerable_drop=drop[1] if drop else 0.0,
        by_vendor=tuple(impacts),
    )
