"""Certificate lifetime and replacement analysis (Section 4.1).

"Examining certificate lifetimes and replacement on each host suggests
that the vulnerable population of IBM devices was decreasing because
devices (or their publicly accessible web interfaces) were taken offline
altogether, and not because users patched the vulnerability and renewed
their HTTPS certificates on the same device."

This module measures exactly that: per vendor, how long each certificate
is observed at an IP, how often hosts replace certificates at all, and
what ended each vulnerable tenure — replacement on the same host (a
potential patch) or disappearance (offlining).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scans.records import CertificateStore, ScanSnapshot

__all__ = ["CertificateLifetimes", "analyze_certificate_lifetimes"]


@dataclass(frozen=True, slots=True)
class CertificateLifetimes:
    """Per-vendor certificate-tenure statistics.

    Attributes:
        vendor: vendor name.
        tenures: number of (ip, certificate) tenures observed.
        mean_tenure_scans: average scans a certificate stays on its IP.
        max_tenure_scans: the longest observed tenure.
        vulnerable_tenures: tenures serving a vulnerable key.
        vulnerable_ended_by_replacement: vulnerable tenures that ended with
            the same IP serving a different certificate in a later scan
            (the renewal/patch signature).
        vulnerable_ended_by_disappearance: vulnerable tenures whose IP never
            reappears for this vendor (the offlining signature, which the
            paper found to dominate).
    """

    vendor: str
    tenures: int
    mean_tenure_scans: float
    max_tenure_scans: int
    vulnerable_tenures: int
    vulnerable_ended_by_replacement: int
    vulnerable_ended_by_disappearance: int

    @property
    def offlining_dominates(self) -> bool:
        """The paper's finding: disappearance beats renewal."""
        return (
            self.vulnerable_ended_by_disappearance
            >= self.vulnerable_ended_by_replacement
        )


def analyze_certificate_lifetimes(
    snapshots: list[ScanSnapshot],
    store: CertificateStore,
    vendor_by_cert: dict[int, str],
    vulnerable_moduli: set[int],
    vendor: str,
) -> CertificateLifetimes:
    """Measure certificate tenures for one vendor's hosts.

    A *tenure* is a maximal run of scans in which one IP serves one
    certificate (gaps in coverage are tolerated: the run is delimited by
    the first and last sighting of that pair).
    """
    entries = store.entries()
    vuln_flags = [e.certificate.public_key.n in vulnerable_moduli for e in entries]

    # (ip, cert_id) -> [first scan index, last scan index]
    spans: dict[tuple[int, int], list[int]] = {}
    last_seen_for_ip: dict[int, int] = {}
    for scan_index, snapshot in enumerate(snapshots):
        for ip, cert_id in snapshot.records():
            if vendor_by_cert.get(cert_id) != vendor:
                continue
            key = (ip, cert_id)
            span = spans.get(key)
            if span is None:
                spans[key] = [scan_index, scan_index]
            else:
                span[1] = scan_index
            last_seen_for_ip[ip] = scan_index

    if not spans:
        return CertificateLifetimes(
            vendor=vendor, tenures=0, mean_tenure_scans=0.0,
            max_tenure_scans=0, vulnerable_tenures=0,
            vulnerable_ended_by_replacement=0,
            vulnerable_ended_by_disappearance=0,
        )

    lengths = [last - first + 1 for first, last in spans.values()]
    vulnerable_tenures = replacement = disappearance = 0
    for (ip, cert_id), (_first, last) in spans.items():
        if not vuln_flags[cert_id]:
            continue
        vulnerable_tenures += 1
        if last_seen_for_ip[ip] > last:
            # The IP appears again later with some other certificate of
            # this vendor: a replacement on a live host.
            replacement += 1
        elif last < len(snapshots) - 1:
            # The tenure ended before the study did, and the IP never
            # returned: the host (or its interface) went away.
            disappearance += 1
    return CertificateLifetimes(
        vendor=vendor,
        tenures=len(spans),
        mean_tenure_scans=sum(lengths) / len(lengths),
        max_tenure_scans=max(lengths),
        vulnerable_tenures=vulnerable_tenures,
        vulnerable_ended_by_replacement=replacement,
        vulnerable_ended_by_disappearance=disappearance,
    )
