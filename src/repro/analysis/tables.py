"""Builders for the paper's Tables 1–5.

Each builder returns a small dataclass whose fields mirror the published
table's rows; weighted values estimate paper-scale units, raw values are the
simulated counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.vendors import VENDORS, ResponseCategory, notified_2012_vendors
from repro.fingerprint.engine import FingerprintReport
from repro.fingerprint.openssl import VendorOpensslVerdict
from repro.scans.protocols import ProtocolCorpus
from repro.scans.records import CertificateStore, ScanSnapshot
from repro.timeline import Month

__all__ = [
    "Table1DatasetSummary",
    "Table2VendorResponses",
    "Table3ScanComparison",
    "Table4ProtocolRow",
    "Table5OpensslTable",
    "build_table1",
    "build_table2",
    "build_table3",
    "build_table4",
    "build_table5",
]


# --------------------------------------------------------------------- #
# Table 1: dataset summary                                               #
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class Table1DatasetSummary:
    """Table 1: corpus-level counts (weighted = paper-scale estimates)."""

    https_host_records: float
    https_host_records_raw: int
    distinct_https_certificates: float
    distinct_https_certificates_raw: int
    distinct_https_moduli: float
    distinct_https_moduli_raw: int
    total_distinct_moduli: float
    total_distinct_moduli_raw: int
    vulnerable_moduli: float
    vulnerable_moduli_raw: int
    vulnerable_https_host_records: float
    vulnerable_https_host_records_raw: int
    vulnerable_https_certificates: float
    vulnerable_https_certificates_raw: int

    @property
    def vulnerable_moduli_fraction(self) -> float:
        """Share of distinct moduli that factored (paper: 0.37 %)."""
        if not self.total_distinct_moduli:
            return 0.0
        # Weighted float *counts*, not big-int moduli: exact / is intended.
        return self.vulnerable_moduli / self.total_distinct_moduli  # reprolint: disable=NUM001


def build_table1(
    snapshots: list[ScanSnapshot],
    store: CertificateStore,
    protocol_corpora: list[ProtocolCorpus],
    vulnerable_moduli: set[int],
) -> Table1DatasetSummary:
    """Aggregate the full corpus into Table 1."""
    entries = store.entries()
    weights = [e.weight for e in entries]
    moduli = [e.certificate.public_key.n for e in entries]
    vuln_flags = [n in vulnerable_moduli for n in moduli]

    records_w = records_raw = 0
    vuln_records_w = vuln_records_raw = 0
    seen_certs: set[int] = set()
    for snapshot in snapshots:
        for _ip, cert_id in snapshot.records():
            weight = weights[cert_id]
            records_w += weight
            records_raw += 1
            seen_certs.add(cert_id)
            if vuln_flags[cert_id]:
                vuln_records_w += weight
                vuln_records_raw += 1

    https_moduli: dict[int, int] = {}
    vuln_cert_w = vuln_cert_raw = 0
    cert_w = 0.0
    for cert_id in seen_certs:
        cert_w += weights[cert_id]
        n = moduli[cert_id]
        if n not in https_moduli or weights[cert_id] > https_moduli[n]:
            https_moduli[n] = weights[cert_id]
        if vuln_flags[cert_id]:
            vuln_cert_w += weights[cert_id]
            vuln_cert_raw += 1

    all_moduli = dict(https_moduli)
    for corpus in protocol_corpora:
        for n in corpus.all_moduli():
            if n not in all_moduli or corpus.weight > all_moduli[n]:
                all_moduli[n] = corpus.weight

    vuln_w = sum(w for n, w in all_moduli.items() if n in vulnerable_moduli)
    vuln_raw = sum(1 for n in all_moduli if n in vulnerable_moduli)
    return Table1DatasetSummary(
        https_host_records=float(records_w),
        https_host_records_raw=records_raw,
        distinct_https_certificates=cert_w,
        distinct_https_certificates_raw=len(seen_certs),
        distinct_https_moduli=float(sum(https_moduli.values())),
        distinct_https_moduli_raw=len(https_moduli),
        total_distinct_moduli=float(sum(all_moduli.values())),
        total_distinct_moduli_raw=len(all_moduli),
        vulnerable_moduli=float(vuln_w),
        vulnerable_moduli_raw=vuln_raw,
        vulnerable_https_host_records=float(vuln_records_w),
        vulnerable_https_host_records_raw=vuln_records_raw,
        vulnerable_https_certificates=float(vuln_cert_w),
        vulnerable_https_certificates_raw=vuln_cert_raw,
    )


# --------------------------------------------------------------------- #
# Table 2: vendor notification responses                                 #
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class Table2VendorResponses:
    """Table 2: the 2012 notification population by response category."""

    by_category: dict[ResponseCategory, tuple[str, ...]]

    @property
    def notified_count(self) -> int:
        """Vendors notified in 2012 (the paper's 37)."""
        return sum(len(v) for v in self.by_category.values())

    @property
    def public_advisory_count(self) -> int:
        """Vendors that released a public advisory (the paper's five)."""
        return len(self.by_category.get(ResponseCategory.PUBLIC_ADVISORY, ()))

    @property
    def acknowledged_count(self) -> int:
        """Vendors that acknowledged receipt in some substantive form."""
        return self.public_advisory_count + len(
            self.by_category.get(ResponseCategory.PRIVATE_RESPONSE, ())
        )


def build_table2() -> Table2VendorResponses:
    """Assemble Table 2 from the vendor registry."""
    by_category: dict[ResponseCategory, list[str]] = {}
    for vendor in notified_2012_vendors():
        by_category.setdefault(vendor.response, []).append(vendor.name)
    return Table2VendorResponses(
        by_category={k: tuple(v) for k, v in by_category.items()}
    )


# --------------------------------------------------------------------- #
# Table 3: earliest vs latest scan                                       #
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class Table3ScanComparison:
    """Table 3: one column of the earliest/latest scan summary."""

    source: str
    month: Month
    tls_handshakes: float
    tls_handshakes_raw: int
    distinct_certificates: float
    distinct_certificates_raw: int
    distinct_rsa_keys: float
    distinct_rsa_keys_raw: int


def _summarize_snapshot(
    snapshot: ScanSnapshot, store: CertificateStore
) -> Table3ScanComparison:
    entries = store.entries()
    handshakes_w = 0
    certs: set[int] = set()
    for _ip, cert_id in snapshot.records():
        handshakes_w += entries[cert_id].weight
        certs.add(cert_id)
    keys = {entries[c].certificate.public_key.n for c in certs}
    certs_w = sum(entries[c].weight for c in certs)
    keys_w = 0
    seen: set[int] = set()
    for c in certs:
        n = entries[c].certificate.public_key.n
        if n not in seen:
            seen.add(n)
            keys_w += entries[c].weight
    return Table3ScanComparison(
        source=snapshot.source,
        month=snapshot.month,
        tls_handshakes=float(handshakes_w),
        tls_handshakes_raw=snapshot.host_count,
        distinct_certificates=float(certs_w),
        distinct_certificates_raw=len(certs),
        distinct_rsa_keys=float(keys_w),
        distinct_rsa_keys_raw=len(keys),
    )


def build_table3(
    snapshots: list[ScanSnapshot], store: CertificateStore
) -> tuple[Table3ScanComparison, Table3ScanComparison]:
    """Summarise the earliest and latest scans (EFF 7/2010, Censys 2016)."""
    if not snapshots:
        raise ValueError("no snapshots to summarise")
    return (
        _summarize_snapshot(snapshots[0], store),
        _summarize_snapshot(snapshots[-1], store),
    )


# --------------------------------------------------------------------- #
# Table 4: per-protocol vulnerable hosts                                 #
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class Table4ProtocolRow:
    """One protocol column of Table 4."""

    protocol: str
    scan_month: Month
    total_hosts: float
    rsa_hosts: float
    vulnerable_hosts: float
    vulnerable_hosts_raw: int


def build_table4(
    snapshots: list[ScanSnapshot],
    store: CertificateStore,
    protocol_corpora: list[ProtocolCorpus],
    vulnerable_moduli: set[int],
) -> list[Table4ProtocolRow]:
    """Assemble Table 4: HTTPS from the latest snapshot, plus each protocol."""
    rows: list[Table4ProtocolRow] = []
    if snapshots:
        latest = snapshots[-1]
        entries = store.entries()
        total_w = 0.0
        rsa_w = 0.0
        vuln_w = 0.0
        vuln_raw = 0
        for _ip, cert_id in latest.records():
            entry = entries[cert_id]
            total_w += entry.weight
            rsa_w += entry.weight  # every simulated certificate is RSA
            if entry.certificate.public_key.n in vulnerable_moduli:
                vuln_w += entry.weight
                vuln_raw += 1
        rows.append(
            Table4ProtocolRow(
                protocol="HTTPS",
                scan_month=latest.month,
                total_hosts=total_w,
                rsa_hosts=rsa_w,
                vulnerable_hosts=vuln_w,
                vulnerable_hosts_raw=vuln_raw,
            )
        )
    merged: dict[str, list[ProtocolCorpus]] = {}
    for corpus in protocol_corpora:
        merged.setdefault(corpus.protocol, []).append(corpus)
    for protocol, parts in merged.items():
        total = sum(c.total_hosts_sim * c.weight for c in parts)
        rsa = sum(c.rsa_host_count_sim * c.weight for c in parts)
        vuln_w = 0.0
        vuln_raw = 0
        for corpus in parts:
            for n in corpus.rsa_moduli:
                if n in vulnerable_moduli:
                    vuln_w += corpus.weight
                    vuln_raw += 1
        rows.append(
            Table4ProtocolRow(
                protocol=protocol,
                scan_month=parts[0].scan_month,
                total_hosts=float(total),
                rsa_hosts=float(rsa),
                vulnerable_hosts=vuln_w,
                vulnerable_hosts_raw=vuln_raw,
            )
        )
    return rows


# --------------------------------------------------------------------- #
# Table 5: OpenSSL fingerprint classification                            #
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class Table5OpensslTable:
    """Table 5: vendors partitioned by the OpenSSL prime fingerprint."""

    satisfy: tuple[str, ...]
    do_not_satisfy: tuple[str, ...]
    inconclusive: tuple[str, ...]
    verdicts: tuple[VendorOpensslVerdict, ...] = field(default=())

    def expected_vs_registry(self) -> dict[str, tuple[bool | None, str]]:
        """Compare measured verdicts with the registry's Table 5 truth.

        Returns:
            vendor -> (registry uses_openssl, measured verdict).
        """
        out = {}
        for verdict in self.verdicts:
            registry = VENDORS.get(verdict.vendor)
            expected = registry.uses_openssl if registry else None
            out[verdict.vendor] = (expected, verdict.verdict)
        return out


def build_table5(report: FingerprintReport) -> Table5OpensslTable:
    """Partition fingerprinted vendors by OpenSSL verdict."""
    satisfy = []
    refute = []
    inconclusive = []
    for verdict in report.openssl_verdicts:
        if verdict.verdict == "openssl":
            satisfy.append(verdict.vendor)
        elif verdict.verdict == "not-openssl":
            refute.append(verdict.vendor)
        else:
            inconclusive.append(verdict.vendor)
    return Table5OpensslTable(
        satisfy=tuple(sorted(satisfy)),
        do_not_satisfy=tuple(sorted(refute)),
        inconclusive=tuple(sorted(inconclusive)),
        verdicts=tuple(report.openssl_verdicts),
    )
