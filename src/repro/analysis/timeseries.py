"""Monthly time series of total and vulnerable hosts (Figures 1, 3–10).

Counts are reported in *paper-scale estimated units*: each record
contributes the weight of the population it was simulated from.  Raw
simulated counts are retained alongside, so noise floors are visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scans.records import CertificateStore, ScanSnapshot
from repro.timeline import Month

__all__ = ["SeriesPoint", "VendorSeries", "GlobalSeries", "build_series"]


@dataclass(frozen=True, slots=True)
class SeriesPoint:
    """One month's observation for one series.

    Attributes:
        month: scan month.
        source: scan source name.
        total: weighted (paper-scale) host count.
        vulnerable: weighted vulnerable host count.
        total_raw: simulated host count.
        vulnerable_raw: simulated vulnerable host count.
    """

    month: Month
    source: str
    total: float
    vulnerable: float
    total_raw: int
    vulnerable_raw: int


@dataclass(slots=True)
class VendorSeries:
    """A vendor's (or the global) host/vulnerable series over the study."""

    name: str
    points: list[SeriesPoint] = field(default_factory=list)

    def month_point(self, month: Month) -> SeriesPoint | None:
        """The point for a given month, if scanned."""
        for point in self.points:
            if point.month == month:
                return point
        return None

    def totals(self) -> list[float]:
        """Weighted totals in month order."""
        return [p.total for p in self.points]

    def vulnerable(self) -> list[float]:
        """Weighted vulnerable counts in month order."""
        return [p.vulnerable for p in self.points]

    def peak_vulnerable(self) -> SeriesPoint | None:
        """The point with the highest vulnerable count."""
        return max(self.points, key=lambda p: p.vulnerable, default=None)

    def largest_drop(self, vulnerable: bool = True) -> tuple[Month, float] | None:
        """The month-over-month drop with the largest magnitude.

        Returns:
            ``(month, drop)`` where ``month`` is the later month of the pair
            and ``drop`` is positive for a decrease.
        """
        best: tuple[Month, float] | None = None
        for before, after in zip(self.points, self.points[1:]):
            values = (before.vulnerable, after.vulnerable) if vulnerable else (
                before.total, after.total
            )
            drop = values[0] - values[1]
            if best is None or drop > best[1]:
                best = (after.month, drop)
        return best


@dataclass(slots=True)
class GlobalSeries:
    """Figure 1: all HTTPS hosts and all vulnerable hosts, by scan source."""

    overall: VendorSeries
    by_vendor: dict[str, VendorSeries]

    def vendor(self, name: str) -> VendorSeries:
        """Series for one vendor (empty series if never observed)."""
        return self.by_vendor.get(name, VendorSeries(name=name))


def build_series(
    snapshots: list[ScanSnapshot],
    store: CertificateStore,
    vendor_by_cert: dict[int, str],
    vulnerable_moduli: set[int],
) -> GlobalSeries:
    """Aggregate snapshots into global and per-vendor monthly series.

    Args:
        snapshots: HTTPS snapshots in month order.
        store: the certificate store the snapshots reference.
        vendor_by_cert: fingerprinting output (cert id -> vendor).
        vulnerable_moduli: factored, artifact-free moduli.
    """
    entries = store.entries()
    weights = [e.weight for e in entries]
    vulnerable_flags = [
        e.certificate.public_key.n in vulnerable_moduli for e in entries
    ]
    vendors = [vendor_by_cert.get(cert_id) for cert_id in range(len(entries))]

    overall = VendorSeries(name="(all)")
    accumulators: dict[str, VendorSeries] = {}
    for snapshot in snapshots:
        total = vulnerable = 0.0
        total_raw = vulnerable_raw = 0
        per_vendor: dict[str, list[float]] = {}
        for _ip, cert_id in snapshot.records():
            weight = weights[cert_id]
            vuln = vulnerable_flags[cert_id]
            total += weight
            total_raw += 1
            if vuln:
                vulnerable += weight
                vulnerable_raw += 1
            vendor = vendors[cert_id]
            if vendor is not None:
                bucket = per_vendor.setdefault(vendor, [0.0, 0.0, 0, 0])
                bucket[0] += weight
                bucket[2] += 1
                if vuln:
                    bucket[1] += weight
                    bucket[3] += 1
        overall.points.append(
            SeriesPoint(
                month=snapshot.month,
                source=snapshot.source,
                total=total,
                vulnerable=vulnerable,
                total_raw=total_raw,
                vulnerable_raw=vulnerable_raw,
            )
        )
        for vendor, (w_total, w_vuln, r_total, r_vuln) in per_vendor.items():
            series = accumulators.setdefault(vendor, VendorSeries(name=vendor))
            series.points.append(
                SeriesPoint(
                    month=snapshot.month,
                    source=snapshot.source,
                    total=w_total,
                    vulnerable=w_vuln,
                    total_raw=int(r_total),
                    vulnerable_raw=int(r_vuln),
                )
            )
    return GlobalSeries(overall=overall, by_vendor=accumulators)
