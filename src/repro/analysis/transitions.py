"""Certificate transition analysis per IP address (Section 4.1).

The paper examined, per vendor, how hosts moved between vulnerable and
non-vulnerable certificates across scans: for Juniper, 1,100 IPs went
vulnerable -> non-vulnerable, 1,200 the other way, and 250 flapped multiple
times — strong evidence that "patching" signals were mostly churn, not
fixes.  For IBM, 350 of 1,728 ever-vulnerable IPs later served a
non-vulnerable certificate, traced to IP reassignment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scans.records import CertificateStore, ScanSnapshot

__all__ = ["IpReuseStats", "TransitionStats", "analyze_ip_reuse", "analyze_transitions"]


@dataclass(frozen=True, slots=True)
class TransitionStats:
    """Per-vendor IP transition counts over the whole study.

    Attributes:
        vendor: vendor name.
        ips_observed: distinct IPs that ever served this vendor's
            certificates.
        ips_ever_vulnerable: distinct IPs that ever served a vulnerable key.
        to_nonvulnerable: IPs whose status changed vulnerable ->
            non-vulnerable exactly once.
        to_vulnerable: IPs whose status changed non-vulnerable ->
            vulnerable exactly once.
        multiple: IPs that changed status more than once.
        ever_served_nonvulnerable_after_vulnerable: IPs that served any
            non-vulnerable certificate in a scan after serving a vulnerable
            one (the paper's IBM churn statistic).
    """

    vendor: str
    ips_observed: int
    ips_ever_vulnerable: int
    to_nonvulnerable: int
    to_vulnerable: int
    multiple: int
    ever_served_nonvulnerable_after_vulnerable: int


@dataclass(frozen=True, slots=True)
class IpReuseStats:
    """IP-reassignment analysis for one vendor (the paper's IBM check).

    The paper found that apparent IBM "patching" was address churn: 350 of
    the 1,728 IPs that ever served a vulnerable IBM certificate later
    served some *other* certificate — different subjects indicating IP
    reassignment, "and not because users patched the vulnerability and
    renewed their HTTPS certificates on the same device".

    Attributes:
        vendor: the vendor whose vulnerable IPs are tracked.
        ips_ever_vulnerable: IPs that ever served the vendor's vulnerable
            certificates.
        later_served_other_certificate: of those, IPs that subsequently
            appeared with any certificate that is not a vulnerable
            certificate of this vendor.
        later_served_other_vendor: the subset whose later certificate was
            attributed to a different vendor (or unattributed) — the
            clearest churn signal.
    """

    vendor: str
    ips_ever_vulnerable: int
    later_served_other_certificate: int
    later_served_other_vendor: int


def analyze_ip_reuse(
    snapshots: list[ScanSnapshot],
    store: CertificateStore,
    vendor_by_cert: dict[int, str],
    vulnerable_moduli: set[int],
    vendor: str,
) -> IpReuseStats:
    """Trace what ever-vulnerable IPs of one vendor served afterwards."""
    entries = store.entries()
    vuln_flags = [e.certificate.public_key.n in vulnerable_moduli for e in entries]

    first_vulnerable_scan: dict[int, int] = {}
    for scan_index, snapshot in enumerate(snapshots):
        for ip, cert_id in snapshot.records():
            if (
                vuln_flags[cert_id]
                and vendor_by_cert.get(cert_id) == vendor
                and ip not in first_vulnerable_scan
            ):
                first_vulnerable_scan[ip] = scan_index

    reused: set[int] = set()
    reused_other_vendor: set[int] = set()
    for scan_index, snapshot in enumerate(snapshots):
        for ip, cert_id in snapshot.records():
            first = first_vulnerable_scan.get(ip)
            if first is None or scan_index <= first:
                continue
            cert_vendor = vendor_by_cert.get(cert_id)
            if vuln_flags[cert_id] and cert_vendor == vendor:
                continue
            reused.add(ip)
            if cert_vendor != vendor:
                reused_other_vendor.add(ip)
    return IpReuseStats(
        vendor=vendor,
        ips_ever_vulnerable=len(first_vulnerable_scan),
        later_served_other_certificate=len(reused),
        later_served_other_vendor=len(reused_other_vendor),
    )


def analyze_transitions(
    snapshots: list[ScanSnapshot],
    store: CertificateStore,
    vendor_by_cert: dict[int, str],
    vulnerable_moduli: set[int],
    vendors: list[str] | None = None,
) -> dict[str, TransitionStats]:
    """Compute per-vendor transition statistics.

    Args:
        snapshots: HTTPS snapshots in month order.
        store: certificate store.
        vendor_by_cert: fingerprint labels.
        vulnerable_moduli: factored, artifact-free moduli.
        vendors: restrict to these vendors (None = all labelled vendors).
    """
    entries = store.entries()
    vuln_flags = [e.certificate.public_key.n in vulnerable_moduli for e in entries]
    wanted = set(vendors) if vendors is not None else None

    # Per (vendor, ip): ordered list of statuses, deduplicated per scan.
    histories: dict[str, dict[int, list[bool]]] = {}
    for snapshot in snapshots:
        seen_this_scan: dict[tuple[str, int], bool] = {}
        for ip, cert_id in snapshot.records():
            vendor = vendor_by_cert.get(cert_id)
            if vendor is None or (wanted is not None and vendor not in wanted):
                continue
            key = (vendor, ip)
            status = vuln_flags[cert_id]
            # An IP can surface twice in one scan (chain artifacts); treat
            # "any vulnerable certificate this scan" as vulnerable.
            seen_this_scan[key] = seen_this_scan.get(key, False) or status
        for (vendor, ip), status in seen_this_scan.items():
            histories.setdefault(vendor, {}).setdefault(ip, []).append(status)

    stats: dict[str, TransitionStats] = {}
    for vendor, by_ip in histories.items():
        ever_vulnerable = 0
        to_nonvuln = to_vuln = multiple = churned = 0
        for statuses in by_ip.values():
            if any(statuses):
                ever_vulnerable += 1
            changes = [
                (a, b) for a, b in zip(statuses, statuses[1:]) if a != b
            ]
            if len(changes) > 1:
                multiple += 1
            elif len(changes) == 1:
                if changes[0] == (True, False):
                    to_nonvuln += 1
                else:
                    to_vuln += 1
            # The IBM churn statistic: any non-vulnerable observation after
            # the first vulnerable one.
            saw_vulnerable = False
            for status in statuses:
                if status:
                    saw_vulnerable = True
                elif saw_vulnerable:
                    churned += 1
                    break
        stats[vendor] = TransitionStats(
            vendor=vendor,
            ips_observed=len(by_ip),
            ips_ever_vulnerable=ever_vulnerable,
            to_nonvulnerable=to_nonvuln,
            to_vulnerable=to_vuln,
            multiple=multiple,
            ever_served_nonvulnerable_after_vulnerable=churned,
        )
    return stats
