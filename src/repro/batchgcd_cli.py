"""A fastgcd-style command-line batch-GCD tool.

The authors published their efficient batch-GCD implementation on
factorable.net; this is the equivalent interface for this package:

    repro-batchgcd moduli.txt --k 16 --processes 8 -o factors.txt

Input: one modulus per line, hexadecimal (an optional ``0x`` prefix and
blank/comment lines are tolerated).  Output: one line per *vulnerable*
modulus — ``<modulus> <factor> <cofactor>`` in hex — plus a summary on
stderr.  Moduli that were flagged but could not be split (duplicate
inputs) are reported with ``-`` placeholders.

``--telemetry-json PATH`` records the computation (the product-build span
plus every (subset, product) task span, merged back from worker
processes) and writes the RunReport; ``--timings`` prints the same
telemetry as a human-readable summary on stderr.  Schema:
``docs/TELEMETRY.md``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.clustered import SCHEDULERS
from repro.core.select import ENGINE_NAMES, select_engine
from repro.numt.backend import available_backends
from repro.telemetry import Telemetry, use_telemetry

__all__ = ["main", "read_moduli", "format_results"]


def read_moduli(lines) -> list[int]:
    """Parse hex moduli, skipping blanks and ``#`` comments.

    Raises:
        ValueError: on an unparsable line or a modulus < 2.
    """
    moduli = []
    for lineno, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text or text.startswith("#"):
            continue
        try:
            value = int(text, 16)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: not a hex integer: {text!r}") from exc
        if value < 2:
            raise ValueError(f"line {lineno}: modulus must be >= 2")
        moduli.append(value)
    return moduli


def format_results(result) -> list[str]:
    """Render the vulnerable moduli as output lines."""
    factored = result.resolve()
    lines = []
    for index in result.vulnerable_indices:
        n = result.moduli[index]
        fact = factored.get(n)
        if fact is None:
            lines.append(f"{n:x} - -")
        else:
            lines.append(f"{n:x} {fact.p:x} {fact.q:x}")
    return lines


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-batchgcd",
        description="Factor RSA moduli that share primes, via batch GCD "
        "(the computation of 'Weak Keys Remain Widespread', IMC 2016).",
    )
    parser.add_argument("input", help="file of hex moduli, one per line ('-' for stdin)")
    parser.add_argument("-o", "--output", help="output file (default stdout)")
    parser.add_argument(
        "--engine", choices=ENGINE_NAMES, default="clustered",
        help="batch-GCD engine; 'auto' derives pooled vs in-process from "
        "corpus size and cores, and prefers 'incremental' when "
        "--store-dir is set or 'alltoall' when --shards is set "
        "(default: clustered)",
    )
    parser.add_argument(
        "--store-dir", metavar="DIR",
        help="persistent product-tree store for the incremental engine: "
        "runs extending the stored corpus insert only the new moduli "
        "(default: none)",
    )
    parser.add_argument("--k", type=int, default=16, help="subset count (default 16)")
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="logical node count for the all-to-all engine's simulated "
        "sharded deployment; rejected (not ignored) with engines that "
        "have no shard axis (default: none)",
    )
    parser.add_argument(
        "--processes", type=int, default=None,
        help="worker processes (default: in-process)",
    )
    parser.add_argument(
        "--dedup", action="store_true",
        help="drop duplicate moduli before the computation",
    )
    parser.add_argument(
        "--scheduler", choices=SCHEDULERS, default="streaming",
        help="task-graph driver: cached/streaming or the original fanout "
        "pool.map (default: streaming)",
    )
    parser.add_argument(
        "--backend", choices=sorted(available_backends()), default=None,
        help="big-int backend (default: $REPRO_NUMT_BACKEND or python)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="streaming scheduler: bound on in-flight task chunks "
        "(default: 2x processes)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="chunk re-submissions before degrading to in-process "
        "execution (default: 2)",
    )
    parser.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="SECONDS",
        help="abandon and retry an in-flight chunk after this long "
        "(default: no timeout; pooled runs only)",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="persist completed subset passes here so a killed run "
        "resumes (default: no checkpointing)",
    )
    parser.add_argument(
        "--fault-plan", metavar="SPEC",
        help="inject deterministic faults: a spec string or plan file "
        "(see docs/FAULTS.md; default: $REPRO_FAULTS, else off)",
    )
    parser.add_argument(
        "--telemetry-json", metavar="PATH",
        help="write a telemetry RunReport (per-task spans) as JSON",
    )
    parser.add_argument(
        "--timings", action="store_true",
        help="print a per-task timing summary on stderr",
    )
    args = parser.parse_args(argv)

    if args.input == "-":
        moduli = read_moduli(sys.stdin)
    else:
        moduli = read_moduli(Path(args.input).read_text().splitlines())
    if args.dedup:
        moduli = list(dict.fromkeys(moduli))
    print(f"read {len(moduli)} moduli", file=sys.stderr)

    telemetry = Telemetry(
        enabled=bool(args.telemetry_json or args.timings)
    )
    # CLI-level elapsed display wants real time whether or not telemetry
    # is enabled for the run.
    started = time.perf_counter()  # reprolint: disable=DET003
    choice = select_engine(
        len(moduli),
        engine=args.engine,
        k=args.k,
        processes=args.processes,
        scheduler=args.scheduler,
        backend=args.backend,
        max_inflight=args.max_inflight,
        max_retries=args.max_retries,
        chunk_timeout=args.chunk_timeout,
        checkpoint_dir=args.checkpoint_dir,
        fault_plan=args.fault_plan,
        store_dir=args.store_dir,
        shards=args.shards,
    )
    engine = choice.engine
    print(f"engine: {choice.name} ({choice.reason})", file=sys.stderr)
    with use_telemetry(telemetry), telemetry.span(
        "batch_gcd", moduli=len(moduli), k=args.k, engine=choice.name
    ):
        result = engine.run(moduli)
    elapsed = time.perf_counter() - started  # reprolint: disable=DET003

    lines = format_results(result)
    if args.output:
        Path(args.output).write_text("\n".join(lines) + ("\n" if lines else ""))
    else:
        for line in lines:
            print(line)
    stats = engine.last_stats
    print(
        f"{result.vulnerable_count()} vulnerable of {len(moduli)} moduli "
        f"in {elapsed:.2f}s (k={stats.k}, {stats.tasks} tasks, "
        f"cpu {stats.cpu_seconds:.2f}s)",
        file=sys.stderr,
    )
    if stats.checkpoint_loaded or stats.checkpoint_written:
        print(
            f"checkpoint: {stats.checkpoint_loaded} passes restored, "
            f"{stats.checkpoint_written} written",
            file=sys.stderr,
        )
    if stats.retries or stats.pool_rebuilds or stats.inprocess_fallbacks:
        print(
            f"recovery: {stats.retries} retries, {stats.pool_rebuilds} pool "
            f"rebuilds, {stats.chunk_timeouts} timeouts, "
            f"{stats.inprocess_fallbacks} in-process fallbacks",
            file=sys.stderr,
        )
    if telemetry.enabled:
        report = telemetry.report()
        if args.telemetry_json:
            Path(args.telemetry_json).write_text(report.to_json() + "\n")
        if args.timings:
            print(report.render(max_depth=3), file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
