"""Command-line entry point: run the study and print every table and figure.

Usage::

    repro-study [--preset tiny|medium|full] [--seed N] [--verbose]
"""

from __future__ import annotations

import argparse
import logging
import sys

from repro.pipeline import run_study
from repro.reporting.study import (
    render_figure1,
    render_figure7,
    render_summary,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_vendor_figure,
)
from repro.studyconfig import StudyConfig

__all__ = ["main"]

_PRESETS = {
    "tiny": StudyConfig.tiny,
    "medium": StudyConfig.medium,
    "full": StudyConfig.full,
}

#: (figure label, vendor) for the per-vendor figures.
VENDOR_FIGURES = (
    ("Figure 3", "Juniper"),
    ("Figure 4", "Innominate"),
    ("Figure 5", "IBM"),
    ("Figure 6", "Cisco"),
    ("Figure 8", "HP"),
    ("Figure 9a", "Thomson"),
    ("Figure 9b", "Fritz!Box"),
    ("Figure 9c", "Linksys"),
    ("Figure 9d", "Fortinet"),
    ("Figure 9e", "ZyXEL"),
    ("Figure 9f", "Dell"),
    ("Figure 9g", "Kronos"),
    ("Figure 9h", "Xerox"),
    ("Figure 9i", "McAfee"),
    ("Figure 9j", "TP-LINK"),
    ("Figure 10a", "ADTRAN"),
    ("Figure 10b", "D-Link"),
    ("Figure 10c", "Huawei"),
    ("Figure 10d", "Sangfor"),
    ("Figure 10e", "Schmid Telecom"),
)


def main(argv: list[str] | None = None) -> int:
    """Run the study at the requested preset and print the report bundle."""
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="Reproduce 'Weak Keys Remain Widespread in Network "
        "Devices' (IMC 2016) on a simulated internet.",
    )
    parser.add_argument(
        "--preset", choices=sorted(_PRESETS), default="medium",
        help="study scale (default: medium)",
    )
    parser.add_argument("--seed", type=int, default=2016, help="world seed")
    parser.add_argument(
        "--verbose", action="store_true", help="log per-scan progress"
    )
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.INFO if args.verbose else logging.WARNING,
        format="%(asctime)s %(name)s %(message)s",
    )
    config = _PRESETS[args.preset](seed=args.seed)
    result = run_study(config)
    out = sys.stdout
    print(render_summary(result), file=out)
    for render in (render_table1, render_table2, render_table3, render_table4,
                   render_table5):
        print(file=out)
        print(render(result), file=out)
    print(file=out)
    print(render_figure1(result), file=out)
    for figure, vendor in VENDOR_FIGURES:
        print(file=out)
        print(render_vendor_figure(result, vendor, figure), file=out)
    print(file=out)
    print(render_figure7(result), file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
