"""Command-line entry point: run the study and print every table and figure.

Usage::

    repro-study [--preset tiny|medium|full] [--seed N] [--verbose]
                [--telemetry-json PATH] [--timings]

``--telemetry-json`` writes the run's :class:`repro.telemetry.RunReport`
(per-stage wall/CPU spans, batch-GCD task spans merged from workers,
scanner counters — schema in ``docs/TELEMETRY.md``); ``--timings`` prints
the human-readable summary after the report bundle.
"""

from __future__ import annotations

import argparse
import logging
import pathlib
import sys

from repro.core.clustered import SCHEDULERS
from repro.core.select import ENGINE_NAMES
from repro.numt.backend import available_backends
from repro.pipeline import run_study
from repro.reporting.study import (
    render_figure1,
    render_figure7,
    render_summary,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_vendor_figure,
)
from repro.studyconfig import StudyConfig
from repro.telemetry import Telemetry

__all__ = ["main"]

_PRESETS = {
    "tiny": StudyConfig.tiny,
    "medium": StudyConfig.medium,
    "full": StudyConfig.full,
}

#: (figure label, vendor) for the per-vendor figures.
VENDOR_FIGURES = (
    ("Figure 3", "Juniper"),
    ("Figure 4", "Innominate"),
    ("Figure 5", "IBM"),
    ("Figure 6", "Cisco"),
    ("Figure 8", "HP"),
    ("Figure 9a", "Thomson"),
    ("Figure 9b", "Fritz!Box"),
    ("Figure 9c", "Linksys"),
    ("Figure 9d", "Fortinet"),
    ("Figure 9e", "ZyXEL"),
    ("Figure 9f", "Dell"),
    ("Figure 9g", "Kronos"),
    ("Figure 9h", "Xerox"),
    ("Figure 9i", "McAfee"),
    ("Figure 9j", "TP-LINK"),
    ("Figure 10a", "ADTRAN"),
    ("Figure 10b", "D-Link"),
    ("Figure 10c", "Huawei"),
    ("Figure 10d", "Sangfor"),
    ("Figure 10e", "Schmid Telecom"),
)


def main(argv: list[str] | None = None) -> int:
    """Run the study at the requested preset and print the report bundle."""
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="Reproduce 'Weak Keys Remain Widespread in Network "
        "Devices' (IMC 2016) on a simulated internet.",
    )
    parser.add_argument(
        "--preset", choices=sorted(_PRESETS), default="medium",
        help="study scale (default: medium)",
    )
    parser.add_argument("--seed", type=int, default=2016, help="world seed")
    parser.add_argument(
        "--verbose", action="store_true", help="log per-scan progress"
    )
    parser.add_argument(
        "--telemetry-json", metavar="PATH",
        help="write the run's telemetry RunReport as JSON",
    )
    parser.add_argument(
        "--timings", action="store_true",
        help="print a per-stage wall/CPU timing summary",
    )
    parser.add_argument(
        "--batchgcd-engine", choices=ENGINE_NAMES, default=None,
        metavar="NAME",
        help="batch-GCD engine: classic, clustered, incremental, alltoall, "
        "or auto (derive pooled vs in-process from corpus size and cores; "
        "default: auto)",
    )
    parser.add_argument(
        "--batchgcd-store-dir", metavar="DIR",
        help="persistent product-tree store for the incremental batch-GCD "
        "engine (default: none)",
    )
    parser.add_argument(
        "--batchgcd-scheduler", choices=SCHEDULERS, default=None,
        metavar="NAME",
        help="clustered batch-GCD task-graph driver "
        "(streaming or fanout; default: streaming)",
    )
    parser.add_argument(
        "--batchgcd-k", type=int, default=None, metavar="K",
        help="clustered batch-GCD subset count (default: preset value)",
    )
    parser.add_argument(
        "--batchgcd-shards", type=int, default=None, metavar="N",
        help="logical node count for the all-to-all batch-GCD engine's "
        "simulated sharded deployment; rejected (not ignored) with "
        "engines that have no shard axis (default: none)",
    )
    parser.add_argument(
        "--batchgcd-processes", type=int, default=None, metavar="N",
        help="batch-GCD worker processes (default: in-process)",
    )
    parser.add_argument(
        "--batchgcd-inflight", type=int, default=None, metavar="N",
        help="streaming scheduler: bound on in-flight task chunks "
        "(default: 2x processes)",
    )
    parser.add_argument(
        "--batchgcd-max-retries", type=int, default=None, metavar="N",
        help="batch-GCD chunk re-submissions before degrading to "
        "in-process execution (default: 2)",
    )
    parser.add_argument(
        "--batchgcd-chunk-timeout", type=float, default=None,
        metavar="SECONDS",
        help="abandon and retry an in-flight batch-GCD chunk after this "
        "long (default: no timeout; pooled runs only)",
    )
    parser.add_argument(
        "--batchgcd-checkpoint-dir", metavar="DIR",
        help="persist completed batch-GCD subset passes here so a killed "
        "run resumes (default: no checkpointing)",
    )
    parser.add_argument(
        "--batchgcd-fault-plan", metavar="SPEC",
        help="inject deterministic batch-GCD faults: a spec string or "
        "plan file (see docs/FAULTS.md; default: $REPRO_FAULTS, else off)",
    )
    parser.add_argument(
        "--numt-backend", choices=sorted(available_backends()), default=None,
        metavar="NAME",
        help="big-int backend for the batch GCD "
        "(default: $REPRO_NUMT_BACKEND or python)",
    )
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.INFO if args.verbose else logging.WARNING,
        format="%(asctime)s %(name)s %(message)s",
    )
    config = _PRESETS[args.preset](seed=args.seed)
    if args.batchgcd_engine is not None:
        config = config.with_(batchgcd_engine=args.batchgcd_engine)
    if args.batchgcd_store_dir is not None:
        config = config.with_(batchgcd_store_dir=args.batchgcd_store_dir)
    if args.batchgcd_scheduler is not None:
        config = config.with_(batchgcd_scheduler=args.batchgcd_scheduler)
    if args.numt_backend is not None:
        config = config.with_(batchgcd_backend=args.numt_backend)
    if args.batchgcd_k is not None:
        config = config.with_(batchgcd_k=args.batchgcd_k)
    if args.batchgcd_shards is not None:
        config = config.with_(batchgcd_shards=args.batchgcd_shards)
    if args.batchgcd_processes is not None:
        config = config.with_(batchgcd_processes=args.batchgcd_processes)
    if args.batchgcd_inflight is not None:
        config = config.with_(batchgcd_inflight=args.batchgcd_inflight)
    if args.batchgcd_max_retries is not None:
        config = config.with_(batchgcd_max_retries=args.batchgcd_max_retries)
    if args.batchgcd_chunk_timeout is not None:
        config = config.with_(
            batchgcd_chunk_timeout=args.batchgcd_chunk_timeout
        )
    if args.batchgcd_checkpoint_dir is not None:
        config = config.with_(
            batchgcd_checkpoint_dir=args.batchgcd_checkpoint_dir
        )
    if args.batchgcd_fault_plan is not None:
        config = config.with_(batchgcd_fault_plan=args.batchgcd_fault_plan)
    telemetry = (
        Telemetry() if (args.telemetry_json or args.timings) else None
    )
    result = run_study(config, telemetry=telemetry)
    out = sys.stdout
    print(render_summary(result), file=out)
    for render in (render_table1, render_table2, render_table3, render_table4,
                   render_table5):
        print(file=out)
        print(render(result), file=out)
    print(file=out)
    print(render_figure1(result), file=out)
    for figure, vendor in VENDOR_FIGURES:
        print(file=out)
        print(render_vendor_figure(result, vendor, figure), file=out)
    print(file=out)
    print(render_figure7(result), file=out)
    if result.telemetry is not None:
        if args.telemetry_json:
            pathlib.Path(args.telemetry_json).write_text(
                result.telemetry.to_json() + "\n"
            )
        if args.timings:
            print(file=out)
            print(result.telemetry.render(), file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
