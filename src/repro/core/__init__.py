"""Batch-GCD factoring of weak RSA moduli (the paper's core computation).

Three interchangeable engines compute, for every modulus in a corpus, its
greatest common divisor with the product of all the *other* moduli:

- :mod:`repro.core.naive` — the quadratic all-pairs baseline (Section 3.2
  notes it "is not feasible for the dataset sizes used in this paper"; the
  benchmark harness demonstrates the crossover).
- :mod:`repro.core.batchgcd` — Bernstein's quasilinear product-tree /
  remainder-tree algorithm, as used by the original 2012 studies.
- :mod:`repro.core.clustered` — the paper's contribution: the k-subset
  modification (Figure 2) that trades a factor-k increase in total work for
  cluster-parallel execution, avoiding the giant central product that
  bottlenecks the classic algorithm.
- :mod:`repro.core.incremental` — the serving-path engine: a persistent
  product-tree store (:mod:`repro.numt.incremental`) answering "is this
  new modulus weak against everything seen so far?" in one descent, with
  O(log n) inserts instead of per-run full recomputes.
- :mod:`repro.core.alltoall` — the Pelofske all-to-all engine (arXiv
  2405.03166): the corpus partitioned across N logical nodes, compact
  per-shard products exchanged all-to-all, coprime shard pairs settled
  with one root GCD each, byte-identical to the clustered engine at
  equal shard count (the sharded-deployment story).
- :mod:`repro.core.select` — the engine seam: resolves a study's engine
  name (including ``"auto"``) to a constructed engine, deriving
  in-process vs pooled execution from corpus size and core count.

All engines produce a :class:`repro.core.results.BatchGcdResult`, which also
performs factor recovery — including the pairwise fallback for moduli that
share *both* primes with other moduli (divisor == N).
"""

from repro.core.alltoall import (
    DEFAULT_SHARDS,
    AllToAllBatchGcd,
    alltoall_batch_gcd,
)
from repro.core.batchgcd import batch_gcd, batch_gcd_divisors
from repro.core.clustered import ClusteredBatchGcd, clustered_batch_gcd
from repro.core.incremental import (
    INCREMENTAL_MAX_BATCH,
    BulkEngine,
    IncrementalBatchGcd,
)
from repro.core.naive import naive_pairwise_gcd
from repro.core.results import BatchGcdResult, FactoredModulus
from repro.core.select import (
    AUTO_POOL_MAX_WORKERS,
    AUTO_POOL_MIN_MODULI,
    ENGINE_NAMES,
    ClassicBatchGcd,
    EngineChoice,
    auto_processes,
    select_engine,
)

__all__ = [
    "AUTO_POOL_MAX_WORKERS",
    "AUTO_POOL_MIN_MODULI",
    "AllToAllBatchGcd",
    "BatchGcdResult",
    "BulkEngine",
    "ClassicBatchGcd",
    "ClusteredBatchGcd",
    "DEFAULT_SHARDS",
    "ENGINE_NAMES",
    "EngineChoice",
    "FactoredModulus",
    "INCREMENTAL_MAX_BATCH",
    "IncrementalBatchGcd",
    "alltoall_batch_gcd",
    "auto_processes",
    "batch_gcd",
    "batch_gcd_divisors",
    "clustered_batch_gcd",
    "naive_pairwise_gcd",
    "select_engine",
]
