"""Batch-GCD factoring of weak RSA moduli (the paper's core computation).

Three interchangeable engines compute, for every modulus in a corpus, its
greatest common divisor with the product of all the *other* moduli:

- :mod:`repro.core.naive` — the quadratic all-pairs baseline (Section 3.2
  notes it "is not feasible for the dataset sizes used in this paper"; the
  benchmark harness demonstrates the crossover).
- :mod:`repro.core.batchgcd` — Bernstein's quasilinear product-tree /
  remainder-tree algorithm, as used by the original 2012 studies.
- :mod:`repro.core.clustered` — the paper's contribution: the k-subset
  modification (Figure 2) that trades a factor-k increase in total work for
  cluster-parallel execution, avoiding the giant central product that
  bottlenecks the classic algorithm.

All engines produce a :class:`repro.core.results.BatchGcdResult`, which also
performs factor recovery — including the pairwise fallback for moduli that
share *both* primes with other moduli (divisor == N).
"""

from repro.core.batchgcd import batch_gcd, batch_gcd_divisors
from repro.core.clustered import ClusteredBatchGcd, clustered_batch_gcd
from repro.core.naive import naive_pairwise_gcd
from repro.core.results import BatchGcdResult, FactoredModulus

__all__ = [
    "BatchGcdResult",
    "ClusteredBatchGcd",
    "FactoredModulus",
    "batch_gcd",
    "batch_gcd_divisors",
    "clustered_batch_gcd",
    "naive_pairwise_gcd",
]
