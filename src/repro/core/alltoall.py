"""The Pelofske all-to-all GCD engine over a simulated sharded deployment.

Where the clustered engine (:mod:`repro.core.clustered`) runs a remainder
tree for every (subset, product) pair, the all-to-all algorithm
(Pelofske, "An Efficient All-to-All GCD Algorithm for Low Entropy RSA Key
Factorization", arXiv 2405.03166) partitions the corpus across ``N``
logical nodes and settles cross-shard work with *product GCDs*:

1. each shard builds a product tree over its own moduli once; the root is
   its **compact product** (:mod:`repro.numt.sharding`);
2. the compact products are exchanged **all-to-all** — every shard
   receives every other shard's product, one big integer per pair, and
   the engine accounts the simulated interconnect traffic
   (``batch_gcd.ipc_crossshard_bytes``);
3. each shard checks its moduli against every foreign product with one
   root GCD: ``gcd(P_s, P_j) == 1`` prunes the whole pair (the common
   case in a low-entropy hunt — most shards share nothing), otherwise a
   coprime-pruned descent of the shard's own tree attributes the shared
   content to individual moduli (:func:`repro.numt.sharding.gcd_descent_hits`);
4. the shard's *own* moduli are checked against each other with the
   classic in-shard squared remainder tree — identical to the clustered
   engine's own-subset pass;
5. per-shard sparse hit sets merge into the canonical
   :class:`~repro.core.results.BatchGcdResult` through the shared
   order-independent lcm fold (:func:`repro.core.results.merge_sparse_hits`).

Equivalence: the partition (round-robin ``corpus[s::N]``), the per-pass
contributions (own pass ``gcd(N, (P_s mod N**2)/N)``; foreign pass
``gcd(N, P_j)`` — see the descent-correctness note in
:mod:`repro.numt.sharding`), and the aggregation are all exactly the
clustered engine's, so for **every** corpus and shard count the result is
byte-identical to ``ClusteredBatchGcd(k=N)`` — which the differential
harness (``tests/harness_differential.py``) asserts corpus by corpus.

Execution reuses the fault substrate end to end: the ``N**2`` shard
passes run in chunks through :class:`~repro.faults.recovery.ResilientExecutor`
(per-chunk timeout, bounded retry, pool rebuild with re-broadcast,
graceful in-process degradation), an optional
:class:`~repro.faults.checkpoint.CheckpointStore` persists completed
passes for byte-identical resume, and a seeded
:class:`~repro.faults.plan.FaultPlan` injects deterministic chaos.
Pooled runs broadcast the shard trees and products once through the
executor initializer, exactly like the streaming scheduler.

Telemetry: one ``batch_gcd.alltoall.shard_tree`` span per shard build,
the shared ``batch_gcd.task`` span/timer per (shard, product) pass, the
``batch_gcd.ipc_crossshard_bytes`` counter for the product exchange, and
``batch_gcd.alltoall.pruned_pairs`` counting cross-shard pairs settled
by the root GCD alone.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Sequence

from repro.core.clustered import ClusterRunStats
from repro.core.results import BatchGcdResult, merge_sparse_hits
from repro.faults.checkpoint import CheckpointStore, corpus_digest
from repro.faults.inject import corrupt_chunk_results, trigger_fault
from repro.faults.plan import FaultPlan, resolve_fault_plan
from repro.faults.recovery import (
    ChunkResultError,
    RecoveryPolicy,
    ResilientExecutor,
)
from repro.numt.backend import BigIntBackend, resolve_backend
from repro.numt.sharding import (
    ShardProduct,
    exchange_all_to_all,
    gcd_descent_hits,
    partition_round_robin,
)
from repro.numt.trees import product_tree, remainder_tree_squared
from repro.telemetry import RunReport, Telemetry, get_telemetry, use_telemetry

__all__ = ["DEFAULT_SHARDS", "AllToAllBatchGcd", "alltoall_batch_gcd"]

#: Default logical node count for the simulated deployment: small enough
#: that per-shard products stay compact at interactive corpus sizes,
#: large enough to exercise the exchange on every run.
DEFAULT_SHARDS = 4

#: Per-process broadcast state, installed once by :func:`_pool_init_alltoall`
#: (the streaming scheduler's idiom: holding trees and products at module
#: level keeps task payloads down to index pairs).
_ALLTOALL_STATE: dict[str, Any] | None = None


def _pool_init_alltoall(
    trees: list[list[list[int]]],
    products: list[int],
    backend_name: str,
    instrument: bool,
    fault_plan: FaultPlan | None,
) -> None:
    """Process-pool initializer: receive the one-shot shard broadcast."""
    global _ALLTOALL_STATE
    _ALLTOALL_STATE = {
        "trees": trees,
        "products": products,
        "backend": resolve_backend(backend_name),
        "instrument": instrument,
        "fault_plan": fault_plan,
    }


def _pass_divisors(
    state: dict[str, Any], shard: int, other: int
) -> list[tuple[int, int]]:
    """One (shard, product) pass against broadcast state, sparse result.

    The own pass (``shard == other``) is the classic in-shard squared
    remainder tree; a foreign pass is the all-to-all root GCD plus
    coprime-pruned descent.  Either way the result is ``(position,
    divisor)`` pairs for the shard's moduli sharing content with the
    other side.
    """
    backend: BigIntBackend = state["backend"]
    gcd = backend.gcd
    unwrap = backend.unwrap
    tree = state["trees"][shard]
    telemetry = get_telemetry()
    if shard == other:
        leaves = tree[0]
        with telemetry.span("batch_gcd.task.remainder_tree", own=True):
            remainders = remainder_tree_squared(tree)
        return [
            (pos, unwrap(d))
            for pos, (n, z) in enumerate(zip(leaves, remainders))
            if (d := gcd(n, z // n)) > 1
        ]
    found = gcd_descent_hits(tree, state["products"][other], gcd=gcd)
    telemetry.counter("batch_gcd.alltoall.pruned_pairs", int(not found))
    return [(pos, unwrap(d)) for pos, d in found]


def _execute_chunk(
    state: dict[str, Any], pairs: Sequence[tuple[int, int]]
) -> tuple[list[tuple[int, int, list[tuple[int, int]], float]], dict[str, Any] | None]:
    """Run a chunk of (shard, product) index pairs against broadcast state."""
    if not state["instrument"]:
        clock = get_telemetry().clock
        results = []
        for i, j in pairs:
            started = clock.wall()
            found = _pass_divisors(state, i, j)
            results.append((i, j, found, clock.wall() - started))
        return results, None
    telemetry = Telemetry()
    clock = telemetry.clock
    results = []
    with use_telemetry(telemetry):
        for i, j in pairs:
            started = clock.wall()
            with telemetry.span(
                "batch_gcd.task",
                subset=i,
                product=j,
                own=i == j,
                subset_size=len(state["trees"][i][0]),
                product_bits=int(state["products"][j].bit_length()),
            ):
                found = _pass_divisors(state, i, j)
            seconds = clock.wall() - started
            telemetry.observe("batch_gcd.task", seconds, seconds)
            results.append((i, j, found, seconds))
    return results, telemetry.report().to_dict()


def _faulted_chunk(
    state: dict[str, Any],
    plan: FaultPlan | None,
    chunk_id: int,
    attempt: int,
    pairs: Sequence[tuple[int, int]],
    *,
    pooled: bool,
) -> tuple[list[tuple[int, int, list[tuple[int, int]], float]], dict[str, Any] | None]:
    """Execute one chunk attempt through the fault seam."""
    rule = trigger_fault(plan, chunk_id, attempt, pooled=pooled)
    results, report = _execute_chunk(state, pairs)
    if rule is not None and rule.kind == "corrupt":
        results = corrupt_chunk_results(results)
    return results, report


def _run_alltoall_chunk(
    chunk_id: int, attempt: int, pairs: Sequence[tuple[int, int]]
) -> tuple[list[tuple[int, int, list[tuple[int, int]], float]], dict[str, Any] | None]:
    """Process-pool entry point (top level so it pickles): index pairs only."""
    assert _ALLTOALL_STATE is not None, "worker used before broadcast"
    return _faulted_chunk(
        _ALLTOALL_STATE,
        _ALLTOALL_STATE["fault_plan"],
        chunk_id,
        attempt,
        pairs,
        pooled=True,
    )


def _verify_alltoall_chunk(
    chunk_id: int, pairs: Sequence[tuple[int, int]], result: Any
) -> None:
    """Completeness check: one record per submitted (shard, product) pair."""
    results, _report = result
    got = {(i, j) for i, j, _found, _seconds in results}
    expected = set(pairs)
    if got != expected:
        raise ChunkResultError(
            f"chunk {chunk_id} returned passes {sorted(got)} "
            f"for submitted {sorted(expected)}"
        )


class AllToAllBatchGcd:
    """The sharded all-to-all batch-GCD engine (simulated multi-node).

    Args:
        shards: logical node count ``N`` the corpus is partitioned
            across (capped at the corpus size, like the clustered
            engine's ``k``).
        processes: worker processes for the ``N**2`` shard passes.
            ``None`` runs in-process; values >= 1 use a process pool fed
            by a one-shot tree/product broadcast.
        backend: big-int backend name (``"python"``, ``"gmpy2"``), an
            already-resolved :class:`~repro.numt.backend.BigIntBackend`,
            or ``None`` for ``$REPRO_NUMT_BACKEND`` / the active default.
        max_inflight: bound on simultaneously submitted pass chunks
            (``None`` = twice the worker count).
        max_retries: chunk re-submissions before degrading to in-process
            execution (see :class:`~repro.faults.recovery.RecoveryPolicy`).
        chunk_timeout: seconds before an in-flight chunk is abandoned and
            retried (``None`` disables; pooled runs only).
        checkpoint_dir: directory for shard-pass checkpoints (``None``
            disables checkpointing).
        fault_plan: a :class:`~repro.faults.plan.FaultPlan`, spec string,
            or plan-file path to inject deterministic faults; ``None``
            defers to ``$REPRO_FAULTS`` (and stays off without it).
        recovery: a fully-specified
            :class:`~repro.faults.recovery.RecoveryPolicy` overriding
            ``max_retries``/``chunk_timeout`` (backoff tuning for tests).
    """

    def __init__(
        self,
        shards: int = DEFAULT_SHARDS,
        processes: int | None = None,
        backend: str | BigIntBackend | None = None,
        max_inflight: int | None = None,
        max_retries: int = 2,
        chunk_timeout: float | None = None,
        checkpoint_dir: str | Path | None = None,
        fault_plan: FaultPlan | str | None = None,
        recovery: RecoveryPolicy | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1 or None")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 or None")
        self.shards = shards
        self.processes = processes
        self.backend = backend
        self.max_inflight = max_inflight
        self.checkpoint_dir = checkpoint_dir
        self.fault_plan = fault_plan
        self.recovery = recovery or RecoveryPolicy(
            max_retries=max_retries, chunk_timeout=chunk_timeout
        )
        self.last_stats: ClusterRunStats | None = None

    def run(self, moduli: Sequence[int]) -> BatchGcdResult:
        """Run the sharded all-to-all computation over a corpus.

        Raises:
            ValueError: if any modulus is < 2.
        """
        if any(m < 2 for m in moduli):
            raise ValueError("all moduli must be >= 2")
        corpus = list(moduli)
        if len(corpus) < 2:
            self.last_stats = ClusterRunStats(
                self.shards, 0, 0.0, 0.0, scheduler="alltoall"
            )
            return BatchGcdResult(corpus, [1] * len(corpus))
        backend = resolve_backend(self.backend)
        plan = resolve_fault_plan(self.fault_plan)
        telemetry = get_telemetry()
        clock = telemetry.clock
        instrument = telemetry.enabled
        started = clock.wall()

        # Phase 1: partition and build one tree per shard (its root is
        # the compact product the shard will broadcast).
        shard_views = partition_round_robin(corpus, self.shards)
        n_shards = len(shard_views)
        trees: list[list[list[int]]] = []
        tree_build_seconds = 0.0
        with telemetry.span(
            "batch_gcd.products",
            k=n_shards,
            moduli=len(corpus),
            scheduler="alltoall",
        ):
            for shard in shard_views:
                build_start = clock.wall()
                with telemetry.span(
                    "batch_gcd.alltoall.shard_tree",
                    shard=shard.index,
                    leaves=len(shard.moduli),
                ):
                    tree = product_tree(list(shard.moduli), backend=backend)
                    telemetry.annotate(
                        root_bits=int(tree[-1][0].bit_length())
                    )
                tree_build_seconds += clock.wall() - build_start
                trees.append(tree)
        products = [tree[-1][0] for tree in trees]
        prologue_seconds = clock.wall() - started
        telemetry.gauge(
            "batch_gcd.max_product_bits",
            max(int(p.bit_length()) for p in products),
        )

        # Phase 2: all-to-all exchange of the compact products.  The
        # simulated interconnect cost is what a real deployment would
        # move — every product re-sent to each of the other shards.
        shard_products = [
            ShardProduct(
                shard=shard.index,
                count=len(shard.moduli),
                product=int(backend.unwrap(products[shard.index])),
            )
            for shard in shard_views
        ]
        _inboxes, crossshard_bytes = exchange_all_to_all(shard_products)
        telemetry.counter(
            "batch_gcd.ipc_crossshard_bytes", crossshard_bytes
        )

        # Phase 3: the N**2 shard passes — own pass first per shard, then
        # its foreign checks — driven through the recovery seam.
        tasks: list[tuple[int, int]] = []
        for s in range(n_shards):
            tasks.append((s, s))
            tasks.extend((s, j) for j in range(n_shards) if j != s)

        partials: dict[tuple[int, int], list[tuple[int, int]]] = {}
        store = self._checkpoint_store(corpus, n_shards, backend)
        if store is not None:
            partials.update(store.load())
        remaining_tasks = [t for t in tasks if t not in partials]
        chunk_size = max(1, n_shards // 4)
        chunks = [
            remaining_tasks[c : c + chunk_size]
            for c in range(0, len(remaining_tasks), chunk_size)
        ]
        telemetry.gauge("batch_gcd.queue_depth", len(remaining_tasks))

        cpu_seconds = prologue_seconds
        remaining = len(remaining_tasks)
        broadcast_bytes = 0
        task_bytes = 0
        checkpoint_written = 0

        state = {
            "trees": trees,
            "products": products,
            "backend": backend,
            "instrument": instrument,
            "fault_plan": plan,
        }

        def consume(
            chunk_id: int,
            outcome: tuple[
                list[tuple[int, int, list[tuple[int, int]], float]],
                dict[str, Any] | None,
            ],
            queued_seconds: float,
        ) -> None:
            nonlocal cpu_seconds, remaining, checkpoint_written
            results, report = outcome
            completed: dict[tuple[int, int], list[tuple[int, int]]] = {}
            for i, j, found, seconds in results:
                partials[(i, j)] = found
                completed[(i, j)] = found
                cpu_seconds += seconds
            remaining -= len(results)
            telemetry.gauge("batch_gcd.queue_depth", remaining)
            telemetry.observe("batch_gcd.queue_latency", queued_seconds)
            if report is not None:
                telemetry.merge_report(RunReport.from_dict(report))
            if store is not None:
                store.record(completed)
                checkpoint_written += len(completed)

        def local_chunk(chunk_id: int, attempt: int, pairs):
            return _faulted_chunk(
                state, plan, chunk_id, attempt, pairs, pooled=False
            )

        def fallback_chunk(chunk_id: int, pairs):
            return _execute_chunk(state, pairs)

        pool_factory = None
        on_submit = None
        if self.processes is not None:
            broadcast = (trees, products, backend.name, instrument, plan)
            if instrument:
                broadcast_bytes = len(pickle.dumps(broadcast))
                telemetry.counter(
                    "batch_gcd.ipc_broadcast_bytes", broadcast_bytes
                )

            def pool_factory() -> ProcessPoolExecutor:
                return ProcessPoolExecutor(
                    max_workers=self.processes,
                    initializer=_pool_init_alltoall,
                    initargs=broadcast,
                )

            if instrument:

                def on_submit(chunk_id: int, pairs) -> None:
                    nonlocal task_bytes
                    payload = len(pickle.dumps(pairs))
                    task_bytes += payload
                    telemetry.counter("batch_gcd.ipc_task_bytes", payload)

        recovery = ResilientExecutor(
            payloads=list(enumerate(chunks)),
            policy=self.recovery,
            fallback=fallback_chunk,
            pool_factory=pool_factory,
            pool_task=_run_alltoall_chunk,
            local_task=local_chunk,
            verify=_verify_alltoall_chunk,
            window=(
                (self.max_inflight or 2 * self.processes)
                if self.processes is not None
                else 1
            ),
            on_submit=on_submit,
        )
        recovery_stats = recovery.run(consume)

        divisors = merge_sparse_hits(corpus, n_shards, partials.items())
        self.last_stats = ClusterRunStats(
            k=n_shards,
            tasks=len(tasks),
            wall_seconds=clock.wall() - started,
            cpu_seconds=cpu_seconds,
            product_build_seconds=prologue_seconds,
            scheduler="alltoall",
            tree_builds=n_shards,
            tree_build_seconds=tree_build_seconds,
            ipc_broadcast_bytes=broadcast_bytes,
            ipc_task_bytes=task_bytes,
            ipc_crossshard_bytes=crossshard_bytes,
            checkpoint_loaded=len(tasks) - len(remaining_tasks),
            checkpoint_written=checkpoint_written,
        )
        self.last_stats.apply_recovery(recovery_stats)
        telemetry.counter("batch_gcd.tasks", len(tasks))
        return BatchGcdResult(corpus, divisors)

    def _checkpoint_store(
        self, corpus: list[int], n_shards: int, backend: BigIntBackend
    ) -> CheckpointStore | None:
        if self.checkpoint_dir is None:
            return None
        return CheckpointStore(
            self.checkpoint_dir,
            digest=corpus_digest(corpus),
            k=n_shards,
            scheduler="alltoall",
            backend=backend.name,
        )


def alltoall_batch_gcd(
    moduli: Sequence[int],
    shards: int = DEFAULT_SHARDS,
    processes: int | None = None,
    backend: str | BigIntBackend | None = None,
) -> BatchGcdResult:
    """Convenience wrapper: run :class:`AllToAllBatchGcd` once."""
    return AllToAllBatchGcd(
        shards=shards, processes=processes, backend=backend
    ).run(moduli)
