"""Bernstein's quasilinear batch GCD (the classic single-machine algorithm).

As described in Section 3.2 of the paper:

1. A product tree computes ``P``, the product of all input moduli.
2. A remainder tree computes ``z_i = P mod N_i**2`` for every ``N_i``.
3. For each ``N_i``, output ``gcd(N_i, z_i / N_i)``.  A result above 1 means
   ``N_i`` shares a factor with at least one other modulus in the corpus.

The ``mod N_i**2`` (rather than ``mod N_i``) is what makes step 3 work:
``z_i / N_i`` is congruent, modulo ``N_i``, to the product of all the *other*
moduli — exactly the quantity whose GCD with ``N_i`` exposes shared primes.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.results import BatchGcdResult
from repro.numt.backend import BigIntBackend, resolve_backend
from repro.numt.trees import product_tree, remainder_tree_squared

__all__ = ["batch_gcd_divisors", "batch_gcd"]


def batch_gcd_divisors(
    moduli: Sequence[int], backend: str | BigIntBackend | None = None
) -> list[int]:
    """Return ``gcd(N_i, (P mod N_i**2) / N_i)`` for each modulus.

    Args:
        moduli: the corpus.
        backend: big-int backend name or instance (``None`` = active
            default, plain ``int``).

    Raises:
        ValueError: if any modulus is < 2 (zero and one would corrupt the
            product tree silently).
    """
    if any(m < 2 for m in moduli):
        raise ValueError("all moduli must be >= 2")
    if not moduli:
        return []
    if len(moduli) == 1:
        return [1]
    backend = resolve_backend(backend)
    tree = product_tree(list(moduli), backend=backend)
    remainders = remainder_tree_squared(tree)
    gcd = backend.gcd
    divisors = []
    for n, z in zip(tree[0], remainders):
        divisors.append(backend.unwrap(gcd(n, z // n)))
    return divisors


def batch_gcd(
    moduli: Sequence[int], backend: str | BigIntBackend | None = None
) -> BatchGcdResult:
    """Run the classic batch GCD over a corpus and wrap the result."""
    return BatchGcdResult(list(moduli), batch_gcd_divisors(moduli, backend=backend))
