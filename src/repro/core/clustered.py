"""The paper's cluster-parallel k-subset batch GCD (Section 3.2, Figure 2).

The classic algorithm bottlenecks at the root of the product tree: a single
product of all 81 million moduli, multiplied and reduced single-threadedly.
The paper's modification divides the corpus into ``k`` subsets, computes the
per-subset products ``P_1 .. P_k``, and then runs a remainder tree for
*every product against every subset* — ``k**2`` independent tasks whose
largest operand is ``k`` times smaller than the full product.  Total work
grows (quadratically in ``k``), but the tasks parallelise across a cluster;
the paper ran k=16 over 22 machines in 86 minutes versus 500 minutes for the
unmodified algorithm on one large machine.

Correctness: modulus ``N_i`` in subset ``s`` shares a factor with some other
modulus iff one of the following fires —

- against its own subset's product (``j == s``): the classic test
  ``gcd(N_i, (P_s mod N_i**2) / N_i) > 1``;
- against a foreign product (``j != s``): ``N_i`` does not divide ``P_j``,
  so the test is simply ``gcd(N_i, P_j mod N_i) > 1``.

Since every pair of moduli is covered by some (subset, product) pairing, the
union (lcm) of the per-pass divisors equals the classic algorithm's output
for squarefree moduli (every well-formed RSA modulus is squarefree).  On
degenerate inputs where a repeated prime's *multiplicity* in N is matched
only by combining several subsets (e.g. N = p**2 with single factors of p
spread across subsets), the reported divisor may be a proper divisor of the
classic one — the vulnerable/clean flagging is identical either way, which
is what the paper's pipeline consumes.

Telemetry: when a registry is active (see :mod:`repro.telemetry`), the run
records a ``batch_gcd.products`` span for the product-build phase and one
``batch_gcd.task`` span per (subset, product) task — workers record into
their own per-process registry and the parent merges the snapshots back, so
the final report shows every task's wall/CPU time and operand bit-sizes
regardless of whether the task ran in-process or on the pool.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.results import BatchGcdResult
from repro.numt.trees import (
    product_tree,
    remainder_tree,
    remainder_tree_squared,
    tree_product,
)
from repro.telemetry import RunReport, Telemetry, get_telemetry, use_telemetry

__all__ = ["ClusteredBatchGcd", "ClusterRunStats", "clustered_batch_gcd"]


@dataclass(slots=True)
class ClusterRunStats:
    """Accounting for one clustered run (the paper reports both times).

    Attributes:
        k: number of subsets.
        tasks: number of (subset, product) tasks executed (``k**2``).
        wall_seconds: end-to-end elapsed time.
        cpu_seconds: total compute time — the product-tree build phase plus
            the sum of per-task compute times (the "1089 CPU hours" figure
            of the paper, at simulation scale).
        product_build_seconds: time spent building the ``k`` subset
            products before any task runs (part of ``cpu_seconds``).
    """

    k: int
    tasks: int
    wall_seconds: float
    cpu_seconds: float
    product_build_seconds: float = 0.0


def _subset_pass(
    subset: Sequence[int], product: int, own_subset: bool
) -> tuple[list[int], float]:
    """One (subset, product) task: partial divisors for the subset's moduli."""
    start = time.perf_counter()
    telemetry = get_telemetry()
    with telemetry.span("batch_gcd.task.product_tree", leaves=len(subset)):
        tree = product_tree(list(subset))
    if own_subset:
        with telemetry.span("batch_gcd.task.remainder_tree", own=True):
            remainders = remainder_tree_squared(tree)
        divisors = [math.gcd(n, z // n) for n, z in zip(subset, remainders)]
    else:
        with telemetry.span("batch_gcd.task.remainder_tree", own=False):
            remainders = remainder_tree(product, tree)
        divisors = [math.gcd(n, z) for n, z in zip(subset, remainders)]
    return divisors, time.perf_counter() - start


def _run_task(
    args: tuple[int, int, list[int], int, bool, bool]
) -> tuple[int, int, list[int], float, dict[str, Any] | None]:
    """Process-pool entry point (top level so it pickles).

    When instrumentation is requested the task records into a private
    per-process registry and returns its serialised report, which the
    parent merges into its own (registries never cross process boundaries
    live — only snapshots do).
    """
    subset_index, product_index, subset, product, own, instrument = args
    if not instrument:
        divisors, seconds = _subset_pass(subset, product, own)
        return subset_index, product_index, divisors, seconds, None
    telemetry = Telemetry()
    with use_telemetry(telemetry):
        with telemetry.span(
            "batch_gcd.task",
            subset=subset_index,
            product=product_index,
            own=own,
            subset_size=len(subset),
            product_bits=product.bit_length(),
        ):
            divisors, seconds = _subset_pass(subset, product, own)
        telemetry.observe("batch_gcd.task", seconds, seconds)
    report = telemetry.report().to_dict()
    return subset_index, product_index, divisors, seconds, report


class ClusteredBatchGcd:
    """The k-subset cluster-parallel batch-GCD engine.

    Args:
        k: number of subsets (the paper used 16 for 81 M moduli).
        processes: worker processes for the ``k**2`` tasks.  ``None`` runs
            in-process (a "simulated cluster", still exercising the exact
            task decomposition); values >= 1 use a process pool.
    """

    def __init__(self, k: int = 16, processes: int | None = None) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1 or None")
        self.k = k
        self.processes = processes
        self.last_stats: ClusterRunStats | None = None

    def run(self, moduli: Sequence[int]) -> BatchGcdResult:
        """Run the clustered computation over a corpus.

        Raises:
            ValueError: if any modulus is < 2.
        """
        if any(m < 2 for m in moduli):
            raise ValueError("all moduli must be >= 2")
        corpus = list(moduli)
        if len(corpus) < 2:
            self.last_stats = ClusterRunStats(self.k, 0, 0.0, 0.0)
            return BatchGcdResult(corpus, [1] * len(corpus))
        telemetry = get_telemetry()
        instrument = telemetry.enabled
        k = min(self.k, len(corpus))
        started = time.perf_counter()
        # Round-robin partition: subset s holds corpus[s::k].
        subsets = [corpus[s::k] for s in range(k)]
        with telemetry.span("batch_gcd.products", k=k, moduli=len(corpus)):
            products = [tree_product(subset) for subset in subsets]
        product_build_seconds = time.perf_counter() - started
        telemetry.gauge(
            "batch_gcd.max_product_bits",
            max(p.bit_length() for p in products),
        )
        tasks = [
            (i, j, subsets[i], products[j], i == j, instrument)
            for i in range(k)
            for j in range(k)
        ]
        telemetry.gauge("batch_gcd.queue_depth", len(tasks))
        partials: dict[tuple[int, int], list[int]] = {}
        cpu_seconds = product_build_seconds
        completed = 0

        def consume(
            i: int, j: int, divisors: list[int], seconds: float,
            worker_report: dict[str, Any] | None,
        ) -> float:
            nonlocal completed
            partials[(i, j)] = divisors
            completed += 1
            if worker_report is not None:
                telemetry.merge_report(RunReport.from_dict(worker_report))
                telemetry.gauge("batch_gcd.queue_depth", len(tasks) - completed)
            return seconds

        if self.processes is None:
            for task in tasks:
                cpu_seconds += consume(*_run_task(task))
        else:
            with ProcessPoolExecutor(max_workers=self.processes) as pool:
                for outcome in pool.map(_run_task, tasks):
                    cpu_seconds += consume(*outcome)
        divisors = self._aggregate(corpus, k, partials)
        self.last_stats = ClusterRunStats(
            k=k,
            tasks=len(tasks),
            wall_seconds=time.perf_counter() - started,
            cpu_seconds=cpu_seconds,
            product_build_seconds=product_build_seconds,
        )
        telemetry.counter("batch_gcd.tasks", len(tasks))
        return BatchGcdResult(corpus, divisors)

    @staticmethod
    def _aggregate(
        corpus: list[int], k: int, partials: dict[tuple[int, int], list[int]]
    ) -> list[int]:
        """lcm-combine the k per-product passes for every modulus."""
        combined = [1] * len(corpus)
        for (i, _j), divisors in partials.items():
            for pos, d in enumerate(divisors):
                corpus_index = i + pos * k
                if d > 1:
                    current = combined[corpus_index]
                    combined[corpus_index] = current * d // math.gcd(current, d)
        # Divisors from different passes can overlap in prime content;
        # normalise back to an actual divisor of N.
        return [math.gcd(d, n) for d, n in zip(combined, corpus)]


def clustered_batch_gcd(
    moduli: Sequence[int], k: int = 16, processes: int | None = None
) -> BatchGcdResult:
    """Convenience wrapper: run :class:`ClusteredBatchGcd` once."""
    return ClusteredBatchGcd(k=k, processes=processes).run(moduli)
