"""The paper's cluster-parallel k-subset batch GCD (Section 3.2, Figure 2).

The classic algorithm bottlenecks at the root of the product tree: a single
product of all 81 million moduli, multiplied and reduced single-threadedly.
The paper's modification divides the corpus into ``k`` subsets, computes the
per-subset products ``P_1 .. P_k``, and then runs a remainder tree for
*every product against every subset* — ``k**2`` independent tasks whose
largest operand is ``k`` times smaller than the full product.  Total work
grows (quadratically in ``k``), but the tasks parallelise across a cluster;
the paper ran k=16 over 22 machines in 86 minutes versus 500 minutes for the
unmodified algorithm on one large machine.

Correctness: modulus ``N_i`` in subset ``s`` shares a factor with some other
modulus iff one of the following fires —

- against its own subset's product (``j == s``): the classic test
  ``gcd(N_i, (P_s mod N_i**2) / N_i) > 1``;
- against a foreign product (``j != s``): ``N_i`` does not divide ``P_j``,
  so the test is simply ``gcd(N_i, P_j mod N_i) > 1``.

Since every pair of moduli is covered by some (subset, product) pairing, the
union (lcm) of the per-pass divisors equals the classic algorithm's output
for squarefree moduli (every well-formed RSA modulus is squarefree).  On
degenerate inputs where a repeated prime's *multiplicity* in N is matched
only by combining several subsets (e.g. N = p**2 with single factors of p
spread across subsets), the reported divisor may be a proper divisor of the
classic one — the vulnerable/clean flagging is identical either way, which
is what the paper's pipeline consumes.

Schedulers.  The ``k**2`` task graph can be driven two ways:

- ``"streaming"`` (default): the parent builds each subset's product tree
  **once** (``k`` builds total, each under a ``batch_gcd.subset_tree``
  span), prepares Barrett reciprocals for its large nodes when the big-int
  backend profits from them, and broadcasts trees + reciprocals + products
  to the worker pool **once** through the executor initializer.  Task
  payloads shrink to ``(subset, product)`` index pairs, submitted in
  chunks, largest operands first, through a bounded in-flight window
  (``submit`` + ``wait``) so completed results merge back immediately
  instead of queueing behind slow head-of-line tasks.  Workers return
  sparse ``(position, divisor)`` hits.
- ``"fanout"``: the original ordered driver, kept as the before/after
  baseline: every task payload carries its whole subset and product
  (``k**2`` big-int serialisations) and every task rebuilds its subset's
  product tree from scratch.

Fault tolerance.  At cluster scale, worker loss and partial results are
the normal case; both schedulers therefore run their chunks through the
recovery seam of :mod:`repro.faults`:

- every chunk gets a per-chunk timeout plus bounded retry with
  exponential backoff (:class:`~repro.faults.recovery.RecoveryPolicy`),
  re-submitting to a fresh worker;
- a dead worker (``BrokenProcessPool``) rebuilds the pool — including the
  streaming broadcast — and re-queues everything in flight; when retries
  or rebuilds exhaust, chunks degrade gracefully to fault-free in-process
  execution, so a run completes (more slowly) even under a hostile plan;
- with ``checkpoint_dir`` set, every completed (subset, product) pass is
  persisted through :class:`~repro.faults.checkpoint.CheckpointStore`, and
  a restarted run resumes from the surviving passes with a byte-identical
  final :class:`~repro.core.results.BatchGcdResult`;
- an optional seeded :class:`~repro.faults.plan.FaultPlan` (CLI
  ``--fault-plan`` / ``$REPRO_FAULTS``; ``None`` — a single pointer check
  — by default) injects deterministic crash / timeout / corrupt / slow
  faults for chaos testing.

Telemetry: when a registry is active (see :mod:`repro.telemetry`), the run
records a ``batch_gcd.products`` span for the build phase (with one
``batch_gcd.subset_tree`` child per reusable tree under the streaming
scheduler) and one ``batch_gcd.task`` span per (subset, product) task —
workers record into their own per-process registry and the parent merges
the snapshots back, so the final report shows every task's wall/CPU time
and operand bit-sizes regardless of whether the task ran in-process or on
the pool.  Pooled streaming runs additionally record the
``batch_gcd.ipc_broadcast_bytes`` / ``batch_gcd.ipc_task_bytes`` counters
(pickled payload sizes) and a ``batch_gcd.queue_latency`` timer
(submit-to-merge per chunk); the ``batch_gcd.queue_depth`` gauge drains to
zero as tasks complete under either scheduler.  Recovery actions surface
as the ``batch_gcd.retries`` / ``batch_gcd.pool_rebuilds`` /
``batch_gcd.chunk_timeout`` counters and the
``batch_gcd.checkpoint_load`` / ``batch_gcd.checkpoint_write`` spans.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.core.results import BatchGcdResult, merge_sparse_hits
from repro.faults.checkpoint import CheckpointStore, corpus_digest
from repro.faults.inject import corrupt_chunk_results, trigger_fault
from repro.faults.plan import FaultPlan, resolve_fault_plan
from repro.faults.recovery import (
    ChunkResultError,
    RecoveryPolicy,
    RecoveryStats,
    ResilientExecutor,
)
from repro.numt.backend import BigIntBackend, resolve_backend
from repro.numt.trees import (
    prepare_reciprocals,
    product_tree,
    remainder_tree_prepared,
    remainder_tree_squared,
    tree_product,
)
from repro.telemetry import RunReport, Telemetry, get_telemetry, use_telemetry

__all__ = [
    "SCHEDULERS",
    "ClusteredBatchGcd",
    "ClusterRunStats",
    "clustered_batch_gcd",
]

#: Recognised task-graph drivers (see the module docstring).
SCHEDULERS = ("streaming", "fanout")


@dataclass(slots=True)
class ClusterRunStats:
    """Accounting for one clustered run (the paper reports both times).

    Attributes:
        k: number of subsets.
        tasks: number of (subset, product) tasks executed (``k**2``).
        wall_seconds: end-to-end elapsed time.
        cpu_seconds: total compute time — the build prologue plus the sum
            of per-task compute times (the "1089 CPU hours" figure of the
            paper, at simulation scale).
        product_build_seconds: the serial prologue before any task runs
            (part of ``cpu_seconds``): subset products under ``"fanout"``;
            subset trees, Barrett reciprocals and products under
            ``"streaming"``.
        scheduler: which driver ran (``"streaming"`` or ``"fanout"``).
        tree_builds: parent-side reusable product-tree builds (``k`` under
            ``"streaming"``; 0 under ``"fanout"``, which rebuilds inside
            every task).
        tree_build_seconds: time inside those parent-side builds
            (including reciprocal preparation; part of
            ``product_build_seconds``).
        ipc_broadcast_bytes: pickled size of the one-shot worker broadcast
            (trees + reciprocals + products).  Only measured on
            instrumented pooled streaming runs, else 0.
        ipc_task_bytes: pickled size of all task payloads.  Only measured
            on instrumented pooled streaming runs, else 0.
        ipc_crossshard_bytes: bytes of compact shard products crossing
            the simulated interconnect (all-to-all engine only, measured
            on every run; 0 for the clustered schedulers).
        retries: chunk re-submissions after a failure or timeout.
        pool_rebuilds: process pools rebuilt after a dead worker.
        chunk_timeouts: in-flight chunks abandoned for exceeding the
            per-chunk timeout.
        crashed_chunks: chunk attempts that raised (or died) in a worker.
        corrupt_chunks: chunk results rejected by completeness checks.
        inprocess_fallbacks: chunks degraded to fault-free in-process
            execution after retries/rebuilds exhausted.
        checkpoint_loaded: completed passes restored from the checkpoint
            at the start of the run.
        checkpoint_written: passes persisted to the checkpoint this run.
    """

    k: int
    tasks: int
    wall_seconds: float
    cpu_seconds: float
    product_build_seconds: float = 0.0
    scheduler: str = "streaming"
    tree_builds: int = 0
    tree_build_seconds: float = 0.0
    ipc_broadcast_bytes: int = 0
    ipc_task_bytes: int = 0
    ipc_crossshard_bytes: int = 0
    retries: int = 0
    pool_rebuilds: int = 0
    chunk_timeouts: int = 0
    crashed_chunks: int = 0
    corrupt_chunks: int = 0
    inprocess_fallbacks: int = 0
    checkpoint_loaded: int = 0
    checkpoint_written: int = 0

    def apply_recovery(self, recovery: RecoveryStats) -> None:
        """Copy a run's recovery accounting into the public stats."""
        self.retries = recovery.retries
        self.pool_rebuilds = recovery.pool_rebuilds
        self.chunk_timeouts = recovery.chunk_timeouts
        self.crashed_chunks = recovery.crashed_chunks
        self.corrupt_chunks = recovery.corrupt_chunks
        self.inprocess_fallbacks = recovery.inprocess_fallbacks


# --------------------------------------------------------------------------
# Streaming scheduler: broadcast worker state + index-pair chunk tasks.
# --------------------------------------------------------------------------

#: Per-process broadcast state, installed once by :func:`_pool_init` (or
#: passed directly on the in-process path).  Holding it at module level is
#: what keeps task payloads down to index pairs.
_WORKER_STATE: dict[str, Any] | None = None


def _pool_init(
    trees: list[list[list[int]]],
    reciprocals: list[list[list[tuple[int, int] | None]] | None],
    products: list[int],
    backend_name: str,
    instrument: bool,
    fault_plan: FaultPlan | None,
) -> None:
    """Process-pool initializer: receive the one-shot broadcast."""
    global _WORKER_STATE
    _WORKER_STATE = {
        "trees": trees,
        "reciprocals": reciprocals,
        "products": products,
        "backend": resolve_backend(backend_name),
        "instrument": instrument,
        "fault_plan": fault_plan,
    }


def _task_divisors(
    state: dict[str, Any], i: int, j: int
) -> list[tuple[int, int]]:
    """One (subset, product) pass against broadcast state, sparse result.

    Returns ``(position, divisor)`` pairs for the positions of subset ``i``
    whose modulus shares a factor with product ``j`` — almost always a
    short list, which is what keeps result payloads small.
    """
    backend: BigIntBackend = state["backend"]
    gcd = backend.gcd
    unwrap = backend.unwrap
    tree = state["trees"][i]
    leaves = tree[0]
    telemetry = get_telemetry()
    if i == j:
        with telemetry.span("batch_gcd.task.remainder_tree", own=True):
            remainders = remainder_tree_squared(tree)
        return [
            (pos, unwrap(d))
            for pos, (n, z) in enumerate(zip(leaves, remainders))
            if (d := gcd(n, z // n)) > 1
        ]
    with telemetry.span("batch_gcd.task.remainder_tree", own=False):
        remainders = remainder_tree_prepared(
            state["products"][j], tree, state["reciprocals"][i]
        )
    return [
        (pos, unwrap(d))
        for pos, (n, z) in enumerate(zip(leaves, remainders))
        if (d := gcd(n, z)) > 1
    ]


def _execute_chunk(
    state: dict[str, Any], pairs: Sequence[tuple[int, int]]
) -> tuple[list[tuple[int, int, list[tuple[int, int]], float]], dict[str, Any] | None]:
    """Run a chunk of (subset, product) index pairs against broadcast state.

    Returns per-task ``(i, j, sparse_divisors, seconds)`` records plus the
    serialised telemetry report when instrumentation is on (one
    ``batch_gcd.task`` span and timer observation per task, exactly as the
    fanout scheduler records them — only the per-task
    ``batch_gcd.task.product_tree`` span is gone, because the tree is
    reused rather than rebuilt).
    """
    if not state["instrument"]:
        clock = get_telemetry().clock
        results = []
        for i, j in pairs:
            started = clock.wall()
            found = _task_divisors(state, i, j)
            results.append((i, j, found, clock.wall() - started))
        return results, None
    telemetry = Telemetry()
    clock = telemetry.clock
    results = []
    with use_telemetry(telemetry):
        for i, j in pairs:
            started = clock.wall()
            with telemetry.span(
                "batch_gcd.task",
                subset=i,
                product=j,
                own=i == j,
                subset_size=len(state["trees"][i][0]),
                product_bits=int(state["products"][j].bit_length()),
            ):
                found = _task_divisors(state, i, j)
            seconds = clock.wall() - started
            telemetry.observe("batch_gcd.task", seconds, seconds)
            results.append((i, j, found, seconds))
    return results, telemetry.report().to_dict()


def _faulted_chunk(
    state: dict[str, Any],
    plan: FaultPlan | None,
    chunk_id: int,
    attempt: int,
    pairs: Sequence[tuple[int, int]],
    *,
    pooled: bool,
) -> tuple[list[tuple[int, int, list[tuple[int, int]], float]], dict[str, Any] | None]:
    """Execute one chunk attempt through the fault seam."""
    rule = trigger_fault(plan, chunk_id, attempt, pooled=pooled)
    results, report = _execute_chunk(state, pairs)
    if rule is not None and rule.kind == "corrupt":
        results = corrupt_chunk_results(results)
    return results, report


def _run_chunk(
    chunk_id: int, attempt: int, pairs: Sequence[tuple[int, int]]
) -> tuple[list[tuple[int, int, list[tuple[int, int]], float]], dict[str, Any] | None]:
    """Process-pool entry point (top level so it pickles): index pairs only."""
    assert _WORKER_STATE is not None, "worker used before _pool_init broadcast"
    return _faulted_chunk(
        _WORKER_STATE,
        _WORKER_STATE["fault_plan"],
        chunk_id,
        attempt,
        pairs,
        pooled=True,
    )


def _verify_chunk(chunk_id: int, pairs: Sequence[tuple[int, int]], result: Any) -> None:
    """Completeness check: one record per submitted (subset, product) pair."""
    results, _report = result
    got = {(i, j) for i, j, _found, _seconds in results}
    expected = set(pairs)
    if got != expected:
        raise ChunkResultError(
            f"chunk {chunk_id} returned passes {sorted(got)} "
            f"for submitted {sorted(expected)}"
        )


# --------------------------------------------------------------------------
# Fanout scheduler: the original self-contained-payload driver.
# --------------------------------------------------------------------------


def _subset_pass(
    subset: Sequence[int], product: int, own_subset: bool, backend: BigIntBackend
) -> tuple[list[int], float]:
    """One fanout task: dense partial divisors for the subset's moduli."""
    telemetry = get_telemetry()
    start = telemetry.clock.wall()
    gcd = backend.gcd
    with telemetry.span("batch_gcd.task.product_tree", leaves=len(subset)):
        tree = product_tree(subset, backend=backend)
    if own_subset:
        with telemetry.span("batch_gcd.task.remainder_tree", own=True):
            remainders = remainder_tree_squared(tree)
        divisors = [
            backend.unwrap(gcd(n, z // n)) for n, z in zip(tree[0], remainders)
        ]
    else:
        with telemetry.span("batch_gcd.task.remainder_tree", own=False):
            remainders = remainder_tree_prepared(product, tree)
        divisors = [
            backend.unwrap(gcd(n, z)) for n, z in zip(tree[0], remainders)
        ]
    return divisors, telemetry.clock.wall() - start


def _run_task(
    args: tuple[int, int, list[int], int, bool, bool, str]
) -> tuple[int, int, list[int], float, dict[str, Any] | None]:
    """One self-contained fanout task (also the fault-free fallback body).

    When instrumentation is requested the task records into a private
    per-process registry and returns its serialised report, which the
    parent merges into its own (registries never cross process boundaries
    live — only snapshots do).
    """
    subset_index, product_index, subset, product, own, instrument, backend_name = args
    backend = resolve_backend(backend_name)
    if not instrument:
        divisors, seconds = _subset_pass(subset, product, own, backend)
        return subset_index, product_index, divisors, seconds, None
    telemetry = Telemetry()
    with use_telemetry(telemetry):
        with telemetry.span(
            "batch_gcd.task",
            subset=subset_index,
            product=product_index,
            own=own,
            subset_size=len(subset),
            product_bits=int(product.bit_length()),
        ):
            divisors, seconds = _subset_pass(subset, product, own, backend)
        telemetry.observe("batch_gcd.task", seconds, seconds)
    report = telemetry.report().to_dict()
    return subset_index, product_index, divisors, seconds, report


def _run_fanout_task(
    chunk_id: int,
    attempt: int,
    payload: tuple[tuple, FaultPlan | None],
) -> tuple[int, int, list[int], float, dict[str, Any] | None]:
    """Fanout process-pool entry point: one task through the fault seam."""
    args, plan = payload
    rule = trigger_fault(plan, chunk_id, attempt, pooled=True)
    i, j, divisors, seconds, report = _run_task(args)
    if rule is not None and rule.kind == "corrupt":
        divisors = corrupt_chunk_results(divisors)
    return i, j, divisors, seconds, report


def _verify_fanout_task(chunk_id: int, payload: tuple, result: Any) -> None:
    """Completeness check: the right pass, one divisor per subset modulus."""
    args, _plan = payload
    subset_index, product_index, subset = args[0], args[1], args[2]
    i, j, divisors, _seconds, _report = result
    if (i, j) != (subset_index, product_index) or len(divisors) != len(subset):
        raise ChunkResultError(
            f"task {chunk_id} returned pass ({i}, {j}) with "
            f"{len(divisors)} divisors for pass "
            f"({subset_index}, {product_index}) over {len(subset)} moduli"
        )


class ClusteredBatchGcd:
    """The k-subset cluster-parallel batch-GCD engine.

    Args:
        k: number of subsets (the paper used 16 for 81 M moduli).
        processes: worker processes for the ``k**2`` tasks.  ``None`` runs
            in-process (a "simulated cluster", still exercising the exact
            task decomposition); values >= 1 use a process pool.
        scheduler: task-graph driver — ``"streaming"`` (cached trees,
            one-shot broadcast, bounded-window submission; the default) or
            ``"fanout"`` (the original driver of self-contained payloads).
        backend: big-int backend name (``"python"``, ``"gmpy2"``), an
            already-resolved :class:`~repro.numt.backend.BigIntBackend`,
            or ``None`` for ``$REPRO_NUMT_BACKEND`` / the active default.
        max_inflight: bound on simultaneously submitted task chunks under
            the streaming scheduler (``None`` = twice the worker count).
        max_retries: chunk re-submissions before degrading to in-process
            execution (see :class:`~repro.faults.recovery.RecoveryPolicy`).
        chunk_timeout: seconds before an in-flight chunk is abandoned and
            retried (``None`` disables; pooled runs only).
        checkpoint_dir: directory for subset-pass checkpoints (``None``
            disables checkpointing).
        fault_plan: a :class:`~repro.faults.plan.FaultPlan`, spec string,
            or plan-file path to inject deterministic faults; ``None``
            defers to ``$REPRO_FAULTS`` (and stays off without it).
        recovery: a fully-specified
            :class:`~repro.faults.recovery.RecoveryPolicy` overriding
            ``max_retries``/``chunk_timeout`` (backoff tuning for tests).
    """

    def __init__(
        self,
        k: int = 16,
        processes: int | None = None,
        scheduler: str = "streaming",
        backend: str | BigIntBackend | None = None,
        max_inflight: int | None = None,
        max_retries: int = 2,
        chunk_timeout: float | None = None,
        checkpoint_dir: str | Path | None = None,
        fault_plan: FaultPlan | str | None = None,
        recovery: RecoveryPolicy | None = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1 or None")
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r} (choose from {SCHEDULERS})"
            )
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 or None")
        self.k = k
        self.processes = processes
        self.scheduler = scheduler
        self.backend = backend
        self.max_inflight = max_inflight
        self.checkpoint_dir = checkpoint_dir
        self.fault_plan = fault_plan
        self.recovery = recovery or RecoveryPolicy(
            max_retries=max_retries, chunk_timeout=chunk_timeout
        )
        self.last_stats: ClusterRunStats | None = None

    def run(self, moduli: Sequence[int]) -> BatchGcdResult:
        """Run the clustered computation over a corpus.

        Raises:
            ValueError: if any modulus is < 2.
        """
        if any(m < 2 for m in moduli):
            raise ValueError("all moduli must be >= 2")
        corpus = list(moduli)
        if len(corpus) < 2:
            self.last_stats = ClusterRunStats(
                self.k, 0, 0.0, 0.0, scheduler=self.scheduler
            )
            return BatchGcdResult(corpus, [1] * len(corpus))
        backend = resolve_backend(self.backend)
        plan = resolve_fault_plan(self.fault_plan)
        k = min(self.k, len(corpus))
        subsets = [corpus[s::k] for s in range(k)]
        if self.scheduler == "fanout":
            return self._run_fanout(corpus, subsets, k, backend, plan)
        return self._run_streaming(corpus, subsets, k, backend, plan)

    def _checkpoint_store(
        self, corpus: list[int], k: int, backend: BigIntBackend
    ) -> CheckpointStore | None:
        if self.checkpoint_dir is None:
            return None
        return CheckpointStore(
            self.checkpoint_dir,
            digest=corpus_digest(corpus),
            k=k,
            scheduler=self.scheduler,
            backend=backend.name,
        )

    # -- streaming -------------------------------------------------------

    def _run_streaming(
        self,
        corpus: list[int],
        subsets: list[list[int]],
        k: int,
        backend: BigIntBackend,
        plan: FaultPlan | None,
    ) -> BatchGcdResult:
        telemetry = get_telemetry()
        clock = telemetry.clock
        instrument = telemetry.enabled
        started = clock.wall()

        # Build each subset's tree exactly once; products are the roots.
        trees: list[list[list[int]]] = []
        reciprocals: list[list[list[tuple[int, int] | None]] | None] = []
        tree_build_seconds = 0.0
        with telemetry.span(
            "batch_gcd.products", k=k, moduli=len(corpus), scheduler="streaming"
        ):
            for s, subset in enumerate(subsets):
                build_start = clock.wall()
                with telemetry.span(
                    "batch_gcd.subset_tree", subset=s, leaves=len(subset)
                ):
                    tree = product_tree(subset, backend=backend)
                    recips = (
                        prepare_reciprocals(tree) if backend.use_barrett else None
                    )
                    telemetry.annotate(
                        root_bits=int(tree[-1][0].bit_length()),
                        reciprocal_nodes=sum(
                            1 for level in recips or [] for r in level if r
                        ),
                    )
                tree_build_seconds += clock.wall() - build_start
                trees.append(tree)
                reciprocals.append(recips)
        products = [tree[-1][0] for tree in trees]
        prologue_seconds = clock.wall() - started
        telemetry.gauge(
            "batch_gcd.max_product_bits",
            max(int(p.bit_length()) for p in products),
        )

        # Largest operands first: heavy subsets up front, and within each
        # subset the own pass (squared push-down, the heaviest) leads.
        bits = [int(p.bit_length()) for p in products]
        order = sorted(range(k), key=lambda s: (-bits[s], s))
        tasks: list[tuple[int, int]] = []
        for i in order:
            tasks.append((i, i))
            tasks.extend(
                (i, j)
                for j in sorted(
                    (j for j in range(k) if j != i),
                    key=lambda j: (-bits[j], j),
                )
            )

        partials: dict[tuple[int, int], list[tuple[int, int]]] = {}
        store = self._checkpoint_store(corpus, k, backend)
        if store is not None:
            partials.update(store.load())
        remaining_tasks = [t for t in tasks if t not in partials]
        chunk_size = max(1, k // 4)
        chunks = [
            remaining_tasks[c : c + chunk_size]
            for c in range(0, len(remaining_tasks), chunk_size)
        ]
        telemetry.gauge("batch_gcd.queue_depth", len(remaining_tasks))

        cpu_seconds = prologue_seconds
        remaining = len(remaining_tasks)
        broadcast_bytes = 0
        task_bytes = 0
        checkpoint_written = 0

        state = {
            "trees": trees,
            "reciprocals": reciprocals,
            "products": products,
            "backend": backend,
            "instrument": instrument,
            "fault_plan": plan,
        }

        def consume(
            chunk_id: int,
            outcome: tuple[
                list[tuple[int, int, list[tuple[int, int]], float]],
                dict[str, Any] | None,
            ],
            queued_seconds: float,
        ) -> None:
            nonlocal cpu_seconds, remaining, checkpoint_written
            results, report = outcome
            completed_passes: dict[tuple[int, int], list[tuple[int, int]]] = {}
            for i, j, found, seconds in results:
                partials[(i, j)] = found
                completed_passes[(i, j)] = found
                cpu_seconds += seconds
            remaining -= len(results)
            # Drain progress is reported whether or not the chunk carried
            # a worker report (uninstrumented runs still gauge).
            telemetry.gauge("batch_gcd.queue_depth", remaining)
            telemetry.observe("batch_gcd.queue_latency", queued_seconds)
            if report is not None:
                telemetry.merge_report(RunReport.from_dict(report))
            if store is not None:
                store.record(completed_passes)
                checkpoint_written += len(completed_passes)

        def local_chunk(chunk_id: int, attempt: int, pairs):
            return _faulted_chunk(
                state, plan, chunk_id, attempt, pairs, pooled=False
            )

        def fallback_chunk(chunk_id: int, pairs):
            return _execute_chunk(state, pairs)

        pool_factory = None
        on_submit = None
        if self.processes is not None:
            broadcast = (
                trees, reciprocals, products, backend.name, instrument, plan,
            )
            if instrument:
                broadcast_bytes = len(pickle.dumps(broadcast))
                telemetry.counter(
                    "batch_gcd.ipc_broadcast_bytes", broadcast_bytes
                )

            def pool_factory() -> ProcessPoolExecutor:
                return ProcessPoolExecutor(
                    max_workers=self.processes,
                    initializer=_pool_init,
                    initargs=broadcast,
                )

            if instrument:

                def on_submit(chunk_id: int, pairs) -> None:
                    nonlocal task_bytes
                    payload = len(pickle.dumps(pairs))
                    task_bytes += payload
                    telemetry.counter("batch_gcd.ipc_task_bytes", payload)

        recovery = ResilientExecutor(
            payloads=list(enumerate(chunks)),
            policy=self.recovery,
            fallback=fallback_chunk,
            pool_factory=pool_factory,
            pool_task=_run_chunk,
            local_task=local_chunk,
            verify=_verify_chunk,
            window=(
                (self.max_inflight or 2 * self.processes)
                if self.processes is not None
                else 1
            ),
            on_submit=on_submit,
        )
        recovery_stats = recovery.run(consume)

        divisors = self._aggregate_sparse(corpus, k, partials)
        self.last_stats = ClusterRunStats(
            k=k,
            tasks=len(tasks),
            wall_seconds=clock.wall() - started,
            cpu_seconds=cpu_seconds,
            product_build_seconds=prologue_seconds,
            scheduler="streaming",
            tree_builds=k,
            tree_build_seconds=tree_build_seconds,
            ipc_broadcast_bytes=broadcast_bytes,
            ipc_task_bytes=task_bytes,
            checkpoint_loaded=len(tasks) - len(remaining_tasks),
            checkpoint_written=checkpoint_written,
        )
        self.last_stats.apply_recovery(recovery_stats)
        telemetry.counter("batch_gcd.tasks", len(tasks))
        return BatchGcdResult(corpus, divisors)

    # -- fanout (the original driver, kept as the baseline) --------------

    def _run_fanout(
        self,
        corpus: list[int],
        subsets: list[list[int]],
        k: int,
        backend: BigIntBackend,
        plan: FaultPlan | None,
    ) -> BatchGcdResult:
        telemetry = get_telemetry()
        clock = telemetry.clock
        instrument = telemetry.enabled
        started = clock.wall()
        with telemetry.span(
            "batch_gcd.products", k=k, moduli=len(corpus), scheduler="fanout"
        ):
            products = [tree_product(subset, backend=backend) for subset in subsets]
        product_build_seconds = clock.wall() - started
        telemetry.gauge(
            "batch_gcd.max_product_bits",
            max(int(p.bit_length()) for p in products),
        )
        all_passes = [(i, j) for i in range(k) for j in range(k)]
        partials: dict[tuple[int, int], list[int]] = {}
        store = self._checkpoint_store(corpus, k, backend)
        if store is not None:
            for (i, j), sparse in store.load().items():
                dense = [1] * len(subsets[i])
                for pos, divisor in sparse:
                    dense[pos] = divisor
                partials[(i, j)] = dense
        passes = [p for p in all_passes if p not in partials]
        tasks = [
            (i, j, subsets[i], products[j], i == j, instrument, backend.name)
            for i, j in passes
        ]
        telemetry.gauge("batch_gcd.queue_depth", len(tasks))
        cpu_seconds = product_build_seconds
        completed = 0
        checkpoint_written = 0

        def consume(
            chunk_id: int,
            outcome: tuple[int, int, list[int], float, dict[str, Any] | None],
            queued_seconds: float,
        ) -> None:
            nonlocal cpu_seconds, completed, checkpoint_written
            i, j, divisors, seconds, worker_report = outcome
            partials[(i, j)] = divisors
            cpu_seconds += seconds
            completed += 1
            # Drain progress does not depend on a worker report being
            # attached (uninstrumented pool runs still gauge).
            telemetry.gauge("batch_gcd.queue_depth", len(tasks) - completed)
            if worker_report is not None:
                telemetry.merge_report(RunReport.from_dict(worker_report))
            if store is not None:
                sparse = [
                    (pos, d) for pos, d in enumerate(divisors) if d > 1
                ]
                store.record({(i, j): sparse})
                checkpoint_written += 1

        def local_task(chunk_id: int, attempt: int, payload):
            args, _plan = payload
            rule = trigger_fault(plan, chunk_id, attempt, pooled=False)
            i, j, divisors, seconds, report = _run_task(args)
            if rule is not None and rule.kind == "corrupt":
                divisors = corrupt_chunk_results(divisors)
            return i, j, divisors, seconds, report

        def fallback_task(chunk_id: int, payload):
            args, _plan = payload
            return _run_task(args)

        pool_factory = None
        if self.processes is not None:

            def pool_factory() -> ProcessPoolExecutor:
                return ProcessPoolExecutor(max_workers=self.processes)

        recovery = ResilientExecutor(
            payloads=[(cid, (args, plan)) for cid, args in enumerate(tasks)],
            policy=self.recovery,
            fallback=fallback_task,
            pool_factory=pool_factory,
            pool_task=_run_fanout_task,
            local_task=local_task,
            verify=_verify_fanout_task,
            window=2 * self.processes if self.processes is not None else 1,
        )
        recovery_stats = recovery.run(consume)

        divisors = self._aggregate(corpus, k, partials)
        self.last_stats = ClusterRunStats(
            k=k,
            tasks=len(all_passes),
            wall_seconds=clock.wall() - started,
            cpu_seconds=cpu_seconds,
            product_build_seconds=product_build_seconds,
            scheduler="fanout",
            checkpoint_loaded=len(all_passes) - len(passes),
            checkpoint_written=checkpoint_written,
        )
        self.last_stats.apply_recovery(recovery_stats)
        telemetry.counter("batch_gcd.tasks", len(all_passes))
        return BatchGcdResult(corpus, divisors)

    # -- aggregation -----------------------------------------------------

    @staticmethod
    def _aggregate(
        corpus: list[int], k: int, partials: dict[tuple[int, int], list[int]]
    ) -> list[int]:
        """lcm-combine dense fanout partials for every modulus."""
        import math

        combined = [1] * len(corpus)
        for (i, _j), divisors in partials.items():
            for pos, d in enumerate(divisors):
                corpus_index = i + pos * k
                if d > 1:
                    current = combined[corpus_index]
                    combined[corpus_index] = current * d // math.gcd(current, d)
        # Divisors from different passes can overlap in prime content;
        # normalise back to an actual divisor of N.
        return [math.gcd(d, n) for d, n in zip(combined, corpus)]

    @staticmethod
    def _aggregate_sparse(
        corpus: list[int],
        k: int,
        partials: dict[tuple[int, int], list[tuple[int, int]]],
    ) -> list[int]:
        """lcm-combine sparse streaming partials for every modulus."""
        return merge_sparse_hits(corpus, k, partials.items())


def clustered_batch_gcd(
    moduli: Sequence[int],
    k: int = 16,
    processes: int | None = None,
    scheduler: str = "streaming",
    backend: str | BigIntBackend | None = None,
) -> BatchGcdResult:
    """Convenience wrapper: run :class:`ClusteredBatchGcd` once."""
    return ClusteredBatchGcd(
        k=k, processes=processes, scheduler=scheduler, backend=backend
    ).run(moduli)
