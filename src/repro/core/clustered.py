"""The paper's cluster-parallel k-subset batch GCD (Section 3.2, Figure 2).

The classic algorithm bottlenecks at the root of the product tree: a single
product of all 81 million moduli, multiplied and reduced single-threadedly.
The paper's modification divides the corpus into ``k`` subsets, computes the
per-subset products ``P_1 .. P_k``, and then runs a remainder tree for
*every product against every subset* — ``k**2`` independent tasks whose
largest operand is ``k`` times smaller than the full product.  Total work
grows (quadratically in ``k``), but the tasks parallelise across a cluster;
the paper ran k=16 over 22 machines in 86 minutes versus 500 minutes for the
unmodified algorithm on one large machine.

Correctness: modulus ``N_i`` in subset ``s`` shares a factor with some other
modulus iff one of the following fires —

- against its own subset's product (``j == s``): the classic test
  ``gcd(N_i, (P_s mod N_i**2) / N_i) > 1``;
- against a foreign product (``j != s``): ``N_i`` does not divide ``P_j``,
  so the test is simply ``gcd(N_i, P_j mod N_i) > 1``.

Since every pair of moduli is covered by some (subset, product) pairing, the
union (lcm) of the per-pass divisors equals the classic algorithm's output
for squarefree moduli (every well-formed RSA modulus is squarefree).  On
degenerate inputs where a repeated prime's *multiplicity* in N is matched
only by combining several subsets (e.g. N = p**2 with single factors of p
spread across subsets), the reported divisor may be a proper divisor of the
classic one — the vulnerable/clean flagging is identical either way, which
is what the paper's pipeline consumes.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.core.results import BatchGcdResult
from repro.numt.trees import (
    product_tree,
    remainder_tree,
    remainder_tree_squared,
    tree_product,
)

__all__ = ["ClusteredBatchGcd", "ClusterRunStats", "clustered_batch_gcd"]


@dataclass(slots=True)
class ClusterRunStats:
    """Accounting for one clustered run (the paper reports both times).

    Attributes:
        k: number of subsets.
        tasks: number of (subset, product) tasks executed (``k**2``).
        wall_seconds: end-to-end elapsed time.
        cpu_seconds: sum of per-task compute times (the "1089 CPU hours"
            figure of the paper, at simulation scale).
    """

    k: int
    tasks: int
    wall_seconds: float
    cpu_seconds: float


def _subset_pass(
    subset: Sequence[int], product: int, own_subset: bool
) -> tuple[list[int], float]:
    """One (subset, product) task: partial divisors for the subset's moduli."""
    start = time.perf_counter()
    tree = product_tree(list(subset))
    if own_subset:
        remainders = remainder_tree_squared(tree)
        divisors = [math.gcd(n, z // n) for n, z in zip(subset, remainders)]
    else:
        remainders = remainder_tree(product, tree)
        divisors = [math.gcd(n, z) for n, z in zip(subset, remainders)]
    return divisors, time.perf_counter() - start


def _run_task(args: tuple[int, int, list[int], int, bool]) -> tuple[int, int, list[int], float]:
    """Process-pool entry point (top level so it pickles)."""
    subset_index, product_index, subset, product, own = args
    divisors, seconds = _subset_pass(subset, product, own)
    return subset_index, product_index, divisors, seconds


class ClusteredBatchGcd:
    """The k-subset cluster-parallel batch-GCD engine.

    Args:
        k: number of subsets (the paper used 16 for 81 M moduli).
        processes: worker processes for the ``k**2`` tasks.  ``None`` runs
            in-process (a "simulated cluster", still exercising the exact
            task decomposition); values >= 1 use a process pool.
    """

    def __init__(self, k: int = 16, processes: int | None = None) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1 or None")
        self.k = k
        self.processes = processes
        self.last_stats: ClusterRunStats | None = None

    def run(self, moduli: Sequence[int]) -> BatchGcdResult:
        """Run the clustered computation over a corpus.

        Raises:
            ValueError: if any modulus is < 2.
        """
        if any(m < 2 for m in moduli):
            raise ValueError("all moduli must be >= 2")
        corpus = list(moduli)
        if len(corpus) < 2:
            self.last_stats = ClusterRunStats(self.k, 0, 0.0, 0.0)
            return BatchGcdResult(corpus, [1] * len(corpus))
        k = min(self.k, len(corpus))
        started = time.perf_counter()
        # Round-robin partition: subset s holds corpus[s::k].
        subsets = [corpus[s::k] for s in range(k)]
        products = [tree_product(subset) for subset in subsets]
        tasks = [
            (i, j, subsets[i], products[j], i == j)
            for i in range(k)
            for j in range(k)
        ]
        partials: dict[tuple[int, int], list[int]] = {}
        cpu_seconds = 0.0
        if self.processes is None:
            for task in tasks:
                i, j, divisors, seconds = _run_task(task)
                partials[(i, j)] = divisors
                cpu_seconds += seconds
        else:
            with ProcessPoolExecutor(max_workers=self.processes) as pool:
                for i, j, divisors, seconds in pool.map(_run_task, tasks):
                    partials[(i, j)] = divisors
                    cpu_seconds += seconds
        divisors = self._aggregate(corpus, k, partials)
        self.last_stats = ClusterRunStats(
            k=k,
            tasks=len(tasks),
            wall_seconds=time.perf_counter() - started,
            cpu_seconds=cpu_seconds,
        )
        return BatchGcdResult(corpus, divisors)

    @staticmethod
    def _aggregate(
        corpus: list[int], k: int, partials: dict[tuple[int, int], list[int]]
    ) -> list[int]:
        """lcm-combine the k per-product passes for every modulus."""
        combined = [1] * len(corpus)
        for (i, _j), divisors in partials.items():
            for pos, d in enumerate(divisors):
                corpus_index = i + pos * k
                if d > 1:
                    current = combined[corpus_index]
                    combined[corpus_index] = current * d // math.gcd(current, d)
        # Divisors from different passes can overlap in prime content;
        # normalise back to an actual divisor of N.
        return [math.gcd(d, n) for d, n in zip(combined, corpus)]


def clustered_batch_gcd(
    moduli: Sequence[int], k: int = 16, processes: int | None = None
) -> BatchGcdResult:
    """Convenience wrapper: run :class:`ClusteredBatchGcd` once."""
    return ClusteredBatchGcd(k=k, processes=processes).run(moduli)
