"""The incremental batch-GCD engine: serve checks from a persistent tree.

:class:`IncrementalBatchGcd` is the engine-seam facade over
:class:`repro.numt.incremental.ProductTreeStore`.  Where the other
engines recompute the full product/remainder tree per :meth:`run`, this
one keeps the corpus tree alive between runs (on disk when ``store_dir``
is set) and pays only for what changed:

- a run whose corpus **extends** the stored corpus by a few moduli
  inserts just the extension — one O(n)-big-int root reduction plus an
  O(log n) spine rebuild per new modulus — instead of an O(n log n)
  recompute;
- a **cold** store (or an extension too large for per-modulus inserts to
  win) delegates to a bulk engine — the classic in-process tree by
  default, or any engine with a ``run(moduli)`` method (the service
  passes its configured :class:`~repro.core.clustered.ClusteredBatchGcd`)
  — and bootstraps the store from its result in one shot;
- a corpus that does **not** extend the store (the store is append-only)
  is computed fresh via the bulk engine and the store is left untouched.

Divisor semantics on the incremental path follow the clustered engine's
aggregation rule (gcd-capped lcm of pairwise shares): vulnerable/clean
flags always match the classic engine, and divisors are byte-identical
on squarefree corpora — every well-formed RSA corpus — with the same
multiplicity caveat as :class:`~repro.core.clustered.ClusteredBatchGcd`
on degenerate prime-power inputs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Protocol, Sequence

from repro.core.batchgcd import batch_gcd
from repro.core.clustered import ClusterRunStats
from repro.core.results import BatchGcdResult
from repro.numt.backend import BigIntBackend
from repro.numt.incremental import ProductTreeStore
from repro.telemetry import get_telemetry

__all__ = ["BulkEngine", "IncrementalBatchGcd", "INCREMENTAL_MAX_BATCH"]

#: Default largest corpus extension served by per-modulus inserts; a
#: bigger delta re-runs the bulk engine and re-bootstraps the store
#: (k inserts cost O(k·n) big-int work vs O(n log n) for one rebuild).
INCREMENTAL_MAX_BATCH = 64


class BulkEngine(Protocol):
    """Anything that can run a full batch GCD over a corpus."""

    def run(self, moduli: Sequence[int]) -> BatchGcdResult: ...


class _ClassicBulk:
    """Default bulk engine: the classic in-process tree."""

    def __init__(self, backend: str | BigIntBackend | None) -> None:
        self._backend = backend

    def run(self, moduli: Sequence[int]) -> BatchGcdResult:
        return batch_gcd(moduli, backend=self._backend)


class IncrementalBatchGcd:
    """Batch-GCD engine backed by a (persistent) incremental tree store.

    Args:
        store_dir: directory for the persistent store; ``None`` keeps the
            tree in memory only (the store then lives for one run and the
            engine behaves like a classic engine with incremental
            aggregation semantics).
        backend: big-int backend name or instance (``None`` = active
            default; a persisted store pins its backend).
        bulk: engine for cold bootstraps and oversized extensions; any
            object with ``run(moduli) -> BatchGcdResult``.  ``None`` uses
            the classic in-process tree.
        max_incremental_batch: largest corpus extension served by
            per-modulus inserts before delegating to ``bulk``.
    """

    def __init__(
        self,
        store_dir: str | Path | None = None,
        backend: str | BigIntBackend | None = None,
        bulk: BulkEngine | None = None,
        max_incremental_batch: int = INCREMENTAL_MAX_BATCH,
    ) -> None:
        if max_incremental_batch < 1:
            raise ValueError("max_incremental_batch must be >= 1")
        self.store_dir = store_dir
        self.backend = backend
        self.bulk: BulkEngine = bulk if bulk is not None else _ClassicBulk(backend)
        self.max_incremental_batch = max_incremental_batch
        self.last_stats: ClusterRunStats | None = None
        self.last_mode: str | None = None

    def open_store(self) -> ProductTreeStore:
        """Open (or create) the engine's store — the serving-path handle."""
        return ProductTreeStore(self.store_dir, backend=self.backend)

    def run(self, moduli: Sequence[int]) -> BatchGcdResult:
        """Batch GCD over a corpus, reusing the store when it applies.

        Raises:
            ValueError: if any modulus is < 2.
        """
        if any(m < 2 for m in moduli):
            raise ValueError("all moduli must be >= 2")
        telemetry = get_telemetry()
        clock = telemetry.clock
        started = clock.wall()
        corpus = list(moduli)
        if len(corpus) < 2:
            self.last_mode = "trivial"
            self.last_stats = ClusterRunStats(
                1, 0, clock.wall() - started, 0.0, scheduler="incremental"
            )
            return BatchGcdResult(corpus, [1] * len(corpus))
        store = self.open_store()
        base = store.count
        extends = base <= len(corpus) and store.moduli == corpus[:base]
        inserts = 0
        if not extends:
            # Foreign/stale store: the corpus is not an extension, so the
            # append-only store cannot absorb it.  Compute fresh; the
            # store keeps serving whatever corpus it already holds.
            self.last_mode = "bulk-mismatch"
            result = self.bulk.run(corpus)
        else:
            new = corpus[base:]
            if base == 0 or len(new) > self.max_incremental_batch:
                self.last_mode = "bootstrap"
                result = self.bulk.run(corpus)
                store.bootstrap(corpus, result.divisors)
            else:
                self.last_mode = "incremental"
                for m in new:
                    store.insert(m)
                inserts = len(new)
                result = BatchGcdResult(corpus, store.divisors())
        wall = clock.wall() - started
        telemetry.annotate(engine_mode=self.last_mode, inserts=inserts)
        self.last_stats = ClusterRunStats(
            1, inserts, wall, wall, scheduler="incremental"
        )
        return result
