"""Naive all-pairs GCD baseline.

Quadratic in the number of moduli.  The paper keeps it around only to note
that it "is not feasible for the dataset sizes used in this paper"; we keep
it as the correctness oracle for the tree-based engines and as the baseline
side of the Figure 2 scaling benchmark.

The contract matches the batch engines exactly: the reported divisor for
``N_i`` is ``gcd(N_i, P / N_i)`` where ``P`` is the product of the whole
corpus — including prime *multiplicity* (a prime appearing in two other
moduli can contribute its square).  For well-formed RSA corpora the
distinction is invisible, but artifact inputs (bit-error moduli, degenerate
keys) exercise it.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.results import BatchGcdResult
from repro.telemetry import get_telemetry

__all__ = ["naive_pairwise_gcd"]


def _extract_shared(remaining: int, other: int) -> tuple[int, int]:
    """Peel gcd(remaining, other) with full multiplicity.

    Returns:
        ``(extracted, new_remaining)`` where ``extracted`` is the exact
        shared content between ``remaining`` and ``other`` (per-prime
        exponent ``min(v_p(remaining), v_p(other))``).
    """
    extracted = 1
    g = math.gcd(remaining, other)
    while g > 1:
        extracted *= g
        remaining //= g
        other //= g
        g = math.gcd(remaining, math.gcd(other, g))
    return extracted, remaining


def naive_pairwise_gcd(moduli: Sequence[int]) -> BatchGcdResult:
    """Compute each modulus's shared divisor by brute-force pairwise GCDs.

    For each ``N_i`` the other moduli are folded in one at a time, each
    contributing the shared content still present in the running cofactor of
    ``N_i``; the product of contributions equals ``gcd(N_i, P / N_i)``.
    """
    telemetry = get_telemetry()
    n = len(moduli)
    divisors = [1] * n
    gcd_ops = 0
    with telemetry.span("batch_gcd.naive", moduli=n):
        for i in range(n):
            remaining = moduli[i]
            acc = 1
            for j in range(n):
                if j == i or remaining == 1:
                    continue
                extracted, remaining = _extract_shared(remaining, moduli[j])
                acc *= extracted
                gcd_ops += 1
            divisors[i] = acc
    telemetry.counter("batch_gcd.naive.gcd_ops", gcd_ops)
    return BatchGcdResult(list(moduli), divisors)
