"""Result objects for the batch-GCD engines, including factor recovery.

A batch-GCD engine reports, for each modulus ``N``, a *divisor*: the part of
``N`` shared with the rest of the corpus (1 when ``N`` is clean).  Recovery
of an actual factorization has two wrinkles the paper deals with:

- ``divisor == N``: the modulus shares *both* prime factors with other
  moduli (possible in degenerate populations like the IBM nine-prime clique).
  The shared part alone does not split ``N``; :meth:`BatchGcdResult.resolve`
  falls back to pairwise GCDs within the (small) flagged set.
- composite divisors that are products of many small primes: the signature
  of bit-error artifacts (Section 3.3.5) rather than a flawed keygen; these
  are surfaced as-is and classified by the fingerprinting layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.numt.primality import is_probable_prime

__all__ = ["FactoredModulus", "BatchGcdResult", "merge_sparse_hits"]


@dataclass(frozen=True, slots=True)
class FactoredModulus:
    """A successfully split modulus.

    Attributes:
        modulus: the original modulus ``N``.
        p: the smaller recovered factor.
        q: the larger recovered factor (``p * q == N``).
    """

    modulus: int
    p: int
    q: int

    @property
    def is_well_formed(self) -> bool:
        """True when both factors are prime and of equal bit length.

        Well-formed splits indicate the shared-prime keygen flaw; ill-formed
        ones (composite or lopsided factors) usually indicate bit errors.
        """
        return (
            self.p.bit_length() == self.q.bit_length()
            and is_probable_prime(self.p)
            and is_probable_prime(self.q)
        )


@dataclass(slots=True)
class BatchGcdResult:
    """Aligned divisors for a corpus of moduli, with lazy factor recovery.

    Attributes:
        moduli: the input corpus, in order.
        divisors: ``divisors[i] == gcd(moduli[i], product of all others)``
            (computed as ``gcd(N, z/N)`` with ``z = P mod N**2``).
    """

    moduli: list[int]
    divisors: list[int]
    _factored: dict[int, FactoredModulus] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if len(self.moduli) != len(self.divisors):
            raise ValueError("moduli and divisors must be aligned")

    @property
    def vulnerable_indices(self) -> list[int]:
        """Indices of moduli with a nontrivial shared divisor."""
        return [i for i, d in enumerate(self.divisors) if d > 1]

    @property
    def vulnerable_moduli(self) -> list[int]:
        """Moduli with a nontrivial shared divisor, in input order."""
        return [self.moduli[i] for i in self.vulnerable_indices]

    def vulnerable_count(self) -> int:
        """Number of flagged moduli."""
        return len(self.vulnerable_indices)

    def resolve(self) -> dict[int, FactoredModulus]:
        """Split every flagged modulus, with pairwise fallback for full shares.

        Returns:
            Mapping from modulus to its :class:`FactoredModulus`.  Moduli
            whose divisor equals ``N`` and that cannot be split even against
            every other flagged modulus (only possible for repeated moduli,
            which callers are expected to deduplicate) are omitted.
        """
        if self._factored is not None:
            return self._factored
        factored: dict[int, FactoredModulus] = {}
        full_share: list[int] = []
        flagged = self.vulnerable_indices
        for i in flagged:
            n, d = self.moduli[i], self.divisors[i]
            if d == n:
                full_share.append(i)
            else:
                factored[n] = _split(n, d)
        flagged_moduli = [self.moduli[i] for i in flagged]
        for i in full_share:
            n = self.moduli[i]
            divisor = _pairwise_split(n, flagged_moduli)
            if divisor is not None:
                factored[n] = _split(n, divisor)
        self._factored = factored
        return factored

    def recovered_primes(self) -> set[int]:
        """All prime factors recovered across the corpus (composites excluded)."""
        primes: set[int] = set()
        for fact in self.resolve().values():
            for f in (fact.p, fact.q):
                if is_probable_prime(f):
                    primes.add(f)
        return primes

    def merge(self, other: "BatchGcdResult") -> "BatchGcdResult":
        """Combine results over the same corpus (divisor = lcm per modulus).

        Used by the clustered engine to aggregate per-subset passes.  Both
        operands must cover the same moduli in the same order.
        """
        if self.moduli != other.moduli:
            raise ValueError("cannot merge results over different corpora")
        merged = [
            _lcm_capped(a, b, n)
            for a, b, n in zip(self.divisors, other.divisors, self.moduli)
        ]
        return BatchGcdResult(self.moduli, merged)


def _lcm_capped(a: int, b: int, n: int) -> int:
    """lcm of two divisors of ``n`` (itself a divisor of ``n``)."""
    return a * b // math.gcd(a, b)


def _split(n: int, divisor: int) -> FactoredModulus:
    """Split ``n`` by a known proper divisor."""
    p, q = divisor, n // divisor
    if p > q:
        p, q = q, p
    return FactoredModulus(modulus=n, p=p, q=q)


def _pairwise_split(n: int, candidates: Sequence[int]) -> int | None:
    """Find a proper divisor of ``n`` by pairwise GCD against ``candidates``.

    This is the fallback for a modulus that shares both of its primes with
    the corpus: some single other modulus shares exactly one of them, and the
    pairwise GCD against it isolates that prime.
    """
    for m in candidates:
        if m == n:
            continue
        g = math.gcd(n, m)
        if 1 < g < n:
            return g
    return None


def merge_sparse_hits(
    moduli: Sequence[int],
    stride: int,
    hits: Iterable[tuple[tuple[int, int], Sequence[tuple[int, int]]]],
) -> list[int]:
    """Merge sparse per-pass hit sets into one aligned divisor list.

    This is the canonical aggregation shared by the clustered and
    all-to-all engines: each pass ``(owner, other)`` contributes
    ``(position, divisor)`` records for the owning subset/shard, whose
    ``position``-th modulus sits at corpus index
    ``owner + position * stride`` under the round-robin partition.
    Contributions for the same modulus combine by lcm and the total is
    capped back to an actual divisor of the modulus (divisors from
    different passes can overlap in prime content).

    The lcm fold is commutative and associative and the cap is applied
    once at the end, so the result is independent of the order hit sets
    are merged in — the property that lets a sharded deployment combine
    per-shard results as they arrive.
    """
    combined = [1] * len(moduli)
    for (owner, _other), found in hits:
        for pos, divisor in found:
            index = owner + pos * stride
            current = combined[index]
            combined[index] = current * divisor // math.gcd(current, divisor)
    return [math.gcd(d, n) for d, n in zip(combined, moduli)]


def combine_results(results: Iterable[BatchGcdResult]) -> BatchGcdResult:
    """Merge any number of results over the same corpus."""
    iterator = iter(results)
    try:
        combined = next(iterator)
    except StopIteration:
        raise ValueError("combine_results needs at least one result") from None
    for result in iterator:
        combined = combined.merge(result)
    return combined
