"""Engine selection: one seam mapping a study config to a batch-GCD engine.

The engines are interchangeable behind ``run(moduli) -> BatchGcdResult``
but have very different cost shapes: the classic tree wins small corpora
outright, pooled clustered streaming wins large corpora on multi-core
hosts but pays pool startup (BENCH_batchgcd.json: 0.043 s pooled vs
0.0185 s in-process at n=616), and the incremental engine wins the
serving path where runs extend a persistent corpus.  This module owns
the decision so the pipeline, the CLIs and the service all pick the same
way:

- ``engine="classic"`` / ``"clustered"`` / ``"incremental"`` /
  ``"alltoall"`` select explicitly;
- ``engine="auto"`` (the default study setting) picks the incremental
  engine when a persistent ``store_dir`` is configured, the sharded
  all-to-all engine when a ``shards`` count is configured, and otherwise
  clustered — in-process for small corpora or single-core hosts, pooled
  streaming with a derived worker count once the corpus is large enough
  (:data:`AUTO_POOL_MIN_MODULI`) for the pool to amortise its startup.

An explicit ``processes`` always wins over the derived worker count.

Selection never falls back silently: a request that cannot be satisfied
as stated — ``shards`` with an engine that has no shard axis, a
persistent ``store_dir`` with the storeless all-to-all engine, or
``auto`` given both (so either resolution would drop one knob) — raises
``ValueError`` naming the conflict instead of guessing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.core.alltoall import DEFAULT_SHARDS, AllToAllBatchGcd
from repro.core.batchgcd import batch_gcd
from repro.core.clustered import ClusteredBatchGcd, ClusterRunStats
from repro.core.incremental import IncrementalBatchGcd
from repro.core.results import BatchGcdResult
from repro.numt.backend import BigIntBackend
from repro.telemetry import get_telemetry

__all__ = [
    "AUTO_POOL_MIN_MODULI",
    "AUTO_POOL_MAX_WORKERS",
    "ENGINE_NAMES",
    "ClassicBatchGcd",
    "EngineChoice",
    "auto_processes",
    "select_engine",
]

#: Engine names accepted by StudyConfig.batchgcd_engine and the CLIs.
ENGINE_NAMES = ("auto", "classic", "clustered", "incremental", "alltoall")

#: Smallest corpus for which ``auto`` reaches for a process pool: below
#: this, pool startup dominates (measured crossover in BENCH_batchgcd.json
#: — pooled streaming only breaks even in the low thousands of moduli).
AUTO_POOL_MIN_MODULI = 2000

#: Worker-count ceiling for ``auto`` pooled runs; beyond this the k-way
#: task graph stops scaling for corpora near the pool threshold.
AUTO_POOL_MAX_WORKERS = 8


class ClassicBatchGcd:
    """Engine facade over the classic single-machine tree.

    Exists so every selectable engine exposes the same
    ``run``/``last_stats`` surface the CLIs and the pipeline expect.
    """

    def __init__(self, backend: str | BigIntBackend | None = None) -> None:
        self.backend = backend
        self.last_stats: ClusterRunStats | None = None

    def run(self, moduli: Sequence[int]) -> BatchGcdResult:
        clock = get_telemetry().clock
        started = clock.wall()
        result = batch_gcd(moduli, backend=self.backend)
        wall = clock.wall() - started
        self.last_stats = ClusterRunStats(1, 1, wall, wall, scheduler="classic")
        return result


@dataclass(frozen=True)
class EngineChoice:
    """A resolved engine selection (what ``auto`` decided and why).

    Attributes:
        name: resolved engine name — never ``"auto"``.
        engine: the constructed engine (``run(moduli)`` + ``last_stats``).
        processes: worker processes the engine will use (``None`` =
            in-process).
        reason: one-line human explanation of the decision, surfaced in
            telemetry and ``--timings`` output.
    """

    name: str
    engine: Any
    processes: int | None
    reason: str


def auto_processes(
    corpus_size: int,
    requested: int | None = None,
    cores: int | None = None,
) -> tuple[int | None, str]:
    """Derive a worker count from corpus size and available cores.

    Returns ``(processes, reason)`` where ``processes`` is ``None`` for
    in-process execution.  An explicit ``requested`` value is returned
    unchanged.
    """
    if requested is not None:
        return requested, f"processes={requested} requested explicitly"
    if cores is None:
        cores = os.cpu_count() or 1
    if cores < 2:
        return None, f"in-process: {cores} core(s) available"
    if corpus_size < AUTO_POOL_MIN_MODULI:
        return None, (
            f"in-process: corpus {corpus_size} < pool threshold "
            f"{AUTO_POOL_MIN_MODULI}"
        )
    workers = max(2, min(cores - 1, AUTO_POOL_MAX_WORKERS))
    return workers, (
        f"pooled: corpus {corpus_size} >= {AUTO_POOL_MIN_MODULI} "
        f"on {cores} cores -> {workers} workers"
    )


def select_engine(
    corpus_size: int,
    engine: str = "auto",
    k: int = 16,
    processes: int | None = None,
    scheduler: str = "streaming",
    backend: str | BigIntBackend | None = None,
    max_inflight: int | None = None,
    max_retries: int = 2,
    chunk_timeout: float | None = None,
    checkpoint_dir: str | Path | None = None,
    fault_plan: Any = None,
    store_dir: str | Path | None = None,
    shards: int | None = None,
    cores: int | None = None,
) -> EngineChoice:
    """Resolve an engine name (possibly ``"auto"``) to a ready engine.

    Args:
        corpus_size: number of moduli about to be run (drives ``auto``).
        engine: one of :data:`ENGINE_NAMES`.
        k / processes / scheduler / backend / max_inflight / max_retries
            / chunk_timeout / checkpoint_dir / fault_plan: the clustered
            engine's knobs, passed through when it is selected (the
            fault knobs also apply to the all-to-all engine).
        store_dir: persistent store directory for the incremental engine;
            also what makes ``auto`` prefer it.
        shards: logical node count for the all-to-all engine; also what
            makes ``auto`` prefer it (``None`` when it is named
            explicitly means :data:`~repro.core.alltoall.DEFAULT_SHARDS`).
        cores: core-count override for tests (``None`` = os.cpu_count()).

    Raises:
        ValueError: on an unknown engine name, or on a request that
            cannot be satisfied as stated — selection never silently
            drops a knob to make a request fit (``shards`` with a
            shardless engine, ``store_dir`` with the storeless all-to-all
            engine, or ``auto`` given both).
    """
    if engine not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {engine!r} (choose from {ENGINE_NAMES})"
        )
    if shards is not None and shards < 1:
        raise ValueError("shards must be >= 1")
    if shards is not None and engine in ("classic", "clustered", "incremental"):
        raise ValueError(
            f"engine {engine!r} has no shard axis: shards={shards} would be "
            "ignored (use engine='alltoall', or drop the shard count)"
        )
    if engine == "alltoall" and store_dir is not None:
        raise ValueError(
            "the alltoall engine has no persistent store: "
            f"store_dir={str(store_dir)!r} would be ignored (use "
            "engine='incremental', or drop the store)"
        )
    if engine == "auto" and store_dir is not None and shards is not None:
        raise ValueError(
            "auto cannot satisfy both a persistent store "
            f"(store_dir={str(store_dir)!r} -> incremental) and a shard "
            f"count (shards={shards} -> alltoall); name the engine "
            "explicitly and drop the other knob"
        )
    resolved = engine
    if engine == "auto":
        if store_dir is not None:
            resolved = "incremental"
        elif shards is not None:
            resolved = "alltoall"
        else:
            resolved = "clustered"
    if resolved == "alltoall":
        pool, pool_reason = (
            auto_processes(corpus_size, requested=processes, cores=cores)
            if engine == "auto"
            else (processes, "alltoall engine requested")
        )
        reason = (
            f"auto: shard count {shards} configured -> alltoall ({pool_reason})"
            if engine == "auto"
            else pool_reason
        )
        return EngineChoice(
            "alltoall",
            AllToAllBatchGcd(
                shards=shards if shards is not None else DEFAULT_SHARDS,
                processes=pool,
                backend=backend,
                max_inflight=max_inflight,
                max_retries=max_retries,
                chunk_timeout=chunk_timeout,
                checkpoint_dir=checkpoint_dir,
                fault_plan=fault_plan,
            ),
            pool,
            reason,
        )
    if resolved == "classic":
        return EngineChoice(
            "classic", ClassicBatchGcd(backend=backend), None,
            "classic engine requested",
        )
    if resolved == "incremental":
        bulk = ClusteredBatchGcd(
            k=k,
            processes=processes,
            scheduler=scheduler,
            backend=backend,
            max_inflight=max_inflight,
            max_retries=max_retries,
            chunk_timeout=chunk_timeout,
            checkpoint_dir=checkpoint_dir,
            fault_plan=fault_plan,
        )
        reason = (
            "incremental engine requested"
            if engine == "incremental"
            else f"auto: persistent store at {store_dir}"
        )
        return EngineChoice(
            "incremental",
            IncrementalBatchGcd(store_dir=store_dir, backend=backend, bulk=bulk),
            processes,
            reason,
        )
    pool, reason = (
        auto_processes(corpus_size, requested=processes, cores=cores)
        if engine == "auto"
        else (processes, "clustered engine requested")
    )
    return EngineChoice(
        "clustered",
        ClusteredBatchGcd(
            k=k,
            processes=pool,
            scheduler=scheduler,
            backend=backend,
            max_inflight=max_inflight,
            max_retries=max_retries,
            chunk_timeout=chunk_timeout,
            checkpoint_dir=checkpoint_dir,
            fault_plan=fault_plan,
        ),
        pool,
        reason,
    )
