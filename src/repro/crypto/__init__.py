"""Cryptographic substrate: primes, RSA, and a lightweight certificate model.

Everything the simulated devices need to generate (possibly weak) RSA keys
and serve TLS certificates:

- :mod:`repro.crypto.primes` — prime generation strategies, including the
  OpenSSL-style generation whose distinctive rejection rule provides the
  implementation fingerprint of paper Section 3.3.4.
- :mod:`repro.crypto.rsa` — RSA key objects, keygen, encryption/signatures,
  and private-key recovery from a known factor (the attacker's step once
  batch GCD reveals a shared prime).
- :mod:`repro.crypto.certs` — X.509-like certificates: distinguished names,
  subject alternative names, validity windows, self-signing, fingerprints.
"""

from repro.crypto.certs import Certificate, DistinguishedName, self_signed_certificate
from repro.crypto.dsa import (
    DsaKeyPair,
    DsaParameters,
    DsaSignature,
    generate_dsa_keypair,
    generate_parameters,
    recover_private_key_from_nonce_reuse,
)
from repro.crypto.primes import (
    OPENSSL_FINGERPRINT_PRIMES,
    generate_prime,
    is_openssl_style_prime,
    is_safe_prime,
    openssl_style_prime,
    safe_prime,
)
from repro.crypto.rsa import (
    RsaKeyPair,
    RsaPrivateKey,
    RsaPublicKey,
    generate_rsa_keypair,
    keypair_from_primes,
    recover_private_key,
)

__all__ = [
    "Certificate",
    "DistinguishedName",
    "DsaKeyPair",
    "DsaParameters",
    "DsaSignature",
    "generate_dsa_keypair",
    "generate_parameters",
    "recover_private_key_from_nonce_reuse",
    "OPENSSL_FINGERPRINT_PRIMES",
    "RsaKeyPair",
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_prime",
    "generate_rsa_keypair",
    "is_openssl_style_prime",
    "is_safe_prime",
    "keypair_from_primes",
    "openssl_style_prime",
    "recover_private_key",
    "safe_prime",
    "self_signed_certificate",
]
