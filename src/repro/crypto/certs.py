"""A lightweight X.509-like certificate model.

Only the fields the paper's fingerprinting pipeline consumes are modelled:
subject / issuer distinguished names, subject alternative names, serial,
validity window, the RSA public key, and a self-signature.  Certificates are
immutable; the Internet-Rimon man-in-the-middle behaviour (Section 3.3.3) is
modelled by :func:`substitute_public_key`, which swaps only the key and
signature while leaving every other field intact — exactly the artifact the
paper observed.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from datetime import date

from repro.crypto.rsa import RsaKeyPair, RsaPrivateKey, RsaPublicKey

__all__ = [
    "DistinguishedName",
    "Certificate",
    "self_signed_certificate",
    "substitute_public_key",
]

_DN_ATTRIBUTES = ("C", "ST", "L", "O", "OU", "CN")


@dataclass(frozen=True, slots=True)
class DistinguishedName:
    """An X.500 distinguished name restricted to the common attributes."""

    C: str = ""
    ST: str = ""
    L: str = ""
    O: str = ""  # noqa: E741 - X.500 attribute name
    OU: str = ""
    CN: str = ""

    def rfc4514(self) -> str:
        """Render as an RFC 4514-style string, omitting empty attributes."""
        parts = [
            f"{attr}={getattr(self, attr)}"
            for attr in _DN_ATTRIBUTES
            if getattr(self, attr)
        ]
        return ", ".join(parts)

    @classmethod
    def parse(cls, text: str) -> "DistinguishedName":
        """Parse an RFC 4514-style string produced by :meth:`rfc4514`.

        Raises:
            ValueError: on unknown attributes or malformed components.
        """
        values: dict[str, str] = {}
        if not text.strip():
            return cls()
        for component in text.split(","):
            attr, sep, value = component.strip().partition("=")
            if not sep:
                raise ValueError(f"malformed DN component: {component!r}")
            if attr not in _DN_ATTRIBUTES:
                raise ValueError(f"unsupported DN attribute: {attr!r}")
            values[attr] = value
        return cls(**values)

    def __str__(self) -> str:
        return self.rfc4514()


@dataclass(frozen=True, slots=True)
class Certificate:
    """An X.509-like certificate as collected by a TLS scan."""

    subject: DistinguishedName
    issuer: DistinguishedName
    serial: int
    not_before: date
    not_after: date
    public_key: RsaPublicKey
    subject_alt_names: tuple[str, ...] = ()
    signature: int = 0
    signature_hash: str = "sha256"
    is_ca: bool = False

    def tbs_bytes(self) -> bytes:
        """Serialise the to-be-signed portion (everything but the signature)."""
        fields = (
            self.subject.rfc4514(),
            self.issuer.rfc4514(),
            str(self.serial),
            self.not_before.isoformat(),
            self.not_after.isoformat(),
            f"{self.public_key.n:x}",
            f"{self.public_key.e:x}",
            "|".join(self.subject_alt_names),
            self.signature_hash,
            str(self.is_ca),
        )
        return "\n".join(fields).encode()

    def fingerprint(self) -> str:
        """SHA-256 fingerprint over the full certificate, signature included."""
        return hashlib.sha256(
            self.tbs_bytes() + b"\n" + str(self.signature).encode()
        ).hexdigest()

    @property
    def is_self_signed(self) -> bool:
        """True when issuer and subject names coincide."""
        return self.subject == self.issuer

    def verify_signature(self, signer: RsaPublicKey | None = None) -> bool:
        """Verify the signature; defaults to self-verification.

        Bit-error artifacts and MITM key substitutions both fail this check,
        mirroring the paper's note that corrupted certificates "of course will
        fail to verify".
        """
        key = signer if signer is not None else self.public_key
        return key.verify(self.tbs_bytes(), self.signature)

    def valid_on(self, day: date) -> bool:
        """True when ``day`` falls inside the validity window (inclusive)."""
        return self.not_before <= day <= self.not_after


def self_signed_certificate(
    subject: DistinguishedName,
    keypair: RsaKeyPair,
    serial: int,
    not_before: date,
    not_after: date,
    subject_alt_names: tuple[str, ...] = (),
    is_ca: bool = False,
) -> Certificate:
    """Create and sign a self-signed certificate (the device-default case).

    Nearly every vulnerable certificate in the paper's corpus was an
    automatically generated self-signed device certificate; this is the
    factory all simulated devices use.
    """
    unsigned = Certificate(
        subject=subject,
        issuer=subject,
        serial=serial,
        not_before=not_before,
        not_after=not_after,
        public_key=keypair.public,
        subject_alt_names=subject_alt_names,
        is_ca=is_ca,
    )
    signature = keypair.private.sign(unsigned.tbs_bytes())
    return dataclasses.replace(unsigned, signature=signature)


def issue_certificate(
    subject: DistinguishedName,
    public_key: RsaPublicKey,
    issuer_certificate: Certificate,
    issuer_key: RsaPrivateKey,
    serial: int,
    not_before: date,
    not_after: date,
    subject_alt_names: tuple[str, ...] = (),
    is_ca: bool = False,
) -> Certificate:
    """Issue a certificate signed by a CA (the background web-PKI case).

    The paper notes that only a handful of *vulnerable* certificates were
    CA-signed; in the simulation CA issuance is confined to the healthy
    background ecosystem, and this factory is what the simulated CAs use.
    """
    unsigned = Certificate(
        subject=subject,
        issuer=issuer_certificate.subject,
        serial=serial,
        not_before=not_before,
        not_after=not_after,
        public_key=public_key,
        subject_alt_names=subject_alt_names,
        is_ca=is_ca,
    )
    signature = issuer_key.sign(unsigned.tbs_bytes())
    return dataclasses.replace(unsigned, signature=signature)


def substitute_public_key(
    certificate: Certificate,
    new_key: RsaPublicKey,
    signer: RsaPrivateKey | None = None,
    signature_hash: str = "sha1",
) -> Certificate:
    """Replace only the public key (and signature) of a certificate.

    Models the Internet Rimon ISP man-in-the-middle (Section 3.3.3): "Only
    the public key and the signature (as well as the choice of hash function
    used in the signature) were changed; the rest of the certificate remained
    unchanged."

    Args:
        certificate: the device's original certificate.
        new_key: the interceptor's fixed public key.
        signer: optionally the interceptor's private key, used to re-sign;
            when omitted the signature is an opaque constant that fails
            verification (as in the wild).
        signature_hash: hash name recorded in the substituted certificate.
    """
    swapped = dataclasses.replace(
        certificate,
        public_key=new_key,
        signature_hash=signature_hash,
        signature=0,
    )
    if signer is not None:
        signature = signer.sign(swapped.tbs_bytes())
    else:
        signature = int.from_bytes(
            hashlib.sha256(swapped.tbs_bytes()).digest(), "big"
        ) % max(new_key.n, 2)
    return dataclasses.replace(swapped, signature=signature)
