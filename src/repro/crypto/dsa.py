"""DSA and the repeated-nonce flaw (the disclosures' other half).

Of the 61 vendors notified in 2012, 37 concerned weak RSA keys; "the
remainder produced vulnerable DSA signatures only" (paper Section 2.5),
and Moxa's public disclosure concerned DSA. The paper excludes DSA from
its measurement (its corpus is RSA), but the flaw class belongs to the
same entropy-hole family: a device whose pool state repeats will reuse the
per-signature nonce ``k``, and two signatures sharing a nonce leak the
private key algebraically.

This module provides a small, complete DSA so that flaw is runnable:
parameter generation, keygen, signing (with an injectable nonce source to
model the flaw), verification, and the classic nonce-reuse key recovery.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.crypto.primes import generate_prime
from repro.numt.arith import modinv
from repro.numt.primality import is_probable_prime

__all__ = [
    "DsaParameters",
    "DsaKeyPair",
    "DsaSignature",
    "generate_parameters",
    "generate_dsa_keypair",
    "sign",
    "verify",
    "recover_private_key_from_nonce_reuse",
]


@dataclass(frozen=True, slots=True)
class DsaParameters:
    """A DSA domain: primes ``p``, ``q`` (with ``q | p-1``) and generator ``g``."""

    p: int
    q: int
    g: int


@dataclass(frozen=True, slots=True)
class DsaKeyPair:
    """A DSA key pair over some domain parameters."""

    parameters: DsaParameters
    x: int  # private
    y: int  # public: g^x mod p


@dataclass(frozen=True, slots=True)
class DsaSignature:
    """An (r, s) DSA signature."""

    r: int
    s: int


def _hash_to_int(message: bytes, q: int) -> int:
    return int.from_bytes(hashlib.sha256(message).digest(), "big") % q


def generate_parameters(
    rng: random.Random, p_bits: int = 256, q_bits: int = 96
) -> DsaParameters:
    """Generate a DSA domain by the classic ``p = q*m + 1`` search."""
    if q_bits >= p_bits:
        raise ValueError("q must be smaller than p")
    q = generate_prime(q_bits, rng)
    while True:
        m = rng.getrandbits(p_bits - q_bits) | (1 << (p_bits - q_bits - 1))
        p = q * m + 1
        if p.bit_length() == p_bits and is_probable_prime(p):
            break
    # A generator of the order-q subgroup.
    while True:
        h = rng.randrange(2, p - 1)
        g = pow(h, (p - 1) // q, p)
        if g > 1:
            return DsaParameters(p=p, q=q, g=g)


def generate_dsa_keypair(
    parameters: DsaParameters, rng: random.Random
) -> DsaKeyPair:
    """Generate a key pair over the given domain."""
    x = rng.randrange(1, parameters.q)
    return DsaKeyPair(
        parameters=parameters, x=x, y=pow(parameters.g, x, parameters.p)
    )


def sign(
    keypair: DsaKeyPair, message: bytes, nonce: int | None = None,
    rng: random.Random | None = None,
) -> DsaSignature:
    """Sign a message.

    Args:
        keypair: the signing key.
        message: the message to sign.
        nonce: the per-signature secret ``k``.  Healthy implementations
            draw it fresh from a seeded pool; the entropy-hole flaw is
            modelled by passing the *same* value twice.
        rng: randomness source used when ``nonce`` is None.

    Raises:
        ValueError: if neither nonce nor rng is provided, or the nonce is
            out of range.
    """
    params = keypair.parameters
    while True:
        if nonce is not None:
            k = nonce
            if not 0 < k < params.q:
                raise ValueError("nonce out of range")
        elif rng is not None:
            k = rng.randrange(1, params.q)
        else:
            raise ValueError("provide a nonce or an rng")
        r = pow(params.g, k, params.p) % params.q
        if r == 0:
            if nonce is not None:
                raise ValueError("degenerate nonce (r == 0)")
            continue
        h = _hash_to_int(message, params.q)
        s = modinv(k, params.q) * (h + keypair.x * r) % params.q
        if s == 0:
            if nonce is not None:
                raise ValueError("degenerate nonce (s == 0)")
            continue
        return DsaSignature(r=r, s=s)


def verify(
    parameters: DsaParameters, y: int, message: bytes, signature: DsaSignature
) -> bool:
    """Verify a DSA signature against a public key ``y``."""
    r, s = signature.r, signature.s
    if not (0 < r < parameters.q and 0 < s < parameters.q):
        return False
    w = modinv(s, parameters.q)
    h = _hash_to_int(message, parameters.q)
    u1 = h * w % parameters.q
    u2 = r * w % parameters.q
    v = (
        pow(parameters.g, u1, parameters.p)
        * pow(y, u2, parameters.p)
        % parameters.p
        % parameters.q
    )
    return v == r


def recover_private_key_from_nonce_reuse(
    parameters: DsaParameters,
    message1: bytes,
    signature1: DsaSignature,
    message2: bytes,
    signature2: DsaSignature,
) -> int:
    """Recover the private key from two signatures sharing a nonce.

    With a shared ``k``: ``k = (h1 - h2) / (s1 - s2) mod q`` and then
    ``x = (s1*k - h1) / r mod q`` — the attack that made the DSA-only
    vendors' entropy failures exploitable.

    Raises:
        ValueError: if the signatures do not actually share a nonce
            (``r`` values differ) or the algebra degenerates.
    """
    if signature1.r != signature2.r:
        raise ValueError("signatures do not share a nonce (r differs)")
    q = parameters.q
    h1 = _hash_to_int(message1, q)
    h2 = _hash_to_int(message2, q)
    s_delta = (signature1.s - signature2.s) % q
    if s_delta == 0:
        raise ValueError("identical signatures carry no new information")
    k = (h1 - h2) * modinv(s_delta, q) % q
    x = (signature1.s * k - h1) * modinv(signature1.r, q) % q
    return x
