"""RSA keys, keygen, encryption, signatures, and factor-based key recovery.

The key objects deliberately mirror what the measurement pipeline sees: a
public key is ``(N, e)`` exactly as extracted from a scanned certificate, and
:func:`recover_private_key` performs the attacker's step once batch GCD has
revealed one prime factor of ``N`` (paper Section 2.3: "These two operations
can be performed in less than one second on a standard modern laptop").
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass

from repro.crypto.primes import generate_prime
from repro.numt.arith import modinv

__all__ = [
    "RsaPublicKey",
    "RsaPrivateKey",
    "RsaKeyPair",
    "generate_rsa_keypair",
    "keypair_from_primes",
    "recover_private_key",
]

DEFAULT_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True, slots=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)`` as served in a certificate."""

    n: int
    e: int = DEFAULT_PUBLIC_EXPONENT

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    def encrypt(self, m: int) -> int:
        """Textbook RSA encryption of an integer message ``0 <= m < n``."""
        if not 0 <= m < self.n:
            raise ValueError("message out of range for modulus")
        return pow(m, self.e, self.n)

    def verify(self, message: bytes, signature: int) -> bool:
        """Verify a hash-then-sign signature produced by :meth:`RsaPrivateKey.sign`."""
        if not 0 <= signature < self.n:
            return False
        return pow(signature, self.e, self.n) == _message_representative(message, self.n)

    def fingerprint(self) -> str:
        """SHA-256 fingerprint of the public key (hex), used as a stable key id."""
        blob = f"{self.n:x}:{self.e:x}".encode()
        return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True, slots=True)
class RsaPrivateKey:
    """An RSA private key with CRT-style components retained."""

    n: int
    e: int
    d: int
    p: int
    q: int

    def decrypt(self, c: int) -> int:
        """Textbook RSA decryption."""
        if not 0 <= c < self.n:
            raise ValueError("ciphertext out of range for modulus")
        return pow(c, self.d, self.n)

    def sign(self, message: bytes) -> int:
        """Hash-then-sign: sign SHA-256(message) embedded below the modulus."""
        return pow(_message_representative(message, self.n), self.d, self.n)

    @property
    def public_key(self) -> RsaPublicKey:
        """The corresponding public key."""
        return RsaPublicKey(self.n, self.e)


@dataclass(frozen=True, slots=True)
class RsaKeyPair:
    """A generated public/private key pair."""

    public: RsaPublicKey
    private: RsaPrivateKey


def _message_representative(message: bytes, n: int) -> int:
    """Deterministically map a message into ``[0, n)`` via SHA-256 expansion.

    A stand-in for PKCS#1 v1.5 encoding: full-domain-hash style expansion of
    the digest, truncated below the modulus.
    """
    digest = hashlib.sha256(message).digest()
    expanded = b"".join(
        hashlib.sha256(digest + bytes([i])).digest() for i in range(4)
    )
    return int.from_bytes(expanded, "big") % n


def keypair_from_primes(p: int, q: int, e: int = DEFAULT_PUBLIC_EXPONENT) -> RsaKeyPair:
    """Assemble a key pair from two primes.

    This is the entry point the entropy-failure simulator uses: flawed devices
    arrive here with *shared or repeated* primes, and the resulting moduli are
    exactly the weak keys batch GCD later factors.

    Raises:
        ValueError: if ``p == q`` (degenerate square modulus) or ``e`` is not
            invertible modulo ``lcm(p-1, q-1)``.
    """
    if p == q:
        raise ValueError("p and q must be distinct primes")
    n = p * q
    lam = (p - 1) * (q - 1) // math.gcd(p - 1, q - 1)
    d = modinv(e, lam)
    private = RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)
    return RsaKeyPair(public=private.public_key, private=private)


def generate_rsa_keypair(
    bits: int,
    rng: random.Random,
    e: int = DEFAULT_PUBLIC_EXPONENT,
) -> RsaKeyPair:
    """Generate a healthy RSA key pair with a ``bits``-bit modulus.

    Primes are drawn independently at ``bits // 2`` each; candidates whose
    ``p - 1`` shares a factor with ``e`` are retried.
    """
    if bits < 8 or bits % 2:
        raise ValueError("modulus size must be an even number of bits >= 8")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        try:
            pair = keypair_from_primes(p, q, e)
        except ValueError:
            continue
        if pair.public.n.bit_length() == bits:
            return pair


def recover_private_key(n: int, e: int, known_factor: int) -> RsaPrivateKey:
    """Recover a full private key from a modulus and one known prime factor.

    This is what an attacker does with batch-GCD output: given ``p | n``,
    compute ``q = n / p`` and the private exponent.

    Raises:
        ValueError: if ``known_factor`` does not non-trivially divide ``n``.
    """
    if known_factor <= 1 or known_factor >= n or n % known_factor:
        raise ValueError("known_factor does not nontrivially divide n")
    p = known_factor
    q = n // p
    lam = (p - 1) * (q - 1) // math.gcd(p - 1, q - 1)
    d = modinv(e, lam)
    return RsaPrivateKey(n=n, e=e, d=d, p=min(p, q), q=max(p, q))
