"""Device and vendor world model: who made the devices, how they respond.

- :mod:`repro.devices.vendors` — the vendor registry (Table 2 response
  categories, Table 5 OpenSSL classification, advisory dates).
- :mod:`repro.devices.models` — device-model specifications.
- :mod:`repro.devices.catalog` — the concrete catalog calibrated to the
  paper's Figures 1 and 3–10.
- :mod:`repro.devices.certfactory` — per-vendor certificate conventions.
- :mod:`repro.devices.population` — monthly fleet dynamics (deploy, retire,
  churn, regenerate, patch, Heartbleed).
"""

from repro.devices.catalog import DEVICE_CATALOG, catalog_models, models_for_vendor
from repro.devices.certfactory import build_certificate, format_ip
from repro.devices.models import (
    DeviceModel,
    HeartbleedBehavior,
    KeygenKind,
    KeygenSpec,
    PopulationSchedule,
    SubjectStyle,
)
from repro.devices.population import (
    Device,
    DivisorLimits,
    IpAllocator,
    ModelPopulation,
    resolve_divisor,
)
from repro.devices.vendors import (
    VENDORS,
    ResponseCategory,
    Vendor,
    notified_2012_vendors,
    vendor,
    vendors_in_category,
)

__all__ = [
    "DEVICE_CATALOG",
    "Device",
    "DeviceModel",
    "DivisorLimits",
    "HeartbleedBehavior",
    "IpAllocator",
    "KeygenKind",
    "KeygenSpec",
    "ModelPopulation",
    "PopulationSchedule",
    "ResponseCategory",
    "SubjectStyle",
    "VENDORS",
    "Vendor",
    "build_certificate",
    "catalog_models",
    "format_ip",
    "models_for_vendor",
    "notified_2012_vendors",
    "resolve_divisor",
    "vendor",
    "vendors_in_category",
]
