"""The device catalog: every product line, calibrated to the paper's figures.

Populations are specified at *paper scale* (absolute host counts read off
Figures 1 and 3–10) and divided by the study's ``scale`` factor at build
time.  Each entry records, in its comments, which figure/table it encodes.

Calibration sources:

- Figure 3  — Juniper: totals 40–80 k, vulnerable rising to ~30 k, Heartbleed
  drop of ~30 k total / ~9 k vulnerable, 169 k IPs over the study.
- Figure 4  — Innominate: total rising, vulnerable flat (~300; 561 IPs ever).
- Figure 5  — IBM: vulnerable-only series, declining from ~2 k, Heartbleed
  drop (1,728 IPs ever; 3,229 certificates).
- Figure 6  — Cisco: vulnerable rising through 2014 to ~8–10 k, then decline.
- Figure 7  — Cisco model EOL dates (RV082, RV120W, RV220W, RV180/180W,
  SA520/540).
- Figure 8  — HP iLO: totals ~100 k, vulnerable peaking ~30 in 2012,
  Heartbleed drop in totals.
- Figure 9  — ten no-response vendors.
- Figure 10 — newly vulnerable vendors (ADTRAN, D-Link, Huawei, Sangfor,
  Schmid Telecom).
- Section 3.3 — Fritz!Box (20,717 certs), Siemens (~15 k certs, 2,441 with
  an IBM modulus), Dell/Xerox shared primes (416 certs), McAfee SnapGear.
"""

from __future__ import annotations

from repro.devices.models import (
    DeviceModel,
    HeartbleedBehavior,
    KeygenKind,
    KeygenSpec,
    PopulationSchedule,
    SubjectStyle,
)
from repro.timeline import HEARTBLEED, STUDY_END, STUDY_START, Month

__all__ = ["DEVICE_CATALOG", "catalog_models", "models_for_vendor"]


def _m(y: int, m: int) -> Month:
    return Month(y, m)


_PRE_HEARTBLEED = HEARTBLEED + (-1)


DEVICE_CATALOG: tuple[DeviceModel, ...] = (
    # ------------------------------------------------------------------ #
    # Figure 3: Juniper SRX branch devices.  Public advisory April 2012,  #
    # yet the vulnerable population kept rising until Heartbleed, when    #
    # ~30 k fingerprinted hosts (including >9 k vulnerable) went offline. #
    # Not OpenSSL (Table 5).  ScreenOS/SRX devices only support RSA kex   #
    # in our model (74 % of vulnerable hosts support only RSA kex).       #
    # ------------------------------------------------------------------ #
    DeviceModel(
        model_id="juniper-srx",
        vendor="Juniper",
        subject_style=SubjectStyle.SYSTEM_GENERATED,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="juniper-srx",
            boot_states=9_000,
            openssl_style=False,
            vulnerable_until=_m(2014, 6),
            vulnerable_fraction=0.48,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 30_000),
                (_m(2011, 10), 45_000),
                (_m(2012, 6), 58_000),
                (_PRE_HEARTBLEED, 80_000),
                (HEARTBLEED, 50_000),
                (_m(2015, 7), 46_000),
                (STUDY_END, 44_000),
            ),
            cert_regen_rate=0.022,
        ),
        heartbleed=HeartbleedBehavior(
            offline_fraction=0.375, vulnerable_bias=1.6, patch_fraction=0.02
        ),
        supports_only_rsa_kex=True,
    ),
    # ------------------------------------------------------------------ #
    # Figure 4: Innominate mGuard industrial appliances.  Advisory June   #
    # 2012; vulnerable population stayed roughly fixed for four years     #
    # while the total population rose (new devices fixed, old unpatched). #
    # ------------------------------------------------------------------ #
    DeviceModel(
        model_id="innominate-mguard",
        vendor="Innominate",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="innominate-mguard",
            boot_states=60,
            openssl_style=True,
            vulnerable_until=_m(2012, 7),
            vulnerable_fraction=0.75,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 450),
                (_m(2012, 6), 600),
                (_m(2014, 6), 900),
                (STUDY_END, 1_300),
            ),
            churn_rate=0.002,
            cert_regen_rate=0.004,
        ),
    ),
    # ------------------------------------------------------------------ #
    # Figure 5: IBM Remote Supervisor Adapter II / BladeCenter MM.        #
    # Nine possible primes, 36 possible moduli; population declining from #
    # 2012 and a marked Heartbleed drop.  Certificates carry the owning   #
    # organisation's names, so only the prime clique fingerprints them.   #
    # ------------------------------------------------------------------ #
    DeviceModel(
        model_id="ibm-rsa2",
        vendor="IBM",
        subject_style=SubjectStyle.OWNER_NAMED,
        keygen=KeygenSpec(
            kind=KeygenKind.IBM_NINE_PRIME,
            profile_id="ibm-rsa2",
            openssl_style=True,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 1_450),
                (_m(2012, 6), 1_100),
                (_PRE_HEARTBLEED, 800),
                (HEARTBLEED, 480),
                (STUDY_END, 320),
            ),
            churn_rate=0.001,
            ip_churn_rate=0.012,
            cert_regen_rate=0.0,
        ),
        heartbleed=HeartbleedBehavior(offline_fraction=0.4, vulnerable_bias=1.0),
    ),
    # ------------------------------------------------------------------ #
    # Section 3.3.2: Siemens Building Automation.  ~15 k certificates;    #
    # 2,441 served a single modulus from the IBM clique beginning in      #
    # February 2013; 18 vulnerable certificates were non-IBM.             #
    # ------------------------------------------------------------------ #
    DeviceModel(
        model_id="siemens-building-ibm",
        vendor="Siemens",
        subject_style=SubjectStyle.SIEMENS_BUILDING,
        keygen=KeygenSpec(
            kind=KeygenKind.FIXED_IBM_MODULUS,
            profile_id="ibm-rsa2",  # shares the IBM prime clique
            vulnerable_from=_m(2013, 2),
        ),
        schedule=PopulationSchedule(
            points=(
                (_m(2013, 2), 400),
                (_m(2014, 6), 900),
                (STUDY_END, 1_100),
            ),
            churn_rate=0.002,
            cert_regen_rate=0.0,
        ),
    ),
    DeviceModel(
        model_id="siemens-building",
        vendor="Siemens",
        subject_style=SubjectStyle.SIEMENS_BUILDING,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="siemens-building",
            boot_states=12_000,
            openssl_style=False,
            vulnerable_fraction=0.004,  # 18 of ~15,000 certificates
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 6_000),
                (_m(2013, 6), 10_000),
                (STUDY_END, 13_000),
            ),
            churn_rate=0.002,
        ),
    ),
    # ------------------------------------------------------------------ #
    # Figures 6 and 7: Cisco small-business routers and security          #
    # appliances.  Model names appear in the certificate OU; EOL          #
    # announcements mark the start of population declines.  Private      #
    # response, no advisory; vulnerable counts rose through 2014.         #
    # ------------------------------------------------------------------ #
    DeviceModel(
        model_id="cisco-rv082",
        vendor="Cisco",
        display_model="RV082",
        subject_style=SubjectStyle.MODEL_IN_OU,
        keygen=KeygenSpec(
            kind=KeygenKind.HEALTHY,  # the one Figure 7 model with no
            profile_id="cisco-rv082",  # identified vulnerable hosts
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 40_000),
                (_m(2012, 9), 52_000),  # EOL announced
                (STUDY_END, 24_000),
            ),
        ),
        eol=_m(2012, 9),
        end_of_sale=_m(2013, 3),
    ),
    DeviceModel(
        model_id="cisco-rv120w",
        vendor="Cisco",
        display_model="RV120W",
        subject_style=SubjectStyle.MODEL_IN_OU,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="cisco-rv",
            boot_states=900,
            openssl_style=True,
            vulnerable_until=_m(2014, 9),
            vulnerable_fraction=0.08,
        ),
        schedule=PopulationSchedule(
            points=(
                (_m(2011, 3), 0),
                (_m(2014, 2), 36_000),  # EOL announced early 2014
                (STUDY_END, 22_000),
            ),
        ),
        eol=_m(2014, 2),
        end_of_sale=_m(2014, 8),
    ),
    DeviceModel(
        model_id="cisco-rv220w",
        vendor="Cisco",
        display_model="RV220W",
        subject_style=SubjectStyle.MODEL_IN_OU,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="cisco-rv",
            boot_states=900,
            openssl_style=True,
            vulnerable_until=_m(2014, 9),
            vulnerable_fraction=0.10,
        ),
        schedule=PopulationSchedule(
            points=(
                (_m(2011, 1), 0),
                (_m(2015, 1), 30_000),  # EOL announced 2015
                (STUDY_END, 25_000),
            ),
        ),
        eol=_m(2015, 1),
        end_of_sale=_m(2015, 7),
    ),
    DeviceModel(
        model_id="cisco-rv180",
        vendor="Cisco",
        display_model="RV180/180W",
        subject_style=SubjectStyle.MODEL_IN_OU,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="cisco-rv",
            boot_states=900,
            openssl_style=True,
            vulnerable_until=_m(2014, 12),
            vulnerable_fraction=0.08,
        ),
        schedule=PopulationSchedule(
            points=(
                (_m(2012, 1), 0),
                (_m(2015, 9), 26_000),  # EOL announced late 2015
                (STUDY_END, 24_000),
            ),
        ),
        eol=_m(2015, 9),
        end_of_sale=_m(2016, 3),
    ),
    DeviceModel(
        model_id="cisco-sa520",
        vendor="Cisco",
        display_model="SA520/540",
        subject_style=SubjectStyle.MODEL_IN_OU,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="cisco-sa",
            boot_states=500,
            openssl_style=True,
            vulnerable_until=_m(2013, 6),
            vulnerable_fraction=0.11,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 14_000),
                (_m(2013, 1), 20_000),  # EOL announced 2013
                (STUDY_END, 9_000),
            ),
        ),
        eol=_m(2013, 1),
        end_of_sale=_m(2013, 7),
    ),
    # ------------------------------------------------------------------ #
    # Figure 8: HP Integrated Lights-Out cards.  Vulnerable count peaked  #
    # in 2012 (~30) and declined steadily; totals dropped after           #
    # Heartbleed (iLO cards crashed when scanned).                        #
    # ------------------------------------------------------------------ #
    DeviceModel(
        model_id="hp-ilo",
        vendor="HP",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="hp-ilo",
            boot_states=25,
            openssl_style=True,
            vulnerable_until=_m(2012, 3),
            vulnerable_fraction=0.0006,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 60_000),
                (_m(2012, 4), 95_000),
                (_PRE_HEARTBLEED, 110_000),
                (HEARTBLEED, 88_000),
                (STUDY_END, 96_000),
            ),
        ),
        heartbleed=HeartbleedBehavior(offline_fraction=0.2, vulnerable_bias=1.4),
    ),
    # ------------------------------------------------------------------ #
    # Figure 9: the ten vendors that never responded.                     #
    # ------------------------------------------------------------------ #
    DeviceModel(
        model_id="thomson-cablemodem",
        vendor="Thomson",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="thomson-cablemodem",
            boot_states=1_500,
            openssl_style=True,
            vulnerable_until=_m(2012, 1),
            vulnerable_fraction=0.0015,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 160_000),
                (_m(2012, 2), 130_000),
                (_m(2014, 2), 70_000),
                (STUDY_END, 30_000),
            ),
            churn_rate=0.004,
        ),
    ),
    DeviceModel(
        model_id="avm-fritzbox",
        vendor="Fritz!Box",
        subject_style=SubjectStyle.FRITZ_DOMAIN,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="avm-fritzbox",
            boot_states=2_800,
            openssl_style=True,
            vulnerable_until=_m(2014, 2),  # fixed for new devices in 2014
            vulnerable_fraction=0.045,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 220_000),
                (_m(2013, 6), 420_000),
                (STUDY_END, 520_000),
            ),
            churn_rate=0.016,  # consumer DSL modems are replaced often
        ),
    ),
    DeviceModel(
        model_id="linksys-router",
        vendor="Linksys",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="linksys-router",
            boot_states=500,
            openssl_style=True,
            vulnerable_until=_m(2012, 6),
            vulnerable_fraction=0.003,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 150_000),
                (_m(2012, 6), 120_000),
                (STUDY_END, 45_000),
            ),
        ),
    ),
    DeviceModel(
        model_id="fortinet-fortigate",
        vendor="Fortinet",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="fortinet-fortigate",
            boot_states=40,
            openssl_style=False,
            vulnerable_until=_m(2012, 9),
            vulnerable_fraction=0.0003,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 60_000),
                (_m(2013, 6), 140_000),
                (STUDY_END, 190_000),
            ),
        ),
    ),
    DeviceModel(
        model_id="zyxel-zywall",
        vendor="ZyXEL",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="zyxel-zywall",
            boot_states=2_200,
            openssl_style=False,
            vulnerable_until=_m(2013, 6),
            vulnerable_fraction=0.06,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 70_000),
                (_m(2012, 10), 62_000),
                (STUDY_END, 28_000),
            ),
            churn_rate=0.012,
        ),
        supports_only_rsa_kex=True,
    ),
    DeviceModel(
        model_id="dell-imaging",
        vendor="Dell",
        subject_style=SubjectStyle.DELL_IMAGING,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            # Same pool as Xerox: the printers are manufactured by Fuji
            # Xerox, and shared primes between the two brands are exactly
            # how the paper identified the partnership (416 certificates).
            profile_id="xerox-fuji-imaging",
            boot_states=220,
            openssl_style=True,
            vulnerable_until=_m(2013, 1),
            vulnerable_fraction=0.005,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 32_000),
                (_m(2013, 1), 26_000),
                (STUDY_END, 12_000),
            ),
        ),
    ),
    DeviceModel(
        model_id="kronos-intouch",
        vendor="Kronos",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="kronos-intouch",
            boot_states=350,
            openssl_style=False,
            vulnerable_until=_m(2013, 6),
            vulnerable_fraction=0.095,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 6_500),
                (_m(2013, 6), 5_500),
                (STUDY_END, 3_000),
            ),
        ),
    ),
    DeviceModel(
        model_id="xerox-printer",
        vendor="Xerox",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="xerox-fuji-imaging",  # shared with Dell Imaging
            boot_states=220,
            openssl_style=False,
            vulnerable_until=_m(2013, 6),
            vulnerable_fraction=0.10,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 7_000),
                (_m(2013, 6), 5_800),
                (STUDY_END, 3_200),
            ),
        ),
    ),
    DeviceModel(
        model_id="mcafee-snapgear",
        vendor="McAfee",
        subject_style=SubjectStyle.DEFAULT_NAMES,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="mcafee-snapgear",
            boot_states=250,
            openssl_style=True,
            vulnerable_until=_m(2013, 1),
            vulnerable_fraction=0.08,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 5_500),
                (_m(2012, 6), 4_800),
                (STUDY_END, 1_800),
            ),
        ),
        http_content="SnapGear Management Console",
    ),
    DeviceModel(
        model_id="tplink-router",
        vendor="TP-LINK",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="tplink-router",
            boot_states=1_500,
            openssl_style=True,
            vulnerable_until=_m(2014, 6),
            vulnerable_fraction=0.9,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 5_800),
                (_m(2013, 2), 5_200),
                (STUDY_END, 2_600),
            ),
            cert_regen_rate=0.010,
        ),
        supports_only_rsa_kex=True,
    ),
    # ------------------------------------------------------------------ #
    # Figure 10: vendors with newly vulnerable products after 2012.       #
    # ------------------------------------------------------------------ #
    DeviceModel(
        model_id="adtran-netvanta",
        vendor="ADTRAN",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="adtran-netvanta",
            boot_states=40,
            openssl_style=True,
            vulnerable_from=_m(2015, 2),  # newly introduced in 2015
            vulnerable_fraction=0.012,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 45_000),
                (_m(2015, 1), 70_000),
                (STUDY_END, 78_000),
            ),
        ),
    ),
    DeviceModel(
        model_id="dlink-router",
        vendor="D-Link",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="dlink-router",
            boot_states=3_500,
            openssl_style=True,
            vulnerable_from=_m(2013, 9),  # small in 2012, then dramatic
            vulnerable_fraction=0.14,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 90_000),
                (_m(2013, 9), 120_000),
                (STUDY_END, 180_000),
            ),
            churn_rate=0.020,
        ),
        supports_only_rsa_kex=True,
    ),
    DeviceModel(
        model_id="dlink-router-2012",
        vendor="D-Link",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="dlink-router",
            boot_states=60,
            openssl_style=True,
            vulnerable_until=_m(2012, 6),
            vulnerable_fraction=0.004,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 25_000),
                (_m(2013, 9), 15_000),
                (STUDY_END, 5_000),
            ),
        ),
    ),
    DeviceModel(
        model_id="huawei-gateway",
        vendor="Huawei",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="huawei-gateway",
            boot_states=400,
            openssl_style=False,
            vulnerable_from=_m(2015, 4),  # first vulnerable hosts 4/2015
            vulnerable_fraction=0.10,
        ),
        schedule=PopulationSchedule(
            points=(
                (_m(2013, 1), 8_000),
                (_m(2015, 4), 30_000),
                (STUDY_END, 55_000),
            ),
            churn_rate=0.016,
        ),
        supports_only_rsa_kex=True,
    ),
    DeviceModel(
        model_id="sangfor-vpn",
        vendor="Sangfor",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="sangfor-vpn",
            boot_states=8,
            openssl_style=True,
            vulnerable_from=_m(2015, 1),
            vulnerable_fraction=0.0008,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 8_000),
                (_m(2014, 6), 26_000),
                (STUDY_END, 38_000),
            ),
        ),
    ),
    DeviceModel(
        model_id="schmid-watson",
        vendor="Schmid Telecom",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME,
            profile_id="schmid-watson",
            boot_states=120,
            openssl_style=True,
            vulnerable_from=_m(2014, 6),
            vulnerable_fraction=0.80,
        ),
        schedule=PopulationSchedule(
            points=(
                (STUDY_START, 500),
                (_m(2014, 10), 1_100),
                (STUDY_END, 1_400),
            ),
            churn_rate=0.012,
        ),
    ),
    # ------------------------------------------------------------------ #
    # Smaller fingerprinted vendors (Table 5 completeness).  Each gets a  #
    # modest population with a modest vulnerable share.                   #
    # ------------------------------------------------------------------ #
    DeviceModel(
        model_id="2wire-gateway",
        vendor="2-Wire",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME, profile_id="2wire-gateway",
            boot_states=120, openssl_style=True,
            vulnerable_until=_m(2013, 1), vulnerable_fraction=0.04,
        ),
        schedule=PopulationSchedule(
            points=((STUDY_START, 9_000), (STUDY_END, 4_000),),
        ),
    ),
    DeviceModel(
        model_id="conel-router",
        vendor="Conel s.r.o.",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME, profile_id="conel-router",
            boot_states=50, openssl_style=True,
            vulnerable_until=_m(2013, 6), vulnerable_fraction=0.30,
        ),
        schedule=PopulationSchedule(
            points=((STUDY_START, 900), (STUDY_END, 1_400),),
        ),
    ),
    DeviceModel(
        model_id="draytek-vigor",
        vendor="DrayTek",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME, profile_id="draytek-vigor",
            boot_states=200, openssl_style=False,
            vulnerable_until=_m(2013, 6), vulnerable_fraction=0.06,
        ),
        schedule=PopulationSchedule(
            points=((STUDY_START, 12_000), (STUDY_END, 9_000),),
        ),
    ),
    DeviceModel(
        model_id="mitrastar-gateway",
        vendor="MitraStar",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME, profile_id="mitrastar-gateway",
            boot_states=150, openssl_style=True,
            vulnerable_until=_m(2014, 1), vulnerable_fraction=0.12,
        ),
        schedule=PopulationSchedule(
            points=((_m(2011, 6), 0), (_m(2014, 1), 6_000), (STUDY_END, 7_000),),
        ),
    ),
    DeviceModel(
        model_id="netgear-prosafe",
        vendor="Netgear",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME, profile_id="netgear-prosafe",
            boot_states=400, openssl_style=True,
            vulnerable_until=_m(2013, 1), vulnerable_fraction=0.015,
        ),
        schedule=PopulationSchedule(
            points=((STUDY_START, 40_000), (STUDY_END, 25_000),),
        ),
    ),
    DeviceModel(
        model_id="nti-monitor",
        vendor="NTI",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME, profile_id="nti-monitor",
            boot_states=30, openssl_style=True,
            vulnerable_until=_m(2013, 1), vulnerable_fraction=0.25,
        ),
        schedule=PopulationSchedule(
            points=((STUDY_START, 700), (STUDY_END, 500),),
        ),
    ),
    DeviceModel(
        model_id="allegro-rompager",
        vendor="Allegro",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME, profile_id="allegro-rompager",
            boot_states=90, openssl_style=True,
            vulnerable_until=_m(2013, 1), vulnerable_fraction=0.06,
        ),
        schedule=PopulationSchedule(
            points=((STUDY_START, 5_000), (STUDY_END, 2_500),),
        ),
    ),
    DeviceModel(
        model_id="bridgewave-radio",
        vendor="BridgeWave",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME, profile_id="bridgewave-radio",
            boot_states=25, openssl_style=True,
            vulnerable_until=_m(2013, 1), vulnerable_fraction=0.35,
        ),
        schedule=PopulationSchedule(
            points=((STUDY_START, 400), (STUDY_END, 250),),
        ),
    ),
    DeviceModel(
        model_id="servertech-pdu",
        vendor="ServerTech",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME, profile_id="servertech-pdu",
            boot_states=60, openssl_style=True,
            vulnerable_until=_m(2013, 6), vulnerable_fraction=0.18,
        ),
        schedule=PopulationSchedule(
            points=((STUDY_START, 1_500), (STUDY_END, 1_000),),
        ),
    ),
    DeviceModel(
        model_id="skystream-encoder",
        vendor="SkyStream Networks",
        subject_style=SubjectStyle.VENDOR_IN_O,
        keygen=KeygenSpec(
            kind=KeygenKind.SHARED_PRIME, profile_id="skystream-encoder",
            boot_states=20, openssl_style=True,
            vulnerable_until=_m(2012, 6), vulnerable_fraction=0.30,
        ),
        schedule=PopulationSchedule(
            points=((STUDY_START, 350), (STUDY_END, 150),),
        ),
    ),
)


def catalog_models() -> tuple[DeviceModel, ...]:
    """The full calibrated catalog."""
    return DEVICE_CATALOG


def models_for_vendor(vendor_name: str) -> list[DeviceModel]:
    """All catalog models belonging to one vendor."""
    return [m for m in DEVICE_CATALOG if m.vendor == vendor_name]
