"""Certificate construction per vendor subject convention (Section 3.3.1).

Builds the distinguished names and subject alternative names the paper's
fingerprint rules key on — Juniper's ``CN=system generated``, Cisco's model
name in OU, Fritz!Box's myfritz.net names and fritz.box SANs, McAfee
SnapGear's all-default fields, IBM cards carrying the *owner's* organisation
instead of IBM's, and so on.
"""

from __future__ import annotations

import random
from datetime import date, timedelta

from repro.crypto.certs import (
    Certificate,
    DistinguishedName,
    issue_certificate,
    self_signed_certificate,
)
from repro.crypto.rsa import RsaKeyPair, RsaPrivateKey
from repro.devices.models import DeviceModel, SubjectStyle
from repro.timeline import Month

__all__ = ["build_certificate", "format_ip", "OWNER_ORGANISATIONS"]

#: Plausible owner organisations for devices whose certificates carry the
#: customer's identity (IBM RSA-II cards, Section 4.1: "Nearly all
#: certificates contained non-fingerprintable identifying information from
#: the organizations themselves").
OWNER_ORGANISATIONS = (
    "Acme Manufacturing", "Contoso Hosting", "Initech Services",
    "Globex Industrial", "Umbrella Logistics", "Stark Fabrication",
    "Wayne Facilities", "Tyrell Data Centers", "Aperture Labs",
    "Hooli Infrastructure", "Vandelay Industries", "Wonka Plants",
)

_FRITZ_SANS = (
    "fritz.fonwlan.box",
    "fritz.box",
    "www.fritz.box",
    "myfritz.box",
    "www.myfritz.box",
)


def format_ip(ip: int) -> str:
    """Render a 32-bit integer as dotted-quad octets."""
    return ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _subject_for(
    model: DeviceModel, ip: int, rng: random.Random
) -> tuple[DistinguishedName, tuple[str, ...]]:
    """Build (subject DN, SANs) following the model's convention."""
    style = model.subject_style
    if style is SubjectStyle.SYSTEM_GENERATED:
        # Every Juniper certificate: "CN=system generated".
        return DistinguishedName(CN="system generated"), ()
    if style is SubjectStyle.MODEL_IN_OU:
        return (
            DistinguishedName(
                C="US",
                O=model.vendor,
                OU=model.display_model or model.model_id,
                CN=f"{model.display_model or model.model_id}-{rng.randrange(10**8):08d}",
            ),
            (),
        )
    if style is SubjectStyle.VENDOR_IN_O:
        return (
            DistinguishedName(
                O=model.vendor,
                OU=model.display_model or "",
                CN=f"device-{rng.randrange(10**10):010d}",
            ),
            (),
        )
    if style is SubjectStyle.DEFAULT_NAMES:
        return (
            DistinguishedName(
                O="Default Organization",
                OU="Default Unit",
                CN="Default Common Name",
            ),
            (),
        )
    if style is SubjectStyle.FRITZ_DOMAIN:
        # A third of Fritz!Box certificates expose only the IP address in the
        # subject; these are only attributable via shared-prime extrapolation.
        roll = rng.random()
        if roll < 0.35:
            return DistinguishedName(CN=format_ip(ip)), ()
        if roll < 0.70:
            name = f"{rng.getrandbits(40):010x}.myfritz.net"
            return DistinguishedName(CN=name), ()
        return DistinguishedName(CN="fritz.box"), tuple(_FRITZ_SANS)
    if style is SubjectStyle.IP_ONLY:
        return DistinguishedName(CN=format_ip(ip)), ()
    if style is SubjectStyle.OWNER_NAMED:
        org = rng.choice(OWNER_ORGANISATIONS)
        return (
            DistinguishedName(
                C="US", O=org, OU="Server Management",
                CN=f"mgmt-{rng.randrange(10**6):06d}.{org.split()[0].lower()}.example",
            ),
            (),
        )
    if style is SubjectStyle.SIEMENS_BUILDING:
        return (
            DistinguishedName(
                O="Siemens Building Technologies",
                OU="Building Automation",
                CN=f"bacnet-{rng.randrange(10**6):06d}",
            ),
            (),
        )
    if style is SubjectStyle.WEB_SERVER:
        domain = f"www.site-{rng.getrandbits(36):09x}.example.com"
        return DistinguishedName(C="US", O="", CN=domain), (domain,)
    if style is SubjectStyle.DELL_IMAGING:
        return (
            DistinguishedName(
                C="US", O="Dell Inc.", OU="Dell Imaging Group",
                CN=f"printer-{rng.randrange(10**8):08d}",
            ),
            (),
        )
    raise ValueError(f"unhandled subject style: {style!r}")


def build_certificate(
    model: DeviceModel,
    keypair: RsaKeyPair,
    ip: int,
    month: Month,
    rng: random.Random,
    validity_years: int = 10,
    issuer: tuple[Certificate, RsaPrivateKey] | None = None,
) -> Certificate:
    """Create the device certificate a scan would collect.

    Device certificates are generated at first boot (``month``) and typically
    never touched again, so the validity window starts then and runs for
    many years — matching the long-lived default certificates in the corpus.
    They are self-signed unless an ``issuer`` (CA certificate and key) is
    supplied, which only the background web ecosystem uses.
    """
    subject, sans = _subject_for(model, ip, rng)
    not_before = month.first_day() + timedelta(days=rng.randrange(28))
    not_after = date(
        min(not_before.year + validity_years, 9999),
        not_before.month,
        min(not_before.day, 28),
    )
    if issuer is not None:
        ca_cert, ca_key = issuer
        return issue_certificate(
            subject=subject,
            public_key=keypair.public,
            issuer_certificate=ca_cert,
            issuer_key=ca_key,
            serial=rng.getrandbits(64),
            not_before=not_before,
            not_after=not_after,
            subject_alt_names=sans,
        )
    return self_signed_certificate(
        subject=subject,
        keypair=keypair,
        serial=rng.getrandbits(64),
        not_before=not_before,
        not_after=not_after,
        subject_alt_names=sans,
    )
