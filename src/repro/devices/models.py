"""Device-model specifications: keygen behaviour, certificates, population.

A :class:`DeviceModel` is the unit of simulation: one product line with a
characteristic certificate subject convention, a key-generation behaviour
(healthy or one of the flaws), and a population trajectory over the study
window.  The concrete catalog calibrated to the paper's figures lives in
:mod:`repro.devices.catalog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.timeline import Month

__all__ = [
    "SubjectStyle",
    "KeygenKind",
    "KeygenSpec",
    "HeartbleedBehavior",
    "PopulationSchedule",
    "DeviceModel",
]


class SubjectStyle(Enum):
    """Certificate subject conventions observed in the wild (Section 3.3.1)."""

    #: "O=<vendor>" in the distinguished name (HP, Xerox, TP-LINK, Conel).
    VENDOR_IN_O = "vendor-in-o"
    #: Vendor in O and the model name in OU (Cisco small-business lines).
    MODEL_IN_OU = "model-in-ou"
    #: The Juniper convention: every certificate has CN="system generated".
    SYSTEM_GENERATED = "system-generated"
    #: All-default fields (McAfee SnapGear); vendor identified from the
    #: HTTPS content instead.
    DEFAULT_NAMES = "default-names"
    #: Fritz!Box: CN under myfritz.net plus fritz.box-family SANs.
    FRITZ_DOMAIN = "fritz-domain"
    #: Subject carries only the host's IP address in octets.
    IP_ONLY = "ip-only"
    #: Owner-supplied organisation names (IBM RSA-II cards: the customer's
    #: own identity, not IBM's — fingerprintable only via the prime clique).
    OWNER_NAMED = "owner-named"
    #: Siemens Building Automation interfaces (vendor named in subject).
    SIEMENS_BUILDING = "siemens-building"
    #: "OU=Dell Imaging Group" printers (share primes with Xerox).
    DELL_IMAGING = "dell-imaging"
    #: Ordinary web servers (the background HTTPS ecosystem).
    WEB_SERVER = "web-server"


class KeygenKind(Enum):
    """Which key-generation behaviour a model exhibits."""

    HEALTHY = "healthy"
    SHARED_PRIME = "shared-prime"
    IBM_NINE_PRIME = "ibm-nine-prime"
    #: A single fixed modulus drawn from the IBM clique, shared by every
    #: affected unit (the Siemens overlap of Section 3.3.2).
    FIXED_IBM_MODULUS = "fixed-ibm-modulus"


@dataclass(frozen=True, slots=True)
class KeygenSpec:
    """Key-generation parameters for one model.

    Attributes:
        kind: behaviour class.
        profile_id: namespace for derived primes.  Models that share
            manufacturing (Dell Imaging / Xerox) use the *same* profile_id so
            their keys draw from one prime pool — which is exactly what the
            shared-prime extrapolation fingerprint detects.
        boot_states: size of the boot-state space at paper scale (scaled
            down with the population); smaller means more shared primes.
        openssl_style: whether primes follow the OpenSSL rejection rule
            (drives Table 5).
        vulnerable_from: first month in which *newly deployed* units carry
            the flawed firmware (None = from the beginning of the study).
        vulnerable_until: last month of flawed deployments (None = flawed
            forever; the paper found several vendors fixed new devices
            silently, which a finite value models).
        vulnerable_fraction: probability that any single key generation on
            flawed firmware produces a weak key (generations that happened
            to gather entropy are healthy).  Drawn independently at every
            deploy *and* regeneration, which is what produces the
            bidirectional vulnerable/non-vulnerable host transitions of
            Section 4.1.
    """

    kind: KeygenKind
    profile_id: str
    boot_states: int = 1000
    openssl_style: bool = True
    vulnerable_from: Month | None = None
    vulnerable_until: Month | None = None
    vulnerable_fraction: float = 1.0

    def window_contains(self, month: Month) -> bool:
        """True when deployments in ``month`` fall in the flawed window."""
        if self.kind is KeygenKind.HEALTHY:
            return False
        if self.vulnerable_from is not None and month < self.vulnerable_from:
            return False
        if self.vulnerable_until is not None and month > self.vulnerable_until:
            return False
        return True


@dataclass(frozen=True, slots=True)
class HeartbleedBehavior:
    """What a model's fleet did in April 2014 (Section 4.1).

    Attributes:
        offline_fraction: fraction of the fleet taken offline (crashed under
            scanning, firewalled, or disabled) in the Heartbleed month.
        vulnerable_bias: how much more likely a weak-keyed unit was to go
            offline than a healthy one (Juniper NetScreen and HP iLO devices
            crashed when scanned; those fleets skew old/vulnerable).
        patch_fraction: fraction of surviving weak units whose owners applied
            a patch that also regenerated the key.
    """

    offline_fraction: float = 0.0
    vulnerable_bias: float = 1.0
    patch_fraction: float = 0.0


@dataclass(frozen=True, slots=True)
class PopulationSchedule:
    """A piecewise-linear target for a model's online population.

    Attributes:
        points: ``(month, population-at-paper-scale)`` knots; the simulator
            interpolates linearly between consecutive knots and holds the
            last value.  The shapes in Figures 3–10 are encoded here.
        churn_rate: monthly fraction of units replaced by new units (drives
            certificate turnover and the growth of distinct moduli).
        ip_churn_rate: monthly fraction of units that move to a new IP
            address while keeping their certificate (the paper traced
            apparent IBM "patching" to exactly this).
        cert_regen_rate: monthly fraction of units that regenerate their
            self-signed certificate in place — on flawed firmware this draws
            a *new* boot state, producing the vulnerable/non-vulnerable
            transitions observed for Juniper.
        cert_renewal_rate: monthly fraction of units that re-issue their
            certificate *keeping the same key pair* (expiry-driven renewal).
            Renewals are why the paper's corpus holds 1.44 M vulnerable
            certificates over only 313 k vulnerable moduli.
        patch_rate: monthly fraction of weak units whose owners patch after
            the vendor's advisory (the paper measured this to be ~0).
    """

    points: tuple[tuple[Month, int], ...]
    churn_rate: float = 0.006
    ip_churn_rate: float = 0.004
    cert_regen_rate: float = 0.003
    cert_renewal_rate: float = 0.006
    patch_rate: float = 0.0

    def target(self, month: Month, scale: int) -> int:
        """Interpolated online population for ``month`` at ``1/scale``."""
        points = self.points
        if not points:
            return 0
        if month < points[0][0]:
            # The model does not exist before its first knot.
            return 0
        if month == points[0][0]:
            return round(points[0][1] / scale)
        for (m0, v0), (m1, v1) in zip(points, points[1:]):
            if m0 <= month <= m1:
                span = m1 - m0
                frac = (month - m0) / span if span else 1.0
                return round((v0 + (v1 - v0) * frac) / scale)
        return round(points[-1][1] / scale)


@dataclass(frozen=True, slots=True)
class DeviceModel:
    """One simulated product line.

    Attributes:
        model_id: unique id, e.g. ``"cisco-rv082"``.
        vendor: canonical vendor name (key into the vendor registry).
        display_model: model string placed in certificates where the vendor's
            convention includes one (Cisco's OU).
        subject_style: certificate subject convention.
        keygen: key-generation behaviour.
        schedule: population trajectory and churn behaviour.
        heartbleed: the fleet's April 2014 behaviour.
        eol: end-of-life announcement month, if any (Figure 7); the
            population schedule encodes the resulting decline, this field
            feeds the EOL-correlation analysis.
        end_of_sale: final sale date where announced.
        http_content: identifying text served over HTTPS (SnapGear console),
            used by content-based fingerprinting.
        supports_only_rsa_kex: True for devices that negotiate only RSA key
            exchange (74 % of vulnerable devices in the April 2016 scan),
            making them passively decryptable.
    """

    model_id: str
    vendor: str
    subject_style: SubjectStyle
    keygen: KeygenSpec
    schedule: PopulationSchedule
    display_model: str | None = None
    heartbleed: HeartbleedBehavior = field(default_factory=HeartbleedBehavior)
    eol: Month | None = None
    end_of_sale: Month | None = None
    http_content: str = ""
    supports_only_rsa_kex: bool = False
