"""Population dynamics: deploying, retiring, churning and patching devices.

Each :class:`ModelPopulation` walks the study timeline month by month,
tracking its model's piecewise-linear population target and applying the
behavioural events of Section 4: certificate regeneration (which on flawed
firmware redraws the boot state and produces the vulnerable/non-vulnerable
transitions seen for Juniper), IP churn (the false "patching" signal the
paper traced for IBM), owner patching (measured to be near zero), and the
April 2014 Heartbleed shock (offline fraction biased toward crashing
vulnerable fleets, plus a small patching wave).

Populations are simulated at a per-model *divisor* of paper scale, chosen by
:func:`resolve_divisor` so that large fleets stay tractable while small
vulnerable fleets retain enough units to show their shape.  All analysis
weights counts back up by the divisor, so reported series are estimates in
paper-scale units.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.certs import Certificate
from repro.crypto.rsa import RsaPrivateKey
from repro.devices.certfactory import build_certificate
from repro.devices.models import DeviceModel, KeygenKind
from repro.entropy.keygen import (
    GeneratedKey,
    HealthyProfile,
    IbmNinePrimeProfile,
    KeygenProfile,
    SharedPrimeProfile,
    WeakKeyFactory,
)
from repro.timeline import HEARTBLEED, Month

__all__ = [
    "Device",
    "DivisorLimits",
    "IpAllocator",
    "ModelPopulation",
    "resolve_divisor",
]


@dataclass(frozen=True, slots=True)
class DivisorLimits:
    """Bounds for the per-model population divisor.

    Attributes:
        device_scale: the baseline divisor (matches the background scale).
        min_total_sim: prefer at least this many simulated units at peak.
        max_total_sim: never simulate more than this many units at peak.
        min_weak_sim: prefer at least this many weak units at peak.
    """

    device_scale: int = 1000
    min_total_sim: int = 200
    max_total_sim: int = 3000
    min_weak_sim: int = 20


def resolve_divisor(model: DeviceModel, limits: DivisorLimits) -> int:
    """Choose the population divisor for one model.

    The divisor is pulled toward ``device_scale`` but clamped so the peak
    simulated population lies in ``[min_total_sim, max_total_sim]`` where
    possible, and lowered when needed to keep at least ``min_weak_sim`` weak
    units alive (small vulnerable fleets such as Innominate's ~500 devices
    would otherwise round to zero).
    """
    peak = max((v for _, v in model.schedule.points), default=0)
    if peak == 0:
        return 1
    spec = model.keygen
    if spec.kind is KeygenKind.HEALTHY:
        weak_peak = 0.0
    elif spec.kind in (KeygenKind.IBM_NINE_PRIME, KeygenKind.FIXED_IBM_MODULUS):
        weak_peak = float(peak)
    else:
        weak_peak = peak * spec.vulnerable_fraction
    lo = max(1.0, peak / limits.max_total_sim)
    hi = max(1.0, peak / limits.min_total_sim)
    if weak_peak > 0:
        want = min(float(limits.device_scale), weak_peak / limits.min_weak_sim)
    else:
        want = float(limits.device_scale)
    return max(1, round(max(lo, min(hi, want))))


class IpAllocator:
    """Allocates distinct IPv4 addresses, recycling a share of released ones.

    Recycling models real address churn: when a device disappears its address
    is eventually reassigned, which is how 350 of the 1,728 ever-vulnerable
    IBM IPs came to serve unrelated certificates (Section 4.1).
    """

    def __init__(self, rng: random.Random, reuse_probability: float = 0.3) -> None:
        self._rng = rng
        self._in_use: set[int] = set()
        self._released: list[int] = []
        self.reuse_probability = reuse_probability

    def allocate(self) -> int:
        """Return an address not currently in use."""
        if self._released and self._rng.random() < self.reuse_probability:
            ip = self._released.pop(self._rng.randrange(len(self._released)))
            self._in_use.add(ip)
            return ip
        while True:
            # Public-ish space: avoid 0.x and 10.x to taste; uniqueness is
            # what matters to the pipeline.
            ip = self._rng.randrange(0x0B000000, 0xDF000000)
            if ip not in self._in_use:
                self._in_use.add(ip)
                return ip

    def release(self, ip: int) -> None:
        """Return an address to the reuse pool."""
        self._in_use.discard(ip)
        self._released.append(ip)


@dataclass(slots=True)
class Device:
    """One simulated unit with its current key, certificate and address.

    ``weak_firmware`` records whether the unit runs a flawed firmware build
    (deployed inside the model's vulnerable window); whether its *current*
    key is actually weak is ``key.weak_by_construction``, re-drawn at every
    key generation.
    """

    device_id: int
    model: DeviceModel
    ip: int
    deployed: Month
    weak_firmware: bool
    key: GeneratedKey
    certificate: Certificate
    retired: Month | None = None
    cert_generations: int = 1


class ModelPopulation:
    """Simulates one device model's fleet over the study timeline."""

    def __init__(
        self,
        model: DeviceModel,
        divisor: int,
        factory: WeakKeyFactory,
        allocator: IpAllocator,
        rng: random.Random,
        advisory: Month | None = None,
        ca_pool: list[tuple["Certificate", "RsaPrivateKey"]] | None = None,
        ca_fraction: float = 0.0,
    ) -> None:
        self.model = model
        self.divisor = divisor
        self.factory = factory
        self.allocator = allocator
        self.rng = rng
        self.advisory = advisory
        self.ca_pool = ca_pool or []
        self.ca_fraction = ca_fraction if self.ca_pool else 0.0
        self.online: list[Device] = []
        self.retired: list[Device] = []
        #: Ground truth: every weak modulus this fleet ever served (covers
        #: keys later replaced by certificate regeneration or patching).
        self.weak_moduli_emitted: set[int] = set()
        self._next_id = 0
        self._weak_profile = self._build_weak_profile()
        self._healthy_profile = HealthyProfile(
            profile_id=f"{model.keygen.profile_id}/healthy"
        )
        self._fixed_key: GeneratedKey | None = None

    # -- profile construction -------------------------------------------

    def _build_weak_profile(self) -> KeygenProfile | None:
        spec = self.model.keygen
        if spec.kind is KeygenKind.HEALTHY:
            return None
        if spec.kind is KeygenKind.IBM_NINE_PRIME:
            return IbmNinePrimeProfile(profile_id=spec.profile_id)
        if spec.kind is KeygenKind.FIXED_IBM_MODULUS:
            # The affected units all serve one modulus from the IBM clique.
            return IbmNinePrimeProfile(profile_id=spec.profile_id)
        boot_states = max(2, spec.boot_states // self.divisor)
        return SharedPrimeProfile(
            profile_id=spec.profile_id,
            boot_states=boot_states,
            openssl_style=spec.openssl_style,
        )

    def _generate_key(self, weak: bool) -> GeneratedKey:
        spec = self.model.keygen
        if weak and spec.kind is KeygenKind.FIXED_IBM_MODULUS:
            if self._fixed_key is None:
                fixed_rng = random.Random(0)  # always picks the same pair
                assert isinstance(self._weak_profile, IbmNinePrimeProfile)
                self._fixed_key = self._weak_profile.generate(fixed_rng, self.factory)
            self.weak_moduli_emitted.add(self._fixed_key.keypair.public.n)
            return self._fixed_key
        if weak and self._weak_profile is not None:
            key = self._weak_profile.generate(self.rng, self.factory)
            self.weak_moduli_emitted.add(key.keypair.public.n)
            return key
        return self._healthy_profile.generate(self.rng, self.factory)

    # -- lifecycle -------------------------------------------------------

    def _weak_draw(self) -> bool:
        """One keygen's entropy luck: weak with the spec's probability.

        The flaw lives in the firmware, but whether a *particular* key
        generation collides depends on the entropy available at that boot —
        so the draw happens per generation, at deploy and at regeneration
        alike.  This is what makes hosts flap between vulnerable and
        non-vulnerable certificates (Section 4.1's Juniper transitions).
        """
        return self.rng.random() < self.model.keygen.vulnerable_fraction

    def _deploy(self, month: Month) -> Device:
        spec = self.model.keygen
        flawed_firmware = spec.window_contains(month)
        key = self._generate_key(flawed_firmware and self._weak_draw())
        ip = self.allocator.allocate()
        cert = build_certificate(
            self.model, key.keypair, ip, month, self.rng,
            issuer=self._pick_issuer(),
        )
        device = Device(
            device_id=self._next_id,
            model=self.model,
            ip=ip,
            deployed=month,
            weak_firmware=flawed_firmware,
            key=key,
            certificate=cert,
        )
        self._next_id += 1
        self.online.append(device)
        return device

    def _retire(self, device: Device, month: Month) -> None:
        device.retired = month
        self.allocator.release(device.ip)
        self.retired.append(device)

    def _retire_random(self, count: int, month: Month) -> None:
        count = min(count, len(self.online))
        for _ in range(count):
            index = self.rng.randrange(len(self.online))
            device = self.online.pop(index)
            self._retire(device, month)

    def _stochastic_count(self, n: int, rate: float) -> int:
        """Expected ``n * rate`` as an integer with stochastic rounding."""
        expected = n * rate
        base = int(expected)
        return base + (self.rng.random() < (expected - base))

    def _pick_issuer(self) -> tuple["Certificate", "RsaPrivateKey"] | None:
        if self.ca_pool and self.rng.random() < self.ca_fraction:
            return self.rng.choice(self.ca_pool)
        return None

    def _regenerate(self, device: Device, month: Month, heal: bool = False) -> None:
        if heal:
            device.weak_firmware = False
        device.key = self._generate_key(device.weak_firmware and self._weak_draw())
        device.certificate = build_certificate(
            device.model, device.key.keypair, device.ip, month, self.rng,
            issuer=self._pick_issuer(),
        )
        device.cert_generations += 1

    # -- monthly step ----------------------------------------------------

    def step(self, month: Month) -> None:
        """Advance the fleet one month."""
        if month == HEARTBLEED:
            self._apply_heartbleed(month)
        schedule = self.model.schedule
        target = schedule.target(month, self.divisor)
        delta = target - len(self.online)
        if delta > 0:
            for _ in range(delta):
                self._deploy(month)
        elif delta < 0:
            self._retire_random(-delta, month)
        # Natural replacement churn: old units leave, new units arrive.
        churn = self._stochastic_count(len(self.online), schedule.churn_rate)
        self._retire_random(churn, month)
        for _ in range(churn):
            self._deploy(month)
        # IP churn: same device and certificate, new address.
        for device in self.online:
            if self.rng.random() < schedule.ip_churn_rate:
                self.allocator.release(device.ip)
                device.ip = self.allocator.allocate()
        # In-place certificate regeneration (reboots, factory resets).
        if schedule.cert_regen_rate > 0:
            for device in self.online:
                if self.rng.random() < schedule.cert_regen_rate:
                    self._regenerate(device, month)
        # Certificate renewal: a fresh certificate around the same key pair.
        if schedule.cert_renewal_rate > 0:
            for device in self.online:
                if self.rng.random() < schedule.cert_renewal_rate:
                    device.certificate = build_certificate(
                        device.model, device.key.keypair, device.ip, month,
                        self.rng, issuer=self._pick_issuer(),
                    )
                    device.cert_generations += 1
        # Owner patching, only meaningful once an advisory exists.
        if (
            schedule.patch_rate > 0
            and self.advisory is not None
            and month >= self.advisory
        ):
            for device in self.online:
                if device.weak_firmware and self.rng.random() < schedule.patch_rate:
                    self._regenerate(device, month, heal=True)

    def _apply_heartbleed(self, month: Month) -> None:
        """The April 2014 shock: offline wave biased to weak units, patching."""
        behavior = self.model.heartbleed
        if behavior.offline_fraction <= 0 and behavior.patch_fraction <= 0:
            return
        weak_count = sum(1 for d in self.online if d.key.weak_by_construction)
        total = len(self.online)
        if total == 0:
            return
        weak_share = weak_count / total
        bias = behavior.vulnerable_bias
        denom = (1 - weak_share) + bias * weak_share
        base_prob = behavior.offline_fraction / denom if denom else 0.0
        survivors: list[Device] = []
        for device in self.online:
            prob = min(
                1.0,
                base_prob * (bias if device.key.weak_by_construction else 1.0),
            )
            if self.rng.random() < prob:
                self._retire(device, month)
            else:
                survivors.append(device)
        self.online = survivors
        if behavior.patch_fraction > 0:
            for device in self.online:
                if device.weak_firmware and self.rng.random() < behavior.patch_fraction:
                    self._regenerate(device, month, heal=True)

    # -- statistics ------------------------------------------------------

    def online_count(self) -> int:
        """Simulated units currently online."""
        return len(self.online)

    def weak_online_count(self) -> int:
        """Simulated units currently serving a weak key."""
        return sum(1 for d in self.online if d.key.weak_by_construction)

    def devices_ever(self) -> list[Device]:
        """All units ever deployed (online plus retired)."""
        return self.online + self.retired
