"""The vendor registry: disclosure responses, advisories, and classifications.

Encodes the paper's vendor-level ground truth:

- Table 2 — the 37 vendors notified about weak TLS/SSH RSA keys in
  February–March 2012 and their response category.  The published table's
  column assignment is only partially recoverable from the text layout; the
  assignments below are exact wherever the paper's body names the vendor
  (Sections 2.5, 4.1–4.3) and marked ``reconstructed=True`` otherwise.
- Table 5 — which vendors' factored keys satisfy the OpenSSL prime
  fingerprint.
- Section 4 — advisory dates, notification dates, and the vendors newly
  notified in May 2016.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.timeline import Month

__all__ = [
    "ResponseCategory",
    "Vendor",
    "VENDORS",
    "vendor",
    "vendors_in_category",
    "notified_2012_vendors",
]


class ResponseCategory(Enum):
    """How a vendor responded to the 2012 vulnerability notification."""

    PUBLIC_ADVISORY = "public advisory"
    PRIVATE_RESPONSE = "private response"
    AUTO_RESPONSE = "auto-response"
    NO_RESPONSE = "no response"
    #: Vendors first notified during the 2016 follow-up (Section 4.4).
    NOTIFIED_2016 = "notified 2016"
    #: Identified only by fingerprinting; never notified.
    NOT_NOTIFIED = "not notified"


@dataclass(frozen=True, slots=True)
class Vendor:
    """One vendor's disclosure-process ground truth.

    Attributes:
        name: canonical vendor name used by the fingerprinting layer.
        response: response category (Table 2 / Section 4.4).
        uses_openssl: Table 5 classification of the vendor's *vulnerable*
            implementation (None when no factored keys attribute to it).
        notified: month of first notification, if any.
        advisory: month the vendor published a security advisory, if any.
        reconstructed: True when the Table 2 category could not be pinned to
            the paper's body text and was reconstructed from the table layout.
        notes: free-form provenance notes quoting the paper.
    """

    name: str
    response: ResponseCategory
    uses_openssl: bool | None = None
    notified: Month | None = None
    advisory: Month | None = None
    reconstructed: bool = False
    notes: str = ""


_N2012 = Month(2012, 2)
_N2016 = Month(2016, 5)


def _v(*args, **kwargs) -> Vendor:
    return Vendor(*args, **kwargs)


#: Every vendor the study touches, keyed by canonical name.
VENDORS: dict[str, Vendor] = {
    v.name: v
    for v in [
        # --- Public security advisory (Section 4.1; five vendors) ---------
        _v("Juniper", ResponseCategory.PUBLIC_ADVISORY, uses_openssl=False,
           notified=_N2012, advisory=Month(2012, 4),
           notes="SRX branch devices; Security Bulletin 4/2012, Out-of-Cycle "
                 "Notice 7/2012; vulnerable hosts rose for two years after."),
        _v("Innominate", ResponseCategory.PUBLIC_ADVISORY, uses_openssl=True,
           notified=_N2012, advisory=Month(2012, 6),
           notes="mGuard industrial security appliances; advisory June 2012."),
        _v("IBM", ResponseCategory.PUBLIC_ADVISORY, uses_openssl=True,
           notified=_N2012, advisory=Month(2012, 9),
           notes="RSA-II / BladeCenter MM: nine possible primes, 36 moduli; "
                 "CVE-2012-2187."),
        _v("Intel", ResponseCategory.PUBLIC_ADVISORY, notified=_N2012,
           advisory=Month(2012, 7),
           notes="Advisory concerned SSH host keys (port 22), outside the "
                 "HTTPS analysis."),
        _v("Tropos", ResponseCategory.PUBLIC_ADVISORY, notified=_N2012,
           advisory=Month(2012, 7),
           notes="Advisory concerned SSH host keys, outside the HTTPS "
                 "analysis."),
        # --- Private substantive response (Section 4.2) -------------------
        _v("Cisco", ResponseCategory.PRIVATE_RESPONSE, uses_openssl=True,
           notified=_N2012,
           notes="Small-business router lines; responded privately, never "
                 "released an advisory; model names in certificate OU."),
        _v("HP", ResponseCategory.PRIVATE_RESPONSE, uses_openssl=True,
           notified=_N2012,
           notes="Integrated Lights-Out management cards; iLO reported to "
                 "crash when scanned for Heartbleed."),
        _v("Pogoplug", ResponseCategory.PRIVATE_RESPONSE, notified=_N2012,
           reconstructed=True),
        _v("Sentry", ResponseCategory.PRIVATE_RESPONSE, notified=_N2012,
           reconstructed=True),
        _v("Emerson", ResponseCategory.PRIVATE_RESPONSE, notified=_N2012,
           reconstructed=True),
        _v("Haivision", ResponseCategory.PRIVATE_RESPONSE, notified=_N2012,
           reconstructed=True),
        _v("AudioCodes", ResponseCategory.PRIVATE_RESPONSE, notified=_N2012,
           reconstructed=True),
        _v("Kyocera", ResponseCategory.PRIVATE_RESPONSE, notified=_N2012,
           reconstructed=True),
        # --- Auto-response only (Table 2) ----------------------------------
        _v("Brocade", ResponseCategory.AUTO_RESPONSE, notified=_N2012,
           reconstructed=True),
        _v("NTI", ResponseCategory.AUTO_RESPONSE, uses_openssl=True,
           notified=_N2012, reconstructed=True),
        _v("Hillstone Networks", ResponseCategory.AUTO_RESPONSE,
           notified=_N2012, reconstructed=True),
        _v("2-Wire", ResponseCategory.AUTO_RESPONSE, uses_openssl=True,
           notified=_N2012, reconstructed=True,
           notes="Listed as 2Wire in Table 5 (satisfies OpenSSL fingerprint)."),
        _v("Motorola", ResponseCategory.AUTO_RESPONSE, notified=_N2012,
           reconstructed=True),
        _v("Pronto", ResponseCategory.AUTO_RESPONSE, notified=_N2012,
           reconstructed=True),
        _v("BelAir", ResponseCategory.AUTO_RESPONSE, notified=_N2012,
           reconstructed=True),
        _v("JDSU", ResponseCategory.AUTO_RESPONSE, notified=_N2012,
           reconstructed=True),
        # --- No response to the 2012 notification (Section 4.3) -----------
        _v("ZyXEL", ResponseCategory.NO_RESPONSE, uses_openssl=False,
           notified=_N2012),
        _v("McAfee", ResponseCategory.NO_RESPONSE, uses_openssl=True,
           notified=_N2012,
           notes="SnapGear appliances; all-default certificate subjects, "
                 "identified from the management-console page."),
        _v("TP-LINK", ResponseCategory.NO_RESPONSE, uses_openssl=True,
           notified=_N2012),
        _v("Fortinet", ResponseCategory.NO_RESPONSE, uses_openssl=False,
           notified=_N2012),
        _v("Dell", ResponseCategory.NO_RESPONSE, uses_openssl=True,
           notified=_N2012,
           notes="Dell Imaging Group printers share primes with Xerox "
                 "(manufactured by Fuji Xerox)."),
        _v("Technicolor", ResponseCategory.NO_RESPONSE, notified=_N2012,
           reconstructed=True,
           notes="Thomson-branded cable modems fingerprint as 'Thomson'."),
        _v("Sinetica", ResponseCategory.NO_RESPONSE, notified=_N2012,
           reconstructed=True),
        _v("D-Link", ResponseCategory.NO_RESPONSE, uses_openssl=True,
           notified=_N2012,
           notes="Did not respond in 2012 or to the May 2016 re-notification; "
                 "vulnerable population grew dramatically after 2012."),
        _v("Xerox", ResponseCategory.NO_RESPONSE, uses_openssl=False,
           notified=_N2012),
        _v("SkyStream Networks", ResponseCategory.NO_RESPONSE,
           uses_openssl=True, notified=_N2012, reconstructed=True),
        _v("Ruckus", ResponseCategory.NO_RESPONSE, notified=_N2012,
           reconstructed=True),
        _v("Kronos", ResponseCategory.NO_RESPONSE, uses_openssl=False,
           notified=_N2012),
        _v("Simton", ResponseCategory.NO_RESPONSE, notified=_N2012,
           reconstructed=True),
        _v("Linksys", ResponseCategory.NO_RESPONSE, uses_openssl=True,
           notified=_N2012),
        _v("AVM", ResponseCategory.NO_RESPONSE, uses_openssl=True,
           notified=_N2012,
           notes="Fritz!Box DSL modems; fingerprinted via myfritz.net names, "
                 "fritz.box SANs, and shared-prime extrapolation."),
        _v("MRV", ResponseCategory.NO_RESPONSE, notified=_N2012,
           reconstructed=True),
        # --- Newly vulnerable products, notified May 2016 (Section 4.4) ---
        _v("Huawei", ResponseCategory.NOTIFIED_2016, uses_openssl=False,
           notified=_N2016, advisory=Month(2016, 8),
           notes="First vulnerable hosts April 2015, India business unit; "
                 "advisory and update August 2016; CVE-2016-6670."),
        _v("ADTRAN", ResponseCategory.NOTIFIED_2016, uses_openssl=True,
           notified=_N2016,
           notes="Responded substantively to the 2016 notification; HTTPS "
                 "RSA flaw newly introduced in 2015. Listed as AdTran in "
                 "Table 5."),
        _v("Sangfor", ResponseCategory.NOTIFIED_2016, uses_openssl=True,
           notified=_N2016,
           notes="Support-form request was closed without response."),
        _v("Schmid Telecom", ResponseCategory.NOTIFIED_2016,
           uses_openssl=True, notified=_N2016,
           notes="Only an information-request web form; no response. All "
                 "vulnerable certificates identify an Indian subsidiary."),
        # --- Fingerprinted but never notified ------------------------------
        _v("Thomson", ResponseCategory.NOT_NOTIFIED, uses_openssl=True,
           notes="Brand on Technicolor cable modems; fingerprint vendor for "
                 "the Figure 9 'Thomson' series."),
        _v("Fritz!Box", ResponseCategory.NOT_NOTIFIED, uses_openssl=True,
           notes="Product fingerprint for AVM devices (Figure 9 series)."),
        _v("Siemens", ResponseCategory.NOT_NOTIFIED, uses_openssl=False,
           notes="Building Automation interfaces; 2,441 certificates served "
                 "a modulus from the IBM nine-prime clique from Feb 2013."),
        _v("Conel s.r.o.", ResponseCategory.NOT_NOTIFIED, uses_openssl=True,
           notes="Identified via O=vendor certificate subjects."),
        _v("Allegro", ResponseCategory.NOT_NOTIFIED, uses_openssl=True),
        _v("AdTran", ResponseCategory.NOT_NOTIFIED, uses_openssl=True,
           notes="Alias of ADTRAN used in Table 5."),
        _v("BridgeWave", ResponseCategory.NOT_NOTIFIED, uses_openssl=True),
        _v("DrayTek", ResponseCategory.NOT_NOTIFIED, uses_openssl=False),
        _v("MitraStar", ResponseCategory.NOT_NOTIFIED, uses_openssl=True),
        _v("Netgear", ResponseCategory.NOT_NOTIFIED, uses_openssl=True),
        _v("Schmid", ResponseCategory.NOT_NOTIFIED, uses_openssl=True,
           notes="Alias of Schmid Telecom used in Table 5."),
        _v("ServerTech", ResponseCategory.NOT_NOTIFIED, uses_openssl=True),
    ]
}


def vendor(name: str) -> Vendor:
    """Look up a vendor by canonical name.

    Raises:
        KeyError: for unknown vendors (typo guard for fingerprint rules).
    """
    return VENDORS[name]


def vendors_in_category(category: ResponseCategory) -> list[Vendor]:
    """All vendors in a response category, in registry order."""
    return [v for v in VENDORS.values() if v.response is category]


def notified_2012_vendors() -> list[Vendor]:
    """The Table 2 population: vendors notified in the 2012 disclosure."""
    excluded = (ResponseCategory.NOTIFIED_2016, ResponseCategory.NOT_NOTIFIED)
    return [v for v in VENDORS.values() if v.response not in excluded]
