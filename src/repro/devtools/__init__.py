"""``repro.devtools`` — project-specific static analysis ("reprolint").

The paper's results hinge on reproducibility: the world model, the
scanners, and batch-GCD must be bit-identical for a given seed.  The
codebase encodes that as conventions — every module threads explicit
``random.Random(seed)`` instances, every duration flows through the
injectable :mod:`repro.telemetry.clock`, and everything crossing the
process-pool boundary in :mod:`repro.core.clustered` must pickle.
Conventions rot; this package turns them into machine-checked rules.

Layout:

- :mod:`repro.devtools.findings` — :class:`Finding` and :class:`Severity`.
- :mod:`repro.devtools.engine` — the single-pass AST engine: one
  :class:`ast.NodeVisitor` walk per file, dispatching each node to the
  rules registered for its type, with import-alias resolution and scope
  tracking shared by all rules.
- :mod:`repro.devtools.suppress` — inline ``# reprolint: disable=RULE``
  comments.
- :mod:`repro.devtools.baseline` — the committed grandfather file for
  pre-existing findings (``reprolint-baseline.json``).
- :mod:`repro.devtools.checks` — the rule families (DET/TEL/PAR/NUM).
- :mod:`repro.devtools.lint` — the CLI:
  ``python -m repro.devtools.lint src tests --format text``.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalog and workflow.
"""

from repro.devtools.baseline import Baseline
from repro.devtools.engine import LintEngine, Rule, RuleRegistry, registry
from repro.devtools.findings import Finding, Severity

__all__ = [
    "Baseline",
    "Finding",
    "LintEngine",
    "Rule",
    "RuleRegistry",
    "Severity",
    "registry",
]
