"""The committed baseline: grandfathered findings that do not gate CI.

A baseline entry matches findings by ``(rule, path, stripped line text)``
rather than by line number, so unrelated edits that shift code around do
not invalidate it — but *changing the offending line* does, forcing the
author to either fix the violation or re-justify it.  Each key carries an
allowance ``count`` (the same line text can legitimately occur more than
once per file) and a mandatory human ``justification``.

File format (``reprolint-baseline.json``, committed at the repo root)::

    {
      "version": 1,
      "entries": [
        {
          "rule": "DET003",
          "path": "src/repro/pipeline.py",
          "line_text": "started = time.perf_counter()",
          "count": 4,
          "justification": "wall-clock stage timings, independent of ..."
        }
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.findings import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "reprolint-baseline.json"
_FORMAT_VERSION = 1


class Baseline:
    """An allowance table for grandfathered findings."""

    def __init__(self, allowances: dict[tuple[str, str, str], int] | None = None,
                 justifications: dict[tuple[str, str, str], str] | None = None) -> None:
        self._allowances: dict[tuple[str, str, str], int] = dict(allowances or {})
        self._justifications: dict[tuple[str, str, str], str] = dict(justifications or {})

    def __len__(self) -> int:
        return sum(self._allowances.values())

    # -- construction -----------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline.

        Raises:
            ValueError: on a malformed or wrong-version file.
        """
        file = Path(path)
        if not file.exists():
            return cls()
        try:
            payload = json.loads(file.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline {file}: not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"baseline {file}: expected a v{_FORMAT_VERSION} baseline object"
            )
        allowances: dict[tuple[str, str, str], int] = {}
        justifications: dict[tuple[str, str, str], str] = {}
        for index, entry in enumerate(payload.get("entries", [])):
            try:
                key = (entry["rule"], entry["path"], entry["line_text"])
                count = int(entry.get("count", 1))
                justification = entry["justification"]
            except (TypeError, KeyError) as exc:
                raise ValueError(
                    f"baseline {file}: entry {index} is missing {exc}"
                ) from exc
            if not justification:
                raise ValueError(
                    f"baseline {file}: entry {index} ({key[0]} {key[1]}) has an "
                    "empty justification — every grandfathered finding needs one"
                )
            allowances[key] = allowances.get(key, 0) + count
            justifications[key] = justification
        return cls(allowances, justifications)

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], justification: str = "TODO: justify"
    ) -> "Baseline":
        """Build a baseline that grandfathers exactly ``findings``."""
        counts: Counter[tuple[str, str, str]] = Counter(f.key() for f in findings)
        return cls(dict(counts), {key: justification for key in counts})

    # -- matching ---------------------------------------------------------

    def filter_new(self, findings: Sequence[Finding]) -> list[Finding]:
        """Return the findings *not* covered by this baseline.

        Consumes allowances in file order, so ``count`` copies of a line
        are forgiven and the ``count + 1``-th is reported.
        """
        remaining = dict(self._allowances)
        new: list[Finding] = []
        for finding in findings:
            key = finding.key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                new.append(finding)
        return new

    def refreshed(
        self, findings: Sequence[Finding]
    ) -> tuple["Baseline", list[tuple[str, str, str]]]:
        """Regenerate the baseline from ``findings``, keeping justifications.

        Exact ``(rule, path, line_text)`` matches carry their justification
        over; a finding whose line text drifted migrates the justification
        from the *unique* old entry with the same ``(rule, path)`` (the
        common case after editing a grandfathered line).  Returns the new
        baseline plus the keys that could not inherit a justification —
        callers must refuse to write when that list is non-empty, because
        entries would otherwise silently lose their human rationale.
        """
        counts: Counter[tuple[str, str, str]] = Counter(f.key() for f in findings)
        justifications: dict[tuple[str, str, str], str] = {}
        unresolved: list[tuple[str, str, str]] = []
        vanished = [key for key in self._allowances if key not in counts]
        for key in sorted(counts):
            if key in self._justifications:
                justifications[key] = self._justifications[key]
                continue
            donors = [
                old for old in vanished if old[0] == key[0] and old[1] == key[1]
            ]
            if len(donors) == 1:
                justifications[key] = self._justifications[donors[0]]
                vanished.remove(donors[0])
            else:
                unresolved.append(key)
        return Baseline(dict(counts), justifications), unresolved

    def stale_entries(self, findings: Sequence[Finding]) -> list[tuple[str, str, str]]:
        """Baseline keys whose allowance is no longer (fully) used.

        Stale entries do not fail the lint, but the CLI reports them so
        fixed violations get pruned from the baseline.
        """
        seen: Counter[tuple[str, str, str]] = Counter(f.key() for f in findings)
        return sorted(
            key for key, count in self._allowances.items() if seen[key] < count
        )

    # -- persistence ------------------------------------------------------

    def to_payload(self) -> dict[str, object]:
        entries = [
            {
                "rule": rule,
                "path": path,
                "line_text": line_text,
                "count": count,
                "justification": self._justifications.get(
                    (rule, path, line_text), "TODO: justify"
                ),
            }
            for (rule, path, line_text), count in sorted(self._allowances.items())
        ]
        return {"version": _FORMAT_VERSION, "entries": entries}

    def write(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_payload(), indent=2) + "\n")
