"""Rule families for reprolint.

Importing a submodule registers its rules on the global
:data:`repro.devtools.engine.registry`; :func:`load_all` imports every
family and is idempotent (re-registration is prevented by module caching).
"""

from __future__ import annotations

__all__ = ["load_all"]


def load_all() -> None:
    """Import every rule family so its rules self-register."""
    from repro.devtools.checks import (  # noqa: F401  (import-for-effect)
        asyncsafety,
        crossmodule,
        determinism,
        durability,
        faults,
        numerics,
        parallel,
        telemetry,
    )
