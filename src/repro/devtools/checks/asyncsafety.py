"""Async-safety and request-taint rules (ASY001-ASY004, XTNT001).

The serving layer (:mod:`repro.service`) multiplexes every client on one
asyncio event loop; a single synchronous journal ``flush`` or a stray
``ClusteredBatchGcd`` compute on that loop stalls *all* connections and
quietly destroys the latency story in ``BENCH_service.json``.  These
rules machine-check the loop discipline:

- **ASY001** — a blocking call (file I/O, ``time.sleep``, subprocess,
  sockets, journal ``flush``, batch-GCD compute) in a function that is
  *event-loop colored*: transitively reachable from an ``async def``
  without crossing an offload boundary (``asyncio.to_thread``,
  ``run_in_executor``, pool ``submit``/``map``, ``Thread(target=...)``).
- **ASY002** — a coroutine created by calling a project ``async def``
  as a bare statement: it never runs, silently.
- **ASY003** — ``asyncio.create_task``/``ensure_future`` as a bare
  statement: the only reference to the task is the loop's weak set, so
  it can be garbage-collected mid-flight and its exceptions vanish.
- **ASY004** — shared service state (``self`` attributes, mutable
  module globals) read before an ``await`` and written after it with no
  lock: every other task interleaves in between, so the
  read-modify-write is not atomic.
- **XTNT001** — an untrusted HTTP request field (any parameter of a
  ``@route``-decorated handler) flowing into path construction or an
  unbounded ``int(x, 16)`` parse without passing a validator-shaped
  call (``parse_*``/``validate_*``/``sanitize_*``/``clean_*``).  The
  adversarial-input literature the paper leans on (When RSA Fails, the
  anomalous Tor-relay keys) is exactly the population that will POST
  here.

ASY001/ASY004 findings are scoped to ``src/repro`` functions; the
coloring, call-site, and type facts all come from the shared
:class:`~repro.devtools.graph.ProjectGraph`, and the CFG/dataflow lives
in :mod:`repro.devtools.dataflow`.
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools import dataflow
from repro.devtools.engine import ProjectRule, registry
from repro.devtools.findings import Severity
from repro.devtools.graph import CallSite, FunctionNode, ProjectGraph

__all__ = [
    "AsyncBlockingCallRule",
    "AsyncRmwHazardRule",
    "DiscardedTaskHandleRule",
    "RequestTaintRule",
    "UnawaitedCoroutineRule",
]

#: Alias-resolved external callables that block the calling thread.
_BLOCKING_RESOLVED: dict[str, str] = {
    "time.sleep": "time.sleep() parks the whole event loop",
    "subprocess.run": "subprocess.run() blocks until the child exits",
    "subprocess.call": "subprocess.call() blocks until the child exits",
    "subprocess.check_call": "subprocess.check_call() blocks until the child exits",
    "subprocess.check_output": "subprocess.check_output() blocks on child output",
    "subprocess.Popen": "Popen() performs a blocking fork/exec",
    "urllib.request.urlopen": "urlopen() performs synchronous network I/O",
    "socket.create_connection": "socket.create_connection() blocks on connect",
    "os.fsync": "os.fsync() blocks on the disk",
    "os.replace": "os.replace() is synchronous filesystem I/O",
    "os.rename": "os.rename() is synchronous filesystem I/O",
    "shutil.copy": "shutil.copy() is synchronous filesystem I/O",
    "shutil.copy2": "shutil.copy2() is synchronous filesystem I/O",
    "shutil.copytree": "shutil.copytree() is synchronous filesystem I/O",
    "shutil.rmtree": "shutil.rmtree() is synchronous filesystem I/O",
}
#: Method terminals that are file I/O on any plausible receiver.  Curated
#: to spellings that only filesystem/file objects grow — generic names
#: (``write``, ``close``, ``replace``) stay out because StreamWriter and
#: str share them.
_BLOCKING_METHODS: dict[str, str] = {
    "read_text": "synchronous file read",
    "write_text": "synchronous file write",
    "read_bytes": "synchronous file read",
    "write_bytes": "synchronous file write",
    "mkdir": "synchronous directory creation",
    "unlink": "synchronous file removal",
    "rmdir": "synchronous directory removal",
    "flush": "synchronous file flush (the journal fsync path)",
    "fsync": "synchronous file flush",
}
#: Project qualname prefixes that are CPU-bound compute, never loop work.
_BLOCKING_PROJECT_PREFIXES = ("repro.core.clustered.ClusteredBatchGcd",)
_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})


def _repro_functions(graph: ProjectGraph) -> Iterator[FunctionNode]:
    for qualname in sorted(graph.functions):
        func = graph.functions[qualname]
        if func.module == "repro" or func.module.startswith("repro."):
            yield func


def _classify_blocking(
    graph: ProjectGraph, func: FunctionNode, site: CallSite
) -> str | None:
    """A human reason when this call site blocks the event loop."""
    if site.raw is None:
        return None
    resolved_external = graph.resolve_name(func.module, site.raw)
    reason = _BLOCKING_RESOLVED.get(resolved_external)
    if reason is not None:
        return reason
    if site.raw == "open" and resolved_external == "open":
        return "builtin open() is synchronous file I/O"
    project_target = graph.resolve_call(func, site.raw)
    if project_target is not None:
        for prefix in _BLOCKING_PROJECT_PREFIXES:
            if project_target.startswith(prefix):
                return "CPU-bound batch-GCD compute belongs on the worker"
        return None  # project code: analyzed on its own when colored
    if site.terminal in _BLOCKING_METHODS and not site.awaited:
        return _BLOCKING_METHODS[site.terminal]
    return None


@registry.register_project
class AsyncBlockingCallRule(ProjectRule):
    """ASY001: blocking call reachable from async code on the event loop."""

    code = "ASY001"
    summary = (
        "blocking call (file I/O, sleep, subprocess, sockets, batch-GCD "
        "compute) in a function reachable from async code without an "
        "offload boundary"
    )
    severity = Severity.ERROR

    def check_project(self, graph) -> Iterator[tuple[str, int, int, str]]:
        origins = graph.async_origins()
        for func in _repro_functions(graph):
            origin = origins.get(func.qualname)
            if origin is None:
                continue
            for site in func.call_sites:
                reason = _classify_blocking(graph, func, site)
                if reason is None:
                    continue
                yield (
                    func.path,
                    site.lineno,
                    site.col,
                    f"'{site.raw}' in '{func.qualname}' blocks the event "
                    f"loop ({reason}); reachable from async '{origin}' — "
                    "offload with asyncio.to_thread(...) or move it off "
                    "the request path",
                )


@registry.register_project
class UnawaitedCoroutineRule(ProjectRule):
    """ASY002: calling an async def as a bare statement drops the coroutine."""

    code = "ASY002"
    summary = "coroutine created but never awaited (bare call to an async def)"
    severity = Severity.ERROR

    def check_project(self, graph) -> Iterator[tuple[str, int, int, str]]:
        for func in _repro_functions(graph):
            for site in func.call_sites:
                if not site.bare or site.awaited or site.raw is None:
                    continue
                target = graph.resolve_call(func, site.raw)
                if target is None or not graph.functions[target].is_async:
                    continue
                yield (
                    func.path,
                    site.lineno,
                    site.col,
                    f"'{site.raw}' creates a coroutine for async "
                    f"'{target}' but never awaits it — the body silently "
                    "never runs; await it or schedule it with a kept "
                    "task handle",
                )


@registry.register_project
class DiscardedTaskHandleRule(ProjectRule):
    """ASY003: fire-and-forget create_task can be garbage-collected mid-run."""

    code = "ASY003"
    summary = "asyncio.create_task/ensure_future handle discarded"
    severity = Severity.ERROR

    def check_project(self, graph) -> Iterator[tuple[str, int, int, str]]:
        for func in _repro_functions(graph):
            for site in func.call_sites:
                if not site.bare or site.awaited or site.raw is None:
                    continue
                if site.terminal not in _TASK_SPAWNERS:
                    continue
                resolved = graph.resolve_name(func.module, site.raw)
                if (
                    resolved not in {"asyncio.create_task", "asyncio.ensure_future"}
                    and graph.resolve_call(func, site.raw) is not None
                ):
                    continue  # a project function that happens to share the name
                yield (
                    func.path,
                    site.lineno,
                    site.col,
                    f"'{site.raw}' discards its Task handle — the event "
                    "loop holds only a weak reference, so the task can be "
                    "garbage-collected mid-flight and its exception is "
                    "never surfaced; keep the handle and await or cancel it",
                )


@registry.register_project
class AsyncRmwHazardRule(ProjectRule):
    """ASY004: shared-state read-modify-write spanning an await, unlocked."""

    code = "ASY004"
    summary = (
        "read-modify-write of shared state spans an await without a lock "
        "(other tasks interleave between the read and the write)"
    )
    severity = Severity.ERROR

    def check_project(self, graph) -> Iterator[tuple[str, int, int, str]]:
        for func in _repro_functions(graph):
            if not func.is_async:
                continue
            fn_ast = dataflow.function_at(func.path, func.lineno)
            if fn_ast is None:
                continue
            module = graph.modules.get(func.module)
            shared_globals = module.mutable_globals if module else set()
            for hazard in dataflow.rmw_hazards(fn_ast, shared_globals):
                yield (
                    func.path,
                    hazard.write_line,
                    0,
                    f"'{func.qualname}' reads '{hazard.name}' (line "
                    f"{hazard.read_line}), awaits (line {hazard.await_line}), "
                    f"then writes it (line {hazard.write_line}) — other "
                    "tasks interleave across the await, so the update can "
                    "clobber theirs; hold an asyncio.Lock across the span "
                    "or restructure to one synchronous mutation",
                )


@registry.register_project
class RequestTaintRule(ProjectRule):
    """XTNT001: untrusted request field reaching a sensitive sink unvalidated."""

    code = "XTNT001"
    summary = (
        "untrusted HTTP request field flows to path construction or "
        "unbounded int(x, 16) without passing a validator"
    )
    severity = Severity.ERROR

    def check_project(self, graph) -> Iterator[tuple[str, int, int, str]]:
        for func in _repro_functions(graph):
            if not func.route_decorated:
                continue
            fn_ast = dataflow.function_at(func.path, func.lineno)
            if fn_ast is None:
                continue

            def resolve(raw: str, module: str = func.module) -> str:
                return graph.resolve_name(module, raw)

            for finding in dataflow.taint_findings(fn_ast, resolve):
                yield (
                    func.path,
                    finding.lineno,
                    finding.col,
                    f"request field '{finding.source}' reaches "
                    f"{finding.sink} in handler '{func.qualname}' without "
                    "passing a validator (parse_*/validate_*/sanitize_*) — "
                    "adversarial submissions control this value",
                )
