"""X — cross-module rules over the whole-program graph.

Where the per-file families (DET/TEL/PAR/NUM) see one module at a time,
these rules query :mod:`repro.devtools.graph` and check contracts that
only exist *between* files:

- **XPAR001** — interprocedural process-boundary safety.  Any function
  reachable (through the resolved call graph, indirect edges included)
  from a callable submitted to a ``ProcessPoolExecutor`` must not rebind
  module globals or mutate module-level containers: each worker process
  has its own copy, so the mutation silently diverges across workers and
  across ``processes=None`` vs pooled runs.  Setting worker state in the
  pool *initializer* (``_pool_init``-style) is the blessed pattern and is
  not flagged.
- **XTEL001** — telemetry contract drift.  Every metric name literal in
  ``src/repro`` must appear in the machine-readable metric catalog of
  ``docs/TELEMETRY.md``, and every catalogued metric must still be
  emitted somewhere — both directions, so the documented schema and the
  code cannot drift apart.  F-string names match ``<placeholder>``
  wildcard segments.
- **XCFG001** — ``StudyConfig`` ↔ CLI drift: a ``with_``/constructor
  keyword in either CLI that is not a real field (stale after a rename),
  an ``argparse`` flag whose dest names a field but is never threaded
  into a call, and an engine-tuning ``batchgcd_*`` field exposed by
  neither CLI.
- **XDEAD001** — public ``repro`` symbols (module-level classes and
  functions) referenced nowhere across ``src``, ``tests``,
  ``benchmarks``, or ``examples`` — import aliases and ``__all__``
  strings do not count as references, so merely re-exported surface is
  still dead.
- **XSVC001** — service contract drift.  Every HTTP endpoint registered
  in ``src/repro`` (``@route("GET", "/v1/jobs")``-style) must appear in
  the endpoint catalog of ``docs/SERVICE.md`` and every catalogued
  endpoint must still be registered — the XTEL001 discipline applied to
  the wire API.  Additionally, every emitted ``service.*`` metric must
  be mentioned in ``docs/SERVICE.md`` (the service's own observability
  reference), not only in the global telemetry catalog.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.devtools.engine import ProjectRule, registry
from repro.devtools.findings import Severity
from repro.devtools.graph import ProjectGraph

_TELEMETRY_DOC = "docs/TELEMETRY.md"
_CATALOG_BEGIN = "<!-- metric-catalog:begin -->"
_CATALOG_END = "<!-- metric-catalog:end -->"
_CATALOG_ROW = re.compile(r"^\|\s*`([^`]+)`")
_PLACEHOLDER = re.compile(r"<[^<>]+>")

_SERVICE_DOC = "docs/SERVICE.md"
_ENDPOINT_BEGIN = "<!-- endpoint-catalog:begin -->"
_ENDPOINT_END = "<!-- endpoint-catalog:end -->"
_ENDPOINT_ROW = re.compile(r"^\|\s*`([A-Z]+)`\s*\|\s*`([^`]+)`")
_SERVICE_METRIC_PREFIX = "service."

_CONFIG_MODULE = "repro.studyconfig"
_CONFIG_CLASS = "StudyConfig"
_CLI_MODULES = ("repro.cli", "repro.batchgcd_cli")
#: Engine-tuning fields with a deliberately different CLI spelling.
_FLAG_ALIASES: dict[str, frozenset[str]] = {
    "batchgcd_engine": frozenset({"engine"}),
    "batchgcd_store_dir": frozenset({"store_dir"}),
    "batchgcd_k": frozenset({"k"}),
    "batchgcd_shards": frozenset({"shards"}),
    "batchgcd_processes": frozenset({"processes"}),
    "batchgcd_scheduler": frozenset({"scheduler"}),
    "batchgcd_backend": frozenset({"backend", "numt_backend"}),
    "batchgcd_inflight": frozenset({"max_inflight"}),
    "batchgcd_max_retries": frozenset({"max_retries"}),
    "batchgcd_chunk_timeout": frozenset({"chunk_timeout"}),
    "batchgcd_checkpoint_dir": frozenset({"checkpoint_dir"}),
    "batchgcd_fault_plan": frozenset({"fault_plan"}),
}
#: Symbols referenced from outside the Python tree (pyproject scripts).
_DEAD_EXEMPT = frozenset({"main"})


@registry.register_project
class ProcessBoundaryMutation(ProjectRule):
    code = "XPAR001"
    summary = "global state mutated by code reachable from a process-pool task"
    severity = Severity.ERROR

    def check_project(
        self, graph: ProjectGraph
    ) -> Iterator[tuple[str, int, int, str]]:
        reported: set[str] = set()
        for entry, submit in sorted(graph.pool_entry_points().items()):
            for qualname in sorted(graph.reachable_from([entry])):
                if qualname in reported:
                    continue
                func = graph.functions[qualname]
                module = graph.modules.get(func.module)
                if module is None:
                    continue
                mutated = list(func.global_writes) + [
                    name
                    for name in func.container_writes
                    if name in module.mutable_globals
                ]
                if not mutated:
                    continue
                reported.add(qualname)
                names = ", ".join(f"'{name}'" for name in sorted(set(mutated)))
                yield (
                    func.path,
                    func.lineno,
                    0,
                    f"'{qualname}' mutates module global(s) {names} and is "
                    f"reachable from process-pool entry point '{entry}' "
                    f"(submitted at {submit.path}:{submit.lineno}); each worker "
                    "owns a private copy, so the mutation diverges across "
                    "processes — keep task state worker-local, or set it once "
                    "in the pool initializer",
                )


def _parse_metric_catalog(text: str) -> list[tuple[str, int]] | None:
    """``(pattern, lineno)`` rows of the documented catalog, or None."""
    lines = text.splitlines()
    begin = end = None
    for index, line in enumerate(lines):
        if _CATALOG_BEGIN in line:
            begin = index
        elif _CATALOG_END in line:
            end = index
    if begin is None or end is None or end <= begin:
        return None
    entries: list[tuple[str, int]] = []
    for index in range(begin + 1, end):
        match = _CATALOG_ROW.match(lines[index].strip())
        if match:
            entries.append((match.group(1), index + 1))
    return entries


def _metric_matches(code_name: str, doc_pattern: str) -> bool:
    """Segment-wise match; ``*`` (code f-string field or doc ``<ph>``)
    matches exactly one segment."""
    doc = _PLACEHOLDER.sub("*", doc_pattern)
    code_segments = code_name.split(".")
    doc_segments = doc.split(".")
    if len(code_segments) != len(doc_segments):
        return False
    return all(
        c == d or c == "*" or d == "*"
        for c, d in zip(code_segments, doc_segments)
    )


@registry.register_project
class TelemetryContractDrift(ProjectRule):
    code = "XTEL001"
    summary = "metric emitted but undocumented, or documented but never emitted"
    severity = Severity.ERROR

    def check_project(
        self, graph: ProjectGraph
    ) -> Iterator[tuple[str, int, int, str]]:
        doc_path = graph.root / _TELEMETRY_DOC
        try:
            doc_text = doc_path.read_text()
        except OSError:
            return  # no telemetry contract in this tree
        catalog = _parse_metric_catalog(doc_text)
        if catalog is None:
            return  # doc exists but carries no machine-readable catalog
        calls = graph.metric_calls()
        doc_rel = doc_path.as_posix()

        seen: set[tuple[str, str, int]] = set()
        for call in calls:
            if not any(_metric_matches(call.name, pattern) for pattern, _ in catalog):
                key = (call.name, call.path, call.lineno)
                if key in seen:
                    continue
                seen.add(key)
                yield (
                    call.path,
                    call.lineno,
                    call.col,
                    f"metric {call.name!r} ({call.instrument}) is not in the "
                    f"documented catalog — add it to the metric-catalog table "
                    f"in {_TELEMETRY_DOC} (or rename to a documented metric)",
                )
        emitted = {call.name for call in calls}
        for pattern, lineno in catalog:
            if not any(_metric_matches(name, pattern) for name in emitted):
                yield (
                    doc_rel,
                    lineno,
                    0,
                    f"documented metric {pattern!r} is emitted nowhere in "
                    "src/repro — prune the catalog row or restore the "
                    "instrumentation",
                )


@registry.register_project
class StudyConfigCliDrift(ProjectRule):
    code = "XCFG001"
    summary = "StudyConfig fields and CLI argparse flags have drifted apart"
    severity = Severity.ERROR

    def check_project(
        self, graph: ProjectGraph
    ) -> Iterator[tuple[str, int, int, str]]:
        config_module = graph.modules.get(_CONFIG_MODULE)
        if config_module is None:
            return
        fields = config_module.dataclass_fields.get(_CONFIG_CLASS)
        if not fields:
            return
        field_names = {name for name, _ in fields}
        clis = [
            graph.modules[name] for name in _CLI_MODULES if name in graph.modules
        ]

        for cli in clis:
            for kwarg, lineno in sorted(cli.config_kwargs):
                if kwarg not in field_names:
                    yield (
                        cli.path,
                        lineno,
                        0,
                        f"'{kwarg}' is not a {_CONFIG_CLASS} field — the CLI "
                        "keyword is stale (field renamed or removed in "
                        f"{_CONFIG_MODULE})",
                    )
            for flag in cli.argparse_flags:
                matched = self._field_for_dest(flag.dest, field_names)
                if matched is None:
                    continue
                if matched in cli.call_kwargs or flag.dest in cli.call_kwargs:
                    continue
                yield (
                    cli.path,
                    flag.lineno,
                    0,
                    f"flag '--{flag.dest.replace('_', '-')}' maps to "
                    f"{_CONFIG_CLASS}.{matched} but is never threaded into a "
                    "call — the parsed value is silently dropped",
                )

        for name, lineno in fields:
            if not name.startswith("batchgcd_"):
                continue
            if any(self._exposes(cli, name) for cli in clis):
                continue
            yield (
                config_module.path,
                lineno,
                0,
                f"engine-tuning knob {_CONFIG_CLASS}.{name} is exposed by "
                "neither CLI — thread it through repro.cli or "
                "repro.batchgcd_cli (or drop the field)",
            )

    @staticmethod
    def _field_for_dest(dest: str, field_names: set[str]) -> str | None:
        if dest in field_names:
            return dest
        for field, aliases in _FLAG_ALIASES.items():
            if dest in aliases and field in field_names:
                return field
        return None

    @staticmethod
    def _exposes(cli, field: str) -> bool:
        if field in cli.call_kwargs:
            return True
        accepted = {field} | _FLAG_ALIASES.get(field, frozenset())
        return any(flag.dest in accepted for flag in cli.argparse_flags)


def _parse_endpoint_catalog(text: str) -> list[tuple[str, str, int]] | None:
    """``(method, pattern, lineno)`` rows of the endpoint catalog, or None."""
    lines = text.splitlines()
    begin = end = None
    for index, line in enumerate(lines):
        if _ENDPOINT_BEGIN in line:
            begin = index
        elif _ENDPOINT_END in line:
            end = index
    if begin is None or end is None or end <= begin:
        return None
    entries: list[tuple[str, str, int]] = []
    for index in range(begin + 1, end):
        match = _ENDPOINT_ROW.match(lines[index].strip())
        if match:
            entries.append((match.group(1), match.group(2), index + 1))
    return entries


@registry.register_project
class ServiceContractDrift(ProjectRule):
    code = "XSVC001"
    summary = "HTTP endpoint or service metric drifted from docs/SERVICE.md"
    severity = Severity.ERROR

    def check_project(
        self, graph: ProjectGraph
    ) -> Iterator[tuple[str, int, int, str]]:
        routes = graph.route_calls()
        doc_path = graph.root / _SERVICE_DOC
        try:
            doc_text = doc_path.read_text()
        except OSError:
            if not routes:
                return  # no service layer, no contract
            first = routes[0]
            yield (
                first.path,
                first.lineno,
                0,
                f"{len(routes)} HTTP endpoint(s) are registered but "
                f"{_SERVICE_DOC} does not exist — document the wire API "
                "(endpoint catalog table) before serving it",
            )
            return
        catalog = _parse_endpoint_catalog(doc_text)
        doc_rel = doc_path.as_posix()
        if catalog is None:
            if routes:
                first = routes[0]
                yield (
                    first.path,
                    first.lineno,
                    0,
                    f"{_SERVICE_DOC} carries no machine-readable endpoint "
                    f"catalog (between {_ENDPOINT_BEGIN!r} and "
                    f"{_ENDPOINT_END!r}) — add one so the API surface is "
                    "lint-checked",
                )
            return

        documented = {(method, pattern) for method, pattern, _ in catalog}
        registered = {(call.method, call.pattern) for call in routes}
        for call in routes:
            if (call.method, call.pattern) not in documented:
                yield (
                    call.path,
                    call.lineno,
                    0,
                    f"endpoint '{call.method} {call.pattern}' is registered "
                    f"but missing from the endpoint catalog in {_SERVICE_DOC}",
                )
        for method, pattern, lineno in catalog:
            if (method, pattern) not in registered:
                yield (
                    doc_rel,
                    lineno,
                    0,
                    f"documented endpoint '{method} {pattern}' is registered "
                    "nowhere in src/repro — prune the catalog row or restore "
                    "the route",
                )

        # Service metrics must be visible in the service's own doc too.
        seen: set[str] = set()
        for call in graph.metric_calls():
            if not call.name.startswith(_SERVICE_METRIC_PREFIX):
                continue
            if call.name in seen:
                continue
            seen.add(call.name)
            if f"`{call.name}`" not in doc_text:
                yield (
                    call.path,
                    call.lineno,
                    call.col,
                    f"service metric {call.name!r} is not mentioned in "
                    f"{_SERVICE_DOC} — add it to the service metrics table",
                )


@registry.register_project
class DeadPublicSymbol(ProjectRule):
    code = "XDEAD001"
    summary = "public repro symbol referenced nowhere in src/tests/benchmarks/examples"
    severity = Severity.WARNING

    def check_project(
        self, graph: ProjectGraph
    ) -> Iterator[tuple[str, int, int, str]]:
        for _, module in sorted(graph.modules.items()):
            for name, lineno in sorted(module.public.items(), key=lambda kv: kv[1]):
                if name in _DEAD_EXEMPT or name in graph.referenced_names:
                    continue
                yield (
                    module.path,
                    lineno,
                    0,
                    f"public symbol '{module.name}.{name}' is referenced "
                    "nowhere in src, tests, benchmarks, or examples "
                    "(imports and __all__ do not count) — delete it, make it "
                    "private, or cover it with a test",
                )
