"""DET — determinism rules.

The paper's pipeline must be bit-identical for a given seed (same weak-key
corpus, same batch-GCD output, same report).  These rules police the two
ways that property silently rots: ambient randomness and ambient clocks.

- **DET001** — unseeded or ambient RNG.  ``random.Random()`` with no
  arguments seeds from the OS; module-level ``random.*`` calls share the
  interpreter-global RNG whose state any import can perturb.  Library code
  must take a ``random.Random`` instance (or derive one from a fixed
  seed).  This is exactly the bug class the paper studies in device
  firmware — entropy discipline — so the simulator cannot itself be
  sloppy about it.
- **DET002** — wall-clock reads (``time.time``, ``datetime.now``,
  ``date.today``...).  Real dates in the world model would make runs
  differ by invocation time; the study timeline is simulated months, and
  durations belong to the telemetry clock.
- **DET003** — duration clocks (``time.perf_counter`` /
  ``time.process_time`` / ``time.monotonic``) used directly instead of
  the injectable :class:`repro.telemetry.clock.Clock`.  A warning, not an
  error: measuring real time is sometimes the point (CLI ``--timings``),
  but each site should be deliberate — suppress or baseline it with a
  justification.

``repro.telemetry.clock`` is exempt from DET002/DET003: it is the one
module allowed to touch the real clocks.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.engine import ModuleContext, Rule, registry
from repro.devtools.findings import Severity

#: Functions operating on the interpreter-global Mersenne Twister.
_GLOBAL_RNG_FUNCS = frozenset(
    f"random.{name}"
    for name in (
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    )
)

_WALL_CLOCK_FUNCS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_DURATION_CLOCK_FUNCS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.monotonic",
        "time.monotonic_ns",
    }
)

_CLOCK_MODULE = "repro.telemetry.clock"


@registry.register
class UnseededRng(Rule):
    code = "DET001"
    summary = "unseeded random.Random() or ambient module-level random.* call"
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        if resolved == "random.Random" and not node.args and not node.keywords:
            yield (
                node,
                "random.Random() with no seed draws OS entropy; pass an explicit "
                "seed or thread a caller-supplied random.Random through",
            )
        elif resolved in _GLOBAL_RNG_FUNCS and ctx.is_repro_source:
            yield (
                node,
                f"{resolved}() uses the interpreter-global RNG, whose state any "
                "import can perturb; use an explicit random.Random(seed) instance",
            )


@registry.register
class WallClock(Rule):
    code = "DET002"
    summary = "wall-clock access outside repro.telemetry.clock"
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        if ctx.module == _CLOCK_MODULE:
            return
        resolved = ctx.resolve(node.func)
        if resolved in _WALL_CLOCK_FUNCS:
            yield (
                node,
                f"{resolved}() reads the real wall clock; the study timeline is "
                "simulated Months and durations come from repro.telemetry.clock",
            )


@registry.register
class DurationClock(Rule):
    code = "DET003"
    summary = "duration clock used directly instead of the telemetry Clock"
    severity = Severity.WARNING
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        if ctx.module == _CLOCK_MODULE or not ctx.is_repro_source:
            return
        resolved = ctx.resolve(node.func)
        if resolved in _DURATION_CLOCK_FUNCS:
            yield (
                node,
                f"{resolved}() bypasses the injectable repro.telemetry.clock.Clock "
                "(tests cannot fake it); prefer telemetry spans/timers, or "
                "suppress/baseline with a justification if real time is the point",
            )
