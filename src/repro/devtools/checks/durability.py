"""Crash-consistency (durability) rules DUR001-DUR005.

The paper's pipeline earns its reproducibility claims by surviving
SIGKILL and power loss mid-mutation: the incremental product-tree store,
the service job queue, the checkpoint shards, and the mutation journal
all follow the same three disciplines — **fsync before rename**,
**temp-file + atomic rename at commit points**, and **journal-first
write-ahead ordering** — with torn-tail-tolerant JSONL readers on the
recovery path.  These rules machine-check the disciplines using the
filesystem-effect summaries of :mod:`repro.devtools.effects` layered
over the call graph and the statement-level CFG:

- **DUR001** — an atomic rename whose *source* file can be written
  without a flush+fsync on some CFG path, or a journal-file write in a
  function that never fsyncs: the rename (or the append) can commit
  bytes that still live in the page cache, so a power loss publishes a
  torn or empty file.
- **DUR002** — a commit-point file (manifest / endpoint / journal /
  hits / checkpoint) written **in place** on its final path instead of
  temp-in-same-directory + atomic rename: a kill mid-write destroys the
  old committed state along with the new one.
- **DUR003** — in a function that journals (has a
  ``MutationJournal.append``), a store mutation reachable from entry
  *without* passing the journal append: the write-ahead ordering is
  violated on that path, so a kill loses the mutation unrecoverably.
  ``if self._journal is not None:`` guards are recognised as the
  blessing boundary (the memory-only configuration has nothing to
  journal).
- **DUR004** (warning) — an atomic rename with no directory fsync
  anywhere in the function's transitive effects: the kernel keeps the
  new directory entry across SIGKILL, but only ``fsync(dirfd)`` pins it
  across power loss.  Protocols where losing the rename is harmless
  (e.g. the journal's commit truncation — replay is idempotent)
  document the exemption with an inline
  ``# reprolint: disable=DUR004``.
- **DUR005** — an append-only JSONL reader whose per-line
  ``json.loads`` has no torn-tail guard (``try``/``except`` inside the
  loop): the expected torn final line after a kill makes recovery throw
  away the entire journal instead of everything after the tear.

Each rule has a paired crash drill in
``tests/test_faults_durability_drills.py`` demonstrating the concrete
data loss; ``docs/STATIC_ANALYSIS.md`` carries the catalog.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools import dataflow
from repro.devtools.effects import FsEffect, is_tempish, path_tokens
from repro.devtools.engine import ProjectRule, registry
from repro.devtools.findings import Severity
from repro.devtools.graph import FunctionNode, ProjectGraph

__all__ = [
    "CommitPointInPlaceRule",
    "JournalOrderingRule",
    "RenameWithoutDirFsyncRule",
    "TornTailReaderRule",
    "UnsyncedRenameSourceRule",
]

#: Path-sketch substrings that mark a commit-point file: the files a
#: reader trusts as the authoritative record after recovery.
_COMMIT_POINT_HINTS = ("manifest", "endpoint", "journal", "checkpoint", "hits")
_WRITE_KINDS = frozenset({"write", "write_file", "open_write"})
_MUTATION_KINDS = frozenset({"write_file", "open_write", "rename"})


def _repro_functions(graph: ProjectGraph) -> Iterator[FunctionNode]:
    for qualname in sorted(graph.functions):
        func = graph.functions[qualname]
        if func.module == "repro" or func.module.startswith("repro."):
            yield func


def _dotted(expr: ast.AST) -> str | None:
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _cfg_with_lines(
    func: FunctionNode,
) -> tuple[list[dataflow.CfgNode], dict[int, int]] | None:
    """The function's CFG plus a line -> node-index map for its effects."""
    fn_ast = dataflow.function_at(func.path, func.lineno)
    if fn_ast is None:
        return None
    nodes = dataflow.build_cfg(fn_ast.body)
    line_to_node: dict[int, int] = {}
    for index, node in enumerate(nodes):
        for expr in dataflow.walk_statement_exprs(node.stmt):
            lineno = getattr(expr, "lineno", None)
            if lineno is not None:
                line_to_node.setdefault(lineno, index)
    return nodes, line_to_node


def _node_calls(
    graph: ProjectGraph, func: FunctionNode, node: dataflow.CfgNode
) -> Iterator[tuple[str, ast.Call]]:
    """(resolved project qualname, call AST) pairs evaluated by one node."""
    for expr in dataflow.walk_statement_exprs(node.stmt):
        if not isinstance(expr, ast.Call):
            continue
        raw = _dotted(expr.func)
        if raw is None:
            continue
        resolved = graph.resolve_call(func, raw)
        if resolved is not None:
            yield resolved, expr


def _reaches(
    nodes: list[dataflow.CfgNode],
    sources: set[int],
    target: int,
    barriers: set[int],
) -> bool:
    """True when ``target`` is reachable from any source avoiding barriers.

    Barrier nodes are never *expanded* (a path stops there), but a source
    that is itself a barrier still emits its successors — the convention
    matches the common ``handle.write(...); fsync(handle)`` shape where
    the effect order inside one node is write-then-sync.
    """
    stack = [succ for source in sources for succ in nodes[source].succs]
    seen: set[int] = set()
    while stack:
        index = stack.pop()
        if index in seen:
            continue
        seen.add(index)
        if index == target:
            return True
        if index in barriers:
            continue
        stack.extend(nodes[index].succs)
    return False


def _mentions(sketch: str, token: str) -> bool:
    """True when a ``/``-joined sketch contains ``token`` as a segment."""
    return token in sketch.split("/")


@registry.register_project
class UnsyncedRenameSourceRule(ProjectRule):
    """DUR001: rename can commit a source file that was never fsynced."""

    code = "DUR001"
    summary = (
        "atomic rename whose source file can be written without "
        "flush+fsync on some path (power loss commits a torn file)"
    )
    severity = Severity.ERROR

    def check_project(self, graph) -> Iterator[tuple[str, int, int, str]]:
        index = graph.effect_index()
        for func in _repro_functions(graph):
            summary = index.effects(func.qualname)
            if summary is None:
                continue
            yield from self._journal_writes(index, func, summary)
            renames = summary.by_kind("rename")
            if renames:
                yield from self._rename_sources(graph, index, func, summary, renames)

    def _journal_writes(self, index, func, summary):
        """A journal-file append in a function that never reaches fsync."""
        if "fsync" in summary.transitive:
            return
        for effect in summary.by_kind("write"):
            sketch = f"{effect.target}/{effect.path}".lower()
            if "journal" in sketch:
                yield (
                    func.path,
                    effect.lineno,
                    effect.col,
                    f"'{func.qualname}' appends to the journal file "
                    f"'{effect.target}' but never flushes+fsyncs it — a "
                    "power loss silently drops the write-ahead record; "
                    "call repro.faults.fsio.fsync_file(handle) after the "
                    "write",
                )

    def _rename_sources(self, graph, index, func, summary, renames):
        cfg = _cfg_with_lines(func)
        for rename in renames:
            src = rename.target
            if not src:
                continue
            # (a) write_text/write_bytes of the source: buffered-or-not,
            # the Path API offers no fsync, so the rename always races.
            for effect in summary.by_kind("write_file"):
                if effect.path == src:
                    yield (
                        func.path,
                        rename.lineno,
                        rename.col,
                        f"'{func.qualname}' renames '{src}' after writing "
                        "it with write_text/write_bytes, which cannot "
                        "fsync — use repro.faults.fsio.atomic_write_text "
                        "(open + fsync_file + os.replace + fsync_dir)",
                    )
            # (b) an open handle on the source: CFG check that every
            # write-to-handle path passes a fsync barrier first.
            if cfg is None:
                continue
            nodes, line_to_node = cfg
            for opened in summary.by_kind("open_write", "open_append"):
                if opened.path != src or not opened.target:
                    continue
                handle = opened.target
                write_nodes = {
                    line_to_node[e.lineno]
                    for e in summary.by_kind("write")
                    if e.target == handle and e.lineno in line_to_node
                }
                rename_node = line_to_node.get(rename.lineno)
                if not write_nodes or rename_node is None:
                    continue
                barriers = {
                    line_to_node[e.lineno]
                    for e in summary.by_kind("fsync", "dir_fsync")
                    if _mentions(e.target, handle) and e.lineno in line_to_node
                }
                for node_index, node in enumerate(nodes):
                    for callee, call in _node_calls(graph, func, node):
                        if "fsync" not in index.transitive(callee):
                            continue
                        args = "/".join(path_tokens(arg) for arg in call.args)
                        if _mentions(args, handle):
                            barriers.add(node_index)
                if _reaches(nodes, write_nodes, rename_node, barriers):
                    yield (
                        func.path,
                        rename.lineno,
                        rename.col,
                        f"'{func.qualname}' renames '{src}' while a write "
                        f"to its handle '{handle}' can reach the rename "
                        "without a flush+fsync — a power loss commits a "
                        "torn file; fsync_file(handle) before the rename "
                        "on every path",
                    )
            # (c) a callee wrote the source and cannot have fsynced it.
            for node in nodes:
                for callee, call in _node_calls(graph, func, node):
                    transitive = index.transitive(callee)
                    if "fsync" in transitive or not (transitive & _WRITE_KINDS):
                        continue
                    args = "/".join(path_tokens(arg) for arg in call.args)
                    if src and src in args.split("/"):
                        yield (
                            func.path,
                            rename.lineno,
                            rename.col,
                            f"'{func.qualname}' renames '{src}' after "
                            f"'{callee}' wrote it without any fsync in its "
                            "call tree — the rename can commit unsynced "
                            "data; fsync inside the writer or switch to "
                            "repro.faults.fsio.atomic_write_text",
                        )


@registry.register_project
class CommitPointInPlaceRule(ProjectRule):
    """DUR002: commit-point file truncated in place on its final path."""

    code = "DUR002"
    summary = (
        "commit-point file (manifest/endpoint/journal/hits/checkpoint) "
        "written in place instead of temp-file + atomic rename"
    )
    severity = Severity.ERROR

    def check_project(self, graph) -> Iterator[tuple[str, int, int, str]]:
        index = graph.effect_index()
        for func in _repro_functions(graph):
            summary = index.effects(func.qualname)
            if summary is None:
                continue
            for effect in summary.by_kind("write_file", "open_write"):
                hint = self._commit_hint(effect.path)
                if hint is None:
                    continue
                yield (
                    func.path,
                    effect.lineno,
                    effect.col,
                    f"'{func.qualname}' writes the {hint} file in place on "
                    "its final path — a kill mid-write destroys the old "
                    "committed state; write a temp file in the same "
                    "directory and os.replace it "
                    "(repro.faults.fsio.atomic_write_text)",
                )
            # Interprocedural: handing a commit-point path to a callee
            # that writes but never renames is the same in-place truncation
            # one hop away.
            fn_ast = dataflow.function_at(func.path, func.lineno)
            if fn_ast is None:
                continue
            nodes = dataflow.build_cfg(fn_ast.body)
            for node in nodes:
                for callee, call in _node_calls(graph, func, node):
                    transitive = index.transitive(callee)
                    if "rename" in transitive or not (
                        transitive & {"open_write", "write_file"}
                    ):
                        continue
                    for arg in call.args:
                        sketch = path_tokens(arg)
                        hint = self._commit_hint(sketch)
                        if hint is None:
                            continue
                        yield (
                            func.path,
                            call.lineno,
                            call.col_offset,
                            f"'{func.qualname}' hands the {hint} path to "
                            f"'{callee}', which writes it in place (no "
                            "atomic rename in its call tree) — route the "
                            "write through "
                            "repro.faults.fsio.atomic_write_text",
                        )
                        break

    @staticmethod
    def _commit_hint(sketch: str) -> str | None:
        if not sketch or is_tempish(sketch):
            return None
        for hint in _COMMIT_POINT_HINTS:
            if hint in sketch:
                return hint
        return None


@registry.register_project
class JournalOrderingRule(ProjectRule):
    """DUR003: store mutation reachable without the journal append first."""

    code = "DUR003"
    summary = (
        "store mutation reachable from function entry without a "
        "dominating MutationJournal.append (write-ahead ordering broken)"
    )
    severity = Severity.ERROR

    def check_project(self, graph) -> Iterator[tuple[str, int, int, str]]:
        index = graph.effect_index()
        for func in _repro_functions(graph):
            summary = index.effects(func.qualname)
            if summary is None or "journal_append" not in summary.own:
                continue
            cfg = _cfg_with_lines(func)
            if cfg is None:
                continue
            nodes, line_to_node = cfg
            barriers = {
                line_to_node[e.lineno]
                for e in summary.by_kind("journal_append")
                if e.lineno in line_to_node
            }
            for node_index, node in enumerate(nodes):
                # `if self._journal is not None:` headers bless both arms:
                # the no-journal arm is the memory-only configuration.
                if isinstance(node.stmt, (ast.If, ast.While)) and "journal" in (
                    path_tokens(node.stmt.test)
                ):
                    barriers.add(node_index)
            if not barriers:
                continue
            entry_sources = {0} if nodes else set()
            # An append (or blessing guard) as the very first statement
            # dominates every later node: _reaches lets a *source* barrier
            # emit successors (the write-then-sync convention), which is
            # wrong for the entry — block outright instead.
            entry_blocked = 0 in barriers
            for node_index, node in enumerate(nodes):
                mutation = self._mutation_reason(
                    graph, index, func, summary, node, line_to_node, node_index
                )
                if mutation is None:
                    continue
                if node_index == 0 or (
                    not entry_blocked
                    and _reaches(nodes, entry_sources, node_index, barriers)
                ):
                    lineno, reason = mutation
                    yield (
                        func.path,
                        lineno,
                        0,
                        f"'{func.qualname}' journals with "
                        "MutationJournal.append but {0} is reachable from "
                        "entry without passing the append — a kill on that "
                        "path loses the mutation with no replay record; "
                        "append to the journal before mutating".format(reason),
                    )

    def _mutation_reason(
        self, graph, index, func, summary, node, line_to_node, node_index
    ):
        for effect in summary.effects:
            if (
                effect.kind in _MUTATION_KINDS
                and line_to_node.get(effect.lineno) == node_index
            ):
                return effect.lineno, f"the {effect.kind} at line {effect.lineno}"
        for callee, call in _node_calls(graph, func, node):
            if "MutationJournal" in callee:
                continue
            if index.transitive(callee) & _MUTATION_KINDS:
                return call.lineno, f"the persisting call to '{callee}'"
        return None


@registry.register_project
class RenameWithoutDirFsyncRule(ProjectRule):
    """DUR004: atomic rename never followed by a directory fsync."""

    code = "DUR004"
    summary = (
        "atomic rename with no directory fsync in the function's call "
        "tree (the rename itself is lost on power loss)"
    )
    severity = Severity.WARNING

    def check_project(self, graph) -> Iterator[tuple[str, int, int, str]]:
        index = graph.effect_index()
        for func in _repro_functions(graph):
            summary = index.effects(func.qualname)
            if summary is None or "dir_fsync" in summary.transitive:
                continue
            for rename in summary.by_kind("rename"):
                yield (
                    func.path,
                    rename.lineno,
                    rename.col,
                    f"'{func.qualname}' renames '{rename.target}' onto "
                    f"'{rename.path}' with no directory fsync anywhere in "
                    "its call tree — the new directory entry survives "
                    "SIGKILL but not power loss; call "
                    "repro.faults.fsio.fsync_dir(parent) after the rename, "
                    "or document why losing the rename is harmless with an "
                    "inline disable",
                )


@registry.register_project
class TornTailReaderRule(ProjectRule):
    """DUR005: JSONL line loop parsing without a torn-tail guard."""

    code = "DUR005"
    summary = (
        "per-line json.loads over an append-only JSONL file with no "
        "try/except torn-tail guard inside the loop"
    )
    severity = Severity.ERROR

    def check_project(self, graph) -> Iterator[tuple[str, int, int, str]]:
        index = graph.effect_index()
        for func in _repro_functions(graph):
            summary = index.effects(func.qualname)
            if summary is None:
                continue
            for effect in summary.by_kind("jsonl_read_unguarded"):
                yield (
                    func.path,
                    effect.lineno,
                    effect.col,
                    f"'{func.qualname}' json.loads each line with no "
                    "try/except in the loop — a torn final line (the "
                    "normal state after a kill mid-append) raises and "
                    "throws away every committed record; guard the parse "
                    "and stop/skip at the first unparsable line",
                )
