"""FLT — fault-tolerance rules for pool-driving code.

The recovery layer (:mod:`repro.faults.recovery`) exists because a
process-pool worker can die or hang at any moment.  Driver code that
blocks on a future with no timeout re-introduces exactly the hang the
layer removes: a worker lost mid-task leaves the parent waiting forever,
and no retry/rebuild policy ever gets a chance to run.

- **FLT001** — an unbounded wait on a pool future: ``fut.result()`` /
  ``fut.exception()`` with no ``timeout``, or ``concurrent.futures.wait``
  /``as_completed`` without a ``timeout=`` keyword.  Bounded waits
  (``result(timeout=0)`` after ``wait()`` reports the future done, or a
  ``wait(..., timeout=...)`` poll loop) express the same control flow and
  stay recoverable.

The rule scopes itself to library code (``src/repro``): tests may block
on futures they fully control.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.engine import ModuleContext, Rule, registry
from repro.devtools.findings import Severity

#: Future methods that block until the worker responds.
_BLOCKING_METHODS = frozenset({"result", "exception"})
#: Receiver-name fragments that mark a variable as a future.
_FUTURE_RECEIVERS = ("fut", "future")
#: Module-level waiters that accept (and should get) a timeout.
_WAITER_FUNCS = frozenset(
    {"concurrent.futures.wait", "concurrent.futures.as_completed"}
)


def _future_receiver(func: ast.expr) -> str | None:
    """The receiver name of ``<future>.result/.exception``, if it is one."""
    if not isinstance(func, ast.Attribute) or func.attr not in _BLOCKING_METHODS:
        return None
    receiver = func.value
    if isinstance(receiver, ast.Name):
        name = receiver.id
    elif isinstance(receiver, ast.Attribute):
        name = receiver.attr
    else:
        return None
    lowered = name.lower()
    if any(hint in lowered for hint in _FUTURE_RECEIVERS):
        return name
    return None


def _has_timeout(node: ast.Call) -> bool:
    if any(kw.arg == "timeout" for kw in node.keywords):
        return True
    # ``result``/``exception`` take timeout as the sole positional too.
    return bool(node.args) and isinstance(node.func, ast.Attribute)


@registry.register
class UnboundedFutureWait(Rule):
    code = "FLT001"
    summary = "unbounded wait on a process-pool future"
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        if not ctx.is_repro_source:
            return
        receiver = _future_receiver(node.func)
        if receiver is not None and not _has_timeout(node):
            yield (
                node,
                f"'{receiver}.{node.func.attr}()' blocks forever if the worker "
                "died; pass timeout= (e.g. result(timeout=0) once wait() "
                "reports the future done) so recovery can intervene",
            )
            return
        resolved = ctx.resolve(node.func)
        if resolved in _WAITER_FUNCS and not any(
            kw.arg == "timeout" for kw in node.keywords
        ):
            yield (
                node,
                f"{resolved}() without timeout= never wakes if every in-flight "
                "worker hangs; bound the wait so timeout/retry policies can run",
            )
