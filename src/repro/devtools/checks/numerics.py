"""NUM — big-integer hygiene rules.

RSA moduli in this codebase are 512-2048-bit Python ints; the factoring
math (``repro.numt``, ``repro.core``) is exact by construction.  A float
creeping in truncates to 53 bits of mantissa and the corruption is silent
— ``math.sqrt`` of a 1024-bit modulus "works" and returns garbage.

- **NUM001** — float-producing operations (true division ``/``,
  ``float()``, ``math.sqrt``) applied to variables named like moduli or
  primes.  Use ``//``, :func:`math.isqrt` (wrapped by
  ``repro.numt.arith``), or keep ratios in exact ints until the final
  report formats them.

The name heuristic is deliberately narrow (``modulus``/``moduli``/
``prime``/``primes`` and ``*_modulus``-style suffixes): counters like
``primes_examined`` or unrelated short names never match.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.engine import ModuleContext, Rule, registry
from repro.devtools.findings import Severity

_EXACT_NAMES = frozenset({"modulus", "moduli", "prime", "primes"})
_SUFFIXES = ("_modulus", "_moduli", "_prime", "_primes")


def _bigint_name(node: ast.expr) -> str | None:
    """The identifier, if this expression names a modulus/prime variable."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    if name in _EXACT_NAMES or name.endswith(_SUFFIXES):
        return name
    return None


@registry.register
class FloatOnBigint(Rule):
    code = "NUM001"
    summary = "float-producing operation on a modulus/prime variable"
    severity = Severity.ERROR
    node_types = (ast.BinOp, ast.Call)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        if isinstance(node, ast.BinOp):
            if not isinstance(node.op, ast.Div):
                return
            for side in (node.left, node.right):
                name = _bigint_name(side)
                if name is not None:
                    yield (
                        node,
                        f"true division on '{name}' produces a float (53-bit "
                        "mantissa) — use // for exact arithmetic, or convert "
                        "explicitly only when formatting a report",
                    )
                    return
        elif isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            target = None
            if isinstance(node.func, ast.Name) and node.func.id == "float":
                target = "float()"
            elif resolved == "math.sqrt":
                target = "math.sqrt()"
            if target is None or not node.args:
                return
            name = _bigint_name(node.args[0])
            if name is not None:
                suggestion = (
                    "math.isqrt / repro.numt.arith"
                    if target == "math.sqrt()"
                    else "exact int arithmetic"
                )
                yield (
                    node,
                    f"{target} on '{name}' truncates a big integer to 53 bits of "
                    f"mantissa; use {suggestion}",
                )
