"""PAR — process-pool / picklability rules.

The clustered batch-GCD (``repro.core.clustered``) ships its ``k**2``
tasks across a :class:`~concurrent.futures.ProcessPoolExecutor`.  Work
submitted to a process pool is pickled, and two common Python idioms fail
that boundary only at runtime, on the worker, with an opaque traceback:

- **PAR001** — a ``lambda`` or a function defined *inside another
  function* passed to ``submit``/``map``.  Neither pickles; pool entry
  points must be module-level callables (see ``_run_task``).
- **PAR002** — mutable default arguments (``def f(x=[])``).  The default
  is created once per process, so parent and workers silently diverge the
  moment anyone mutates it — on top of the classic shared-state bug.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.engine import ModuleContext, Rule, registry
from repro.devtools.findings import Severity

_POOL_METHODS = frozenset({"submit", "map"})
_POOLISH_RECEIVERS = ("pool", "executor")
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


def _looks_like_pool(func: ast.expr) -> bool:
    """Heuristic: is this ``<receiver>.submit/<receiver>.map`` on a pool?

    ``submit`` is specific enough to always count; ``map`` is common on
    other objects, so it only counts when the receiver is named like a
    pool/executor.
    """
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr == "submit":
        return True
    if func.attr != "map":
        return False
    receiver = func.value
    if isinstance(receiver, ast.Name):
        lowered = receiver.id.lower()
    elif isinstance(receiver, ast.Attribute):
        lowered = receiver.attr.lower()
    else:
        return False
    return any(hint in lowered for hint in _POOLISH_RECEIVERS)


@registry.register
class UnpicklablePoolCallable(Rule):
    code = "PAR001"
    summary = "lambda/closure handed to ProcessPoolExecutor submit/map"
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        if not isinstance(node.func, ast.Attribute) or node.func.attr not in _POOL_METHODS:
            return
        if not _looks_like_pool(node.func):
            return
        for arg in node.args:
            if isinstance(arg, ast.Lambda):
                yield (
                    arg,
                    "lambda passed to a process pool cannot pickle across the "
                    "worker boundary; hoist it to a module-level function",
                )
            elif isinstance(arg, ast.Name) and ctx.is_nested_function(arg.id):
                yield (
                    arg,
                    f"'{arg.id}' is defined inside an enclosing function; nested "
                    "functions cannot pickle across the process-pool boundary — "
                    "hoist it to module level (see core.clustered._run_task)",
                )


@registry.register
class MutableDefaultArgument(Rule):
    code = "PAR002"
    summary = "mutable default argument"
    severity = Severity.ERROR
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        args = node.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_FACTORIES
            )
            if mutable:
                yield (
                    default,
                    "mutable default argument is created once and shared by every "
                    "call (and independently per pool worker); default to None "
                    "and construct inside the body",
                )
