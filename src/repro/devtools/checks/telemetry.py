"""TEL — telemetry discipline rules.

The telemetry layer (ARCHITECTURE.md, "Where to add instrumentation")
has two conventions these rules enforce:

- **TEL001** — a ``span(...)``/``timer(...)`` call whose handle is
  discarded.  Both return context managers; as a bare expression
  statement nothing is entered, nothing is timed, and the bug is silent —
  reports simply miss the stage.  The fix is ``with ...: ...``.
- **TEL002** — non-canonical metric names.  Span/counter/gauge/timer
  names are dotted ``stage.substage`` identifiers
  (``batch_gcd.products``, ``scans.records``); anything else (spaces,
  camelCase, leading dots) fragments the merged
  :class:`~repro.telemetry.report.RunReport` across runs.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.devtools.engine import ModuleContext, Rule, registry
from repro.devtools.findings import Severity

_CONTEXT_INSTRUMENTS = frozenset({"span", "timer"})
_NAMED_INSTRUMENTS = frozenset({"span", "timer", "counter", "gauge", "observe"})
_CANONICAL_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")


def _instrument_name(func: ast.expr) -> str | None:
    """The instrument being called, for Name and Attribute spellings."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@registry.register
class DiscardedSpanHandle(Rule):
    code = "TEL001"
    summary = "span()/timer() opened without `with` (handle discarded)"
    severity = Severity.ERROR
    node_types = (ast.Expr,)

    def check(self, node: ast.Expr, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        name = _instrument_name(call.func)
        if name in _CONTEXT_INSTRUMENTS:
            yield (
                node,
                f"{name}(...) returns a context manager; as a bare statement the "
                "handle is discarded and nothing is recorded — use "
                f"`with {name}(...):`",
            )


@registry.register
class NonCanonicalMetricName(Rule):
    code = "TEL002"
    summary = "metric name is not dotted lower_snake (stage.substage)"
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        name = _instrument_name(node.func)
        if name not in _NAMED_INSTRUMENTS or not node.args:
            return
        first = node.args[0]
        if not isinstance(first, ast.Constant) or not isinstance(first.value, str):
            return
        metric = first.value
        if not _CANONICAL_NAME.match(metric):
            yield (
                first,
                f"metric name {metric!r} is not canonical; use dotted lower_snake "
                "`stage.substage` identifiers (e.g. 'batch_gcd.products') so "
                "merged RunReports aggregate instead of fragmenting",
            )
