"""Intraprocedural CFG and dataflow for the async-safety rules.

The whole-program graph (:mod:`repro.devtools.graph`) answers *which*
functions run on the event loop; this module answers what happens *inside*
one function body.  It builds a statement-level control-flow graph —
enough structure for ``if``/loops/``try``/``with``, with conservative
edges — and runs two analyses over it:

- :func:`rmw_hazards` (ASY004): a read of shared state (a ``self``
  attribute or a mutable module global) that can reach an ``await``
  that can reach a write of the same state.  Between the read and the
  write every other task on the loop gets to run, so the
  read-modify-write is not atomic; functions that take an ``async
  with ...lock...`` guard are exempt.
- :func:`taint_findings` (XTNT001): a worklist taint pass seeding the
  function's parameters (the untrusted HTTP surface), propagating
  through attribute access, subscripts, f-strings, and ordinary calls,
  and *clearing* through validator-shaped calls (``parse_*``,
  ``validate_*``, ``sanitize_*``, ``clean_*``).  Sinks are path
  construction (``Path``/``os.path.join``/``open``) and unbounded
  big-int parsing (``int(x, 16)``).

Function ASTs are loaded lazily per file and cached on
``(mtime, size)`` signatures, mirroring the graph cache, so the rules
re-parse nothing on a second lint in the same process.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

__all__ = [
    "CfgNode",
    "Hazard",
    "TaintFinding",
    "build_cfg",
    "function_at",
    "node_reachability",
    "rmw_hazards",
    "taint_findings",
    "walk_statement_exprs",
]

FunctionAst = ast.FunctionDef | ast.AsyncFunctionDef

_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault", "pop",
        "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
    }
)
_SANITIZER_PREFIXES = ("parse", "validate", "sanitize", "clean")
#: Alias-resolved callables that build filesystem paths from their args.
_PATH_SINKS = frozenset(
    {
        "pathlib.Path",
        "pathlib.PurePath",
        "pathlib.PurePosixPath",
        "pathlib.PureWindowsPath",
        "os.path.join",
        "posixpath.join",
        "ntpath.join",
        "os.fspath",
    }
)


# ---------------------------------------------------------------------------
# function lookup (lazy, cached per file)
# ---------------------------------------------------------------------------

_AST_CACHE: dict[str, tuple[tuple[int, int], dict[int, FunctionAst]]] = {}


def function_at(path: str, lineno: int) -> FunctionAst | None:
    """The function/method whose ``def`` sits at ``lineno`` in ``path``."""
    try:
        stat = Path(path).stat()
        signature = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        return None
    cached = _AST_CACHE.get(path)
    if cached is None or cached[0] != signature:
        try:
            tree = ast.parse(Path(path).read_text(), filename=path)
        except (OSError, SyntaxError):
            return None
        index: dict[int, FunctionAst] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                index.setdefault(node.lineno, node)
        _AST_CACHE.clear()  # keep at most a handful of live files
        _AST_CACHE[path] = (signature, index)
        cached = _AST_CACHE[path]
    return cached[1].get(lineno)


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class _Node:
    stmt: ast.stmt
    succs: set[int] = field(default_factory=set)


class _CfgBuilder:
    """Flatten a statement list into nodes with successor edges.

    Compound statements contribute one node for their *header* (the test
    or iterable expression); their bodies become separate nodes.  Loops
    get a back edge, ``break``/``continue`` jump to the loop exit/head,
    and exception handlers are entered from the ``try`` header — a
    deliberate under-approximation that keeps path explosion down.
    """

    def __init__(self) -> None:
        self.nodes: list[_Node] = []
        self._loops: list[tuple[int, set[int]]] = []  # (head index, break exits)

    def build(self, body: list[ast.stmt]) -> list[_Node]:
        self._block(body, set())
        return self.nodes

    def _add(self, stmt: ast.stmt, preds: set[int]) -> int:
        self.nodes.append(_Node(stmt))
        index = len(self.nodes) - 1
        for pred in preds:
            self.nodes[pred].succs.add(index)
        return index

    def _block(self, body: Iterable[ast.stmt], preds: set[int]) -> set[int]:
        for stmt in body:
            preds = self._statement(stmt, preds)
        return preds

    def _statement(self, stmt: ast.stmt, preds: set[int]) -> set[int]:
        index = self._add(stmt, preds)
        entry = {index}
        if isinstance(stmt, ast.If):
            body_exits = self._block(stmt.body, entry)
            orelse_exits = self._block(stmt.orelse, entry) if stmt.orelse else entry
            return body_exits | orelse_exits
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._loops.append((index, set()))
            body_exits = self._block(stmt.body, entry)
            for exit_index in body_exits:
                self.nodes[exit_index].succs.add(index)  # loop back edge
            _, breaks = self._loops.pop()
            orelse_exits = self._block(stmt.orelse, entry) if stmt.orelse else entry
            return orelse_exits | breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._block(stmt.body, entry)
        if isinstance(stmt, ast.Try):
            body_exits = self._block(stmt.body, entry)
            handler_exits: set[int] = set()
            for handler in stmt.handlers:
                handler_exits |= self._block(handler.body, entry)
            orelse_exits = (
                self._block(stmt.orelse, body_exits) if stmt.orelse else body_exits
            )
            exits = orelse_exits | handler_exits
            if stmt.finalbody:
                exits = self._block(stmt.finalbody, exits)
            return exits
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return set()
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][1].add(index)
            return set()
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self.nodes[index].succs.add(self._loops[-1][0])
            return set()
        return entry


def _reachability(nodes: list[_Node]) -> list[set[int]]:
    """Strict (successor-closure) reachability per node; small graphs."""
    reach = [set(node.succs) for node in nodes]
    changed = True
    while changed:
        changed = False
        for index, node in enumerate(nodes):
            merged = set(reach[index])
            for succ in node.succs:
                merged |= reach[succ]
            if merged != reach[index]:
                reach[index] = merged
                changed = True
    return reach


def _header_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """The expressions a CFG node actually evaluates (not nested bodies)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: list[ast.AST] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Try)
    ):
        return []
    return [stmt]


def _walk_exprs(stmt: ast.stmt) -> Iterable[ast.AST]:
    for root in _header_exprs(stmt):
        yield from ast.walk(root)


# -- public seams for other analyses (effects, durability) ------------------

#: A CFG node: one statement plus its successor indices.
CfgNode = _Node


def build_cfg(body: list[ast.stmt]) -> list[_Node]:
    """Statement-level CFG over a function body (see :class:`_CfgBuilder`)."""
    return _CfgBuilder().build(body)


def node_reachability(nodes: list[_Node]) -> list[set[int]]:
    """Strict successor-closure reachability per CFG node."""
    return _reachability(nodes)


def walk_statement_exprs(stmt: ast.stmt) -> Iterable[ast.AST]:
    """Walk the expressions a CFG node evaluates itself (not nested bodies)."""
    return _walk_exprs(stmt)


# ---------------------------------------------------------------------------
# ASY004: read-modify-write across an await
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Hazard:
    """One shared name read before an ``await`` and written after it."""

    name: str  #: "self._jobs" or a module-global name
    read_line: int
    await_line: int
    write_line: int


def _shared_name(expr: ast.AST, globals_: frozenset[str]) -> str | None:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return f"self.{expr.attr}"
    if isinstance(expr, ast.Name) and expr.id in globals_:
        return expr.id
    return None


def _node_facts(
    stmt: ast.stmt, globals_: frozenset[str]
) -> tuple[set[str], set[str], bool]:
    """(shared reads, shared writes, has await) for one CFG node."""
    reads: set[str] = set()
    writes: set[str] = set()
    has_await = False
    write_roots: list[ast.AST] = []
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            for node in ast.walk(target):
                write_roots.append(node)
    for node in _walk_exprs(stmt):
        if isinstance(node, ast.Await):
            has_await = True
        name = _shared_name(node, globals_)
        if name is None:
            continue
        is_store = isinstance(
            getattr(node, "ctx", None), (ast.Store, ast.Del)
        ) or any(node is root for root in write_roots)
        # A subscript/attribute store like self._jobs[k] = v writes the
        # container *and* reads the receiver; record both conservatively.
        if is_store or _is_store_receiver(node, write_roots):
            writes.add(name)
        if not is_store:
            reads.add(name)
        # Mutator method calls (self._pending.pop(...)) write the receiver.
    for node in _walk_exprs(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            name = _shared_name(node.func.value, globals_)
            if name is not None:
                writes.add(name)
    if isinstance(stmt, ast.AugAssign):
        # x += 1 reads the old value before writing the new one.
        for node in ast.walk(stmt.target):
            name = _shared_name(node, globals_)
            if name is not None:
                reads.add(name)
    return reads, writes, has_await


def _is_store_receiver(node: ast.AST, write_roots: list[ast.AST]) -> bool:
    for root in write_roots:
        if isinstance(root, ast.Subscript) and root.value is node:
            return True
    return False


def _has_lock_guard(fn: FunctionAst) -> bool:
    """True when the body takes an ``async with``/``with`` on a lock-ish name."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                spelled = ast.unparse(item.context_expr).lower()
                if "lock" in spelled or "sem" in spelled:
                    return True
    return False


def rmw_hazards(
    fn: FunctionAst, shared_globals: Iterable[str] = ()
) -> list[Hazard]:
    """ASY004 core: shared-state read → ``await`` → write paths in ``fn``."""
    if _has_lock_guard(fn):
        return []
    globals_ = frozenset(shared_globals)
    nodes = _CfgBuilder().build(fn.body)
    facts = [_node_facts(node.stmt, globals_) for node in nodes]
    reach = _reachability(nodes)
    await_indices = [i for i, (_, _, has_await) in enumerate(facts) if has_await]
    hazards: dict[str, Hazard] = {}
    for read_index, (reads, _, _) in enumerate(facts):
        for name in sorted(reads):
            if name in hazards:
                continue
            for await_index in await_indices:
                if await_index not in reach[read_index]:
                    continue
                write_index = next(
                    (
                        i
                        for i in sorted(reach[await_index])
                        if name in facts[i][1]
                    ),
                    None,
                )
                if write_index is None:
                    continue
                hazards[name] = Hazard(
                    name=name,
                    read_line=nodes[read_index].stmt.lineno,
                    await_line=nodes[await_index].stmt.lineno,
                    write_line=nodes[write_index].stmt.lineno,
                )
                break
    return [hazards[name] for name in sorted(hazards)]


# ---------------------------------------------------------------------------
# XTNT001: parameter taint into path / big-int sinks
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TaintFinding:
    """One tainted value reaching a sink."""

    lineno: int
    col: int
    sink: str  #: human label, e.g. "path construction Path(...)"
    source: str  #: the request field/parameter the value came from


def _is_sanitizer(terminal: str | None) -> bool:
    if terminal is None:
        return False
    return terminal.lstrip("_").lower().startswith(_SANITIZER_PREFIXES)


def _call_terminal(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _dotted(expr: ast.AST) -> str | None:
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _TaintState(dict):
    """name -> source label; merge = union keeping the first label."""


def _tainted(expr: ast.AST, state: _TaintState) -> str | None:
    """The source label if ``expr`` evaluates to a tainted value."""
    if isinstance(expr, ast.Name):
        return state.get(expr.id)
    if isinstance(expr, ast.Attribute):
        return _tainted(expr.value, state)
    if isinstance(expr, ast.Subscript):
        return _tainted(expr.value, state) or _tainted(expr.slice, state)
    if isinstance(expr, ast.Await):
        return _tainted(expr.value, state)
    if isinstance(expr, ast.Starred):
        return _tainted(expr.value, state)
    if isinstance(expr, ast.Call):
        if _is_sanitizer(_call_terminal(expr)):
            return None
        if isinstance(expr.func, ast.Attribute):
            receiver = _tainted(expr.func.value, state)
            if receiver is not None:
                return receiver
        for arg in [*expr.args, *[kw.value for kw in expr.keywords]]:
            label = _tainted(arg, state)
            if label is not None:
                return label
        return None
    if isinstance(expr, ast.JoinedStr):
        for value in expr.values:
            if isinstance(value, ast.FormattedValue):
                label = _tainted(value.value, state)
                if label is not None:
                    return label
        return None
    if isinstance(expr, ast.BinOp):
        return _tainted(expr.left, state) or _tainted(expr.right, state)
    if isinstance(expr, ast.BoolOp):
        for value in expr.values:
            label = _tainted(value, state)
            if label is not None:
                return label
        return None
    if isinstance(expr, ast.IfExp):
        return _tainted(expr.body, state) or _tainted(expr.orelse, state)
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        for element in expr.elts:
            label = _tainted(element, state)
            if label is not None:
                return label
        return None
    if isinstance(expr, ast.Dict):
        for value in expr.values:
            if value is not None:
                label = _tainted(value, state)
                if label is not None:
                    return label
        return None
    return None


def _bind_targets(target: ast.expr, label: str | None, state: _TaintState) -> None:
    if isinstance(target, ast.Name):
        if label is not None:
            state.setdefault(target.id, label)
        else:
            state.pop(target.id, None)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind_targets(element, label, state)
    elif isinstance(target, ast.Starred):
        _bind_targets(target.value, label, state)


def _transfer(stmt: ast.stmt, state: _TaintState) -> _TaintState:
    out = _TaintState(state)
    if isinstance(stmt, ast.Assign):
        label = _tainted(stmt.value, out)
        for target in stmt.targets:
            _bind_targets(target, label, out)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        _bind_targets(stmt.target, _tainted(stmt.value, out), out)
    elif isinstance(stmt, ast.AugAssign):
        label = _tainted(stmt.value, out)
        if label is not None and isinstance(stmt.target, ast.Name):
            out.setdefault(stmt.target.id, label)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        _bind_targets(stmt.target, _tainted(stmt.iter, out), out)
    return out


def _sink_label(
    call: ast.Call,
    state: _TaintState,
    resolve: Callable[[str], str],
) -> tuple[str, str] | None:
    """(sink description, source label) when a tainted value hits a sink."""
    raw = _dotted(call.func)
    resolved = resolve(raw) if raw is not None else None
    terminal = _call_terminal(call)
    positional = list(call.args)
    if resolved in _PATH_SINKS or terminal == "Path":
        for arg in positional:
            label = _tainted(arg, state)
            if label is not None:
                return (f"path construction {terminal}(...)", label)
        return None
    if raw == "open" and resolved == "open" and positional:
        label = _tainted(positional[0], state)
        if label is not None:
            return ("file open(...)", label)
        return None
    if (
        raw == "int"
        and len(positional) >= 2
        and isinstance(positional[1], ast.Constant)
        and positional[1].value == 16
    ):
        label = _tainted(positional[0], state)
        if label is not None:
            return ("unbounded big-int parse int(..., 16)", label)
    return None


def taint_findings(
    fn: FunctionAst,
    resolve: Callable[[str], str] | None = None,
) -> list[TaintFinding]:
    """XTNT001 core: parameter taint reaching path/big-int sinks in ``fn``.

    ``resolve`` maps a raw dotted spelling to its alias-resolved form
    (``Path`` -> ``pathlib.Path``); identity when omitted.
    """
    resolver = resolve if resolve is not None else lambda raw: raw
    seeds = _TaintState()
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg not in {"self", "cls"}:
            seeds[arg.arg] = arg.arg
    if not seeds:
        return []
    nodes = _CfgBuilder().build(fn.body)
    preds: list[list[int]] = [[] for _ in nodes]
    for index, node in enumerate(nodes):
        for succ in node.succs:
            preds[succ].append(index)
    in_states: list[_TaintState] = [_TaintState() for _ in nodes]
    out_states: list[_TaintState] = [_TaintState() for _ in nodes]
    # The first statement is the entry even when a loop back-edge gives it
    # predecessors; pred-less nodes (handler entries) also seed fresh.
    entry_indices = {0} | {
        index for index, incoming in enumerate(preds) if not incoming
    }
    worklist = list(range(len(nodes)))
    while worklist:
        index = worklist.pop(0)
        merged = _TaintState(seeds) if index in entry_indices else _TaintState()
        for pred in preds[index]:
            for name, label in out_states[pred].items():
                merged.setdefault(name, label)
        in_states[index] = merged
        new_out = _transfer(nodes[index].stmt, merged)
        if new_out != out_states[index]:
            out_states[index] = new_out
            for succ in sorted(nodes[index].succs):
                if succ not in worklist:
                    worklist.append(succ)
    findings: dict[tuple[int, int], TaintFinding] = {}
    for index, node in enumerate(nodes):
        for expr in _walk_exprs(node.stmt):
            if not isinstance(expr, ast.Call):
                continue
            hit = _sink_label(expr, in_states[index], resolver)
            if hit is None:
                continue
            sink, source = hit
            key = (expr.lineno, expr.col_offset)
            findings.setdefault(
                key,
                TaintFinding(
                    lineno=expr.lineno,
                    col=expr.col_offset,
                    sink=sink,
                    source=source,
                ),
            )
    return [findings[key] for key in sorted(findings)]
