"""Interprocedural filesystem-effect analysis for the durability rules.

The whole-program graph (:mod:`repro.devtools.graph`) knows *which*
functions call which; the CFG layer (:mod:`repro.devtools.dataflow`)
knows what order statements run in.  This module adds the third fact the
crash-consistency rules (DUR001-DUR005 in
:mod:`repro.devtools.checks.durability`) need: what each function *does
to the filesystem*.

Per function, one AST pass over its own statements (nested ``def``/
``class`` bodies belong to their own graph nodes) extracts a list of
:class:`FsEffect` records — opens-for-write with a path sketch, writes,
flushes, fsyncs (file- and directory-level), temp-file creation, atomic
renames, :class:`~repro.faults.journal.MutationJournal` operations, and
JSONL-per-line reads with or without a torn-tail guard.  Path and
receiver expressions are reduced to lowercase **token sketches**
(``self.directory / _MANIFEST`` becomes ``"self/directory/_manifest"``)
— enough to match a rename's source against the open that produced it
without pretending to evaluate paths.

Effect *kinds* then propagate bottom-up over the resolved call graph to
a fixpoint: a function's ``transitive`` kind set is its own kinds plus
everything its project callees can do.  That is what lets DUR004 accept
``server._write_endpoint_file`` because it routes through
``repro.faults.fsio.atomic_write_text`` (whose own effects include the
directory fsync), and lets DUR001 treat a call to ``fsync_file(handle)``
as a durability barrier without special-casing the helper's name.

The per-function summaries are deterministic (sorted qualnames, source-
order effects) and exported in the graph JSON payload under
``"effects"`` (schema version 3).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.devtools.dataflow import FunctionAst, function_at, walk_statement_exprs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (graph imports us lazily)
    from repro.devtools.graph import FunctionNode, ProjectGraph

__all__ = [
    "EFFECT_KINDS",
    "EffectIndex",
    "FsEffect",
    "FunctionEffects",
    "path_tokens",
]

#: Every effect kind the extractor can emit (the export vocabulary).
EFFECT_KINDS = frozenset(
    {
        "open_write",  # open(path, "w"/"x") or path.open("w")
        "open_append",  # open(path, "a") or path.open("a")
        "write",  # handle.write(...)
        "write_file",  # path.write_text(...) / path.write_bytes(...)
        "flush",  # handle.flush()
        "fsync",  # os.fsync(fd) on a file descriptor
        "dir_fsync",  # os.fsync(fd) where fd came from os.open(..., O_DIRECTORY)
        "temp_create",  # an open-for-write whose path sketch is temp-like
        "rename",  # os.replace/os.rename or src.replace(dst)/src.rename(dst)
        "journal_append",  # MutationJournal.append (or a journal-ish receiver)
        "journal_commit",  # MutationJournal.commit
        "journal_clear",  # MutationJournal.clear
        "jsonl_read",  # per-line json.loads inside a try (torn-tail tolerant)
        "jsonl_read_unguarded",  # per-line json.loads with no try around it
    }
)

_JOURNAL_METHODS = frozenset({"append", "commit", "clear"})
_WRITE_FILE_METHODS = frozenset({"write_text", "write_bytes"})
_RENAME_OS = frozenset({"os.replace", "os.rename"})
_RENAME_METHODS = frozenset({"replace", "rename"})
_JSONL_ITER_HINTS = ("splitlines", "readlines")


def path_tokens(expr: ast.AST | None) -> str:
    """Lowercase ``/``-joined sketch of the identifiers in an expression.

    Name ids, attribute segments, and string constants all contribute, in
    source order: ``self.directory / _MANIFEST`` yields
    ``"self/directory/_manifest"``; ``path.with_suffix(".tmp")`` yields
    ``"path/with_suffix/.tmp"``.  Rules match on substring containment
    ("is this path manifest-ish / temp-ish"), never on exact paths.
    """
    if expr is None:
        return ""
    parts: list[str] = []
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            parts.append(node.id.lower())
        elif isinstance(node, ast.Attribute):
            parts.append(node.attr.lower())
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            parts.append(node.value.lower())
    return "/".join(parts)


def is_tempish(tokens: str) -> bool:
    """True when a path sketch points at a temp/scratch file."""
    return "tmp" in tokens or "temp" in tokens


def _dotted(expr: ast.AST) -> str | None:
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass(frozen=True, slots=True)
class FsEffect:
    """One filesystem-visible action at one source location.

    Attributes:
        kind: one of :data:`EFFECT_KINDS`.
        lineno: 1-based source line.
        col: 0-based column.
        target: the acting handle/receiver spelling (``"handle"``,
            ``"self._journal_file"``); for ``rename`` the *source* path
            sketch; empty when there is no meaningful actor.
        path: the path sketch the effect lands on (for ``rename`` the
            *destination*); empty when unknown.
    """

    kind: str
    lineno: int
    col: int
    target: str = ""
    path: str = ""


@dataclass(slots=True)
class FunctionEffects:
    """The effect summary of one function: local facts + propagated kinds."""

    qualname: str
    effects: tuple[FsEffect, ...]
    own: frozenset[str]
    transitive: frozenset[str] = frozenset()

    def by_kind(self, *kinds: str) -> list[FsEffect]:
        wanted = set(kinds)
        return [effect for effect in self.effects if effect.kind in wanted]


class _Extractor(ast.NodeVisitor):
    """One pre-order pass over a function's own statements.

    Nested function/class bodies are skipped — their effects belong to
    their own :class:`FunctionEffects` (the call graph already records a
    conservative edge from the parent to the nested def).
    """

    def __init__(self, graph: "ProjectGraph", func: "FunctionNode") -> None:
        self._graph = graph
        self._func = func
        self.effects: list[FsEffect] = []
        #: handle spelling -> path sketch it was opened on.
        self._handles: dict[str, str] = {}
        #: local names whose value mentions O_DIRECTORY (flag words).
        self._dir_flags: set[str] = set()
        #: local names bound to an os.open(...) directory descriptor.
        self._dir_fds: set[str] = set()
        #: id(open-call) -> the spelling it is bound to, pre-registered
        #: by Assign/With so visit_Call can attribute the handle.
        self._open_targets: dict[int, str] = {}

    # -- helpers ----------------------------------------------------------

    def _resolve_external(self, raw: str | None) -> str | None:
        if raw is None:
            return None
        return self._graph.resolve_name(self._func.module, raw)

    def _resolve_project(self, raw: str | None) -> str | None:
        if raw is None:
            return None
        return self._graph.resolve_call(self._func, raw)

    def _emit(self, kind: str, node: ast.AST, target: str = "", path: str = "") -> None:
        self.effects.append(
            FsEffect(
                kind=kind,
                lineno=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                target=target,
                path=path,
            )
        )

    def _open_effect(self, call: ast.Call) -> tuple[str, str] | None:
        """(kind, path sketch) when ``call`` opens a file for write/append."""
        raw = _dotted(call.func)
        mode_expr: ast.expr | None = None
        path_expr: ast.expr | None = None
        if self._resolve_external(raw) == "open":
            if call.args:
                path_expr = call.args[0]
            if len(call.args) >= 2:
                mode_expr = call.args[1]
        elif isinstance(call.func, ast.Attribute) and call.func.attr == "open":
            path_expr = call.func.value
            if call.args:
                mode_expr = call.args[0]
        else:
            return None
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode_expr = keyword.value
        mode = (
            mode_expr.value
            if isinstance(mode_expr, ast.Constant) and isinstance(mode_expr.value, str)
            else "r"
        )
        if "w" in mode or "x" in mode:
            kind = "open_write"
        elif "a" in mode:
            kind = "open_append"
        else:
            return None
        return kind, path_tokens(path_expr)

    def _bind_open(self, value: ast.expr, target: ast.expr) -> None:
        """Register ``target = open(...)`` / ``open(...) as target`` bindings."""
        if not isinstance(value, ast.Call):
            return
        spelling = _dotted(target)
        if spelling is None:
            return
        opened = self._open_effect(value)
        if opened is not None:
            self._handles[spelling] = opened[1]
            self._open_targets[id(value)] = spelling
            return
        # os.open(...) directory descriptors (for fsync_dir-style code).
        if self._resolve_external(_dotted(value.func)) == "os.open":
            arg_sketch = "/".join(path_tokens(arg) for arg in value.args)
            if "o_directory" in arg_sketch or any(
                flag in arg_sketch.split("/") for flag in self._dir_flags
            ):
                self._dir_fds.add(spelling)

    # -- statement hooks --------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested def: its effects belong to its own summary

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Assign(self, node: ast.Assign) -> None:
        if "o_directory" in path_tokens(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._dir_flags.add(target.id.lower())
        for target in node.targets:
            self._bind_open(node.value, target)
        self.generic_visit(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._bind_open(item.context_expr, item.optional_vars)
        self.generic_visit(node)

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_For(self, node: ast.For) -> None:
        iter_sketch = path_tokens(node.iter)
        if any(hint in iter_sketch for hint in _JSONL_ITER_HINTS):
            self._scan_jsonl_body(node.body, guarded=False)
        self.generic_visit(node)

    def _scan_jsonl_body(self, stmts: list[ast.stmt], guarded: bool) -> None:
        """Emit a jsonl_read effect per ``json.loads`` in a line loop.

        ``guarded`` flips to True inside a ``try`` body — the torn-tail
        discipline.  ``except`` handlers and ``finally`` blocks do not
        guard: a loads there is outside the protection.
        """
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.Try):
                self._scan_jsonl_body(stmt.body, guarded=True)
                for handler in stmt.handlers:
                    self._scan_jsonl_body(handler.body, guarded=guarded)
                self._scan_jsonl_body(stmt.orelse, guarded=guarded)
                self._scan_jsonl_body(stmt.finalbody, guarded=guarded)
                continue
            for field_name in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, field_name, None)
                if isinstance(nested, list) and nested and isinstance(
                    nested[0], ast.stmt
                ):
                    self._scan_jsonl_body(nested, guarded=guarded)
            # Only this statement's own (header) expressions: nested
            # statement bodies were handled by the recursion above.
            for expr in walk_statement_exprs(stmt):
                if (
                    isinstance(expr, ast.Call)
                    and self._resolve_external(_dotted(expr.func)) == "json.loads"
                ):
                    kind = "jsonl_read" if guarded else "jsonl_read_unguarded"
                    self._emit(kind, expr)

    # -- calls ------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        raw = _dotted(node.func)
        terminal = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else node.func.id
            if isinstance(node.func, ast.Name)
            else None
        )
        resolved = self._resolve_external(raw)

        opened = self._open_effect(node)
        if opened is not None:
            kind, sketch = opened
            target = self._open_targets.get(id(node), "")
            self._emit(kind, node, target=target, path=sketch)
            if is_tempish(sketch):
                self._emit("temp_create", node, target=target, path=sketch)

        elif terminal == "write" and isinstance(node.func, ast.Attribute):
            receiver = _dotted(node.func.value) or path_tokens(node.func.value)
            self._emit(
                "write", node, target=receiver, path=self._handles.get(receiver, "")
            )

        elif terminal in _WRITE_FILE_METHODS and isinstance(node.func, ast.Attribute):
            self._emit("write_file", node, path=path_tokens(node.func.value))

        elif terminal == "flush" and isinstance(node.func, ast.Attribute):
            receiver = _dotted(node.func.value) or path_tokens(node.func.value)
            self._emit("flush", node, target=receiver)

        elif resolved == "os.fsync" and node.args:
            sketch = path_tokens(node.args[0])
            is_dir = any(part in self._dir_fds for part in sketch.split("/"))
            self._emit("dir_fsync" if is_dir else "fsync", node, target=sketch)

        elif resolved in _RENAME_OS and len(node.args) >= 2:
            self._emit(
                "rename",
                node,
                target=path_tokens(node.args[0]),
                path=path_tokens(node.args[1]),
            )

        elif (
            terminal in _RENAME_METHODS
            and isinstance(node.func, ast.Attribute)
            and len(node.args) == 1
            and not node.keywords
            and not isinstance(node.func.value, ast.Constant)
            and self._resolve_project(raw) is None
        ):
            # path.replace(dst) / path.rename(dst).  str.replace takes two
            # positional args and dataclasses.replace takes keywords, so
            # neither shape lands here; a resolvable project method named
            # "rename" stays a call edge, not a filesystem effect.
            self._emit(
                "rename",
                node,
                target=path_tokens(node.func.value),
                path=path_tokens(node.args[0]),
            )

        elif (
            terminal in _JOURNAL_METHODS
            and isinstance(node.func, ast.Attribute)
            and raw is not None
        ):
            project = self._resolve_project(raw)
            receiver = _dotted(node.func.value) or path_tokens(node.func.value)
            if (project is not None and f"MutationJournal.{terminal}" in project) or (
                project is None and "journal" in receiver.lower()
            ):
                self._emit(f"journal_{terminal}", node, target=receiver)

        self.generic_visit(node)


def extract_effects(
    graph: "ProjectGraph", func: "FunctionNode", fn_ast: FunctionAst
) -> tuple[FsEffect, ...]:
    """All filesystem effects of one function body (source order)."""
    extractor = _Extractor(graph, func)
    for stmt in fn_ast.body:
        extractor.visit(stmt)
    extractor.effects.sort(key=lambda e: (e.lineno, e.col, e.kind))
    return tuple(extractor.effects)


class EffectIndex:
    """Per-function effect summaries with transitive kind propagation.

    Built once per :class:`~repro.devtools.graph.ProjectGraph` (the graph
    caches it on :meth:`~repro.devtools.graph.ProjectGraph.effect_index`)
    and shared by all five DUR rules plus the JSON export.
    """

    def __init__(self, graph: "ProjectGraph") -> None:
        self._graph = graph
        self._functions: dict[str, FunctionEffects] = {}
        # Group by path so the dataflow AST cache (one live file) is hit,
        # not thrashed; within a file, lineno order is deterministic.
        ordered = sorted(
            graph.functions.values(), key=lambda f: (f.path, f.lineno, f.qualname)
        )
        for func in ordered:
            fn_ast = function_at(func.path, func.lineno)
            effects = (
                extract_effects(graph, func, fn_ast) if fn_ast is not None else ()
            )
            self._functions[func.qualname] = FunctionEffects(
                qualname=func.qualname,
                effects=effects,
                own=frozenset(effect.kind for effect in effects),
            )
        self._propagate()

    def _propagate(self) -> None:
        """Bottom-up fixpoint: transitive kinds = own ∪ callees' transitive."""
        trans: dict[str, set[str]] = {
            qualname: set(summary.own)
            for qualname, summary in self._functions.items()
        }
        changed = True
        while changed:
            changed = False
            for qualname in sorted(trans):
                merged = set(trans[qualname])
                for callee in self._graph.functions[qualname].calls:
                    merged |= trans.get(callee, set())
                if merged != trans[qualname]:
                    trans[qualname] = merged
                    changed = True
        for qualname, kinds in trans.items():
            self._functions[qualname].transitive = frozenset(kinds)

    # -- queries ----------------------------------------------------------

    def effects(self, qualname: str) -> FunctionEffects | None:
        return self._functions.get(qualname)

    def own(self, qualname: str) -> frozenset[str]:
        summary = self._functions.get(qualname)
        return summary.own if summary is not None else frozenset()

    def transitive(self, qualname: str) -> frozenset[str]:
        summary = self._functions.get(qualname)
        return summary.transitive if summary is not None else frozenset()

    def __iter__(self) -> Iterator[FunctionEffects]:
        for qualname in sorted(self._functions):
            yield self._functions[qualname]

    # -- export -----------------------------------------------------------

    def to_payload(self) -> dict[str, dict[str, list[str]]]:
        """Deterministic JSON-ready summary: qualname -> sorted kind lists."""
        return {
            qualname: {
                "own": sorted(summary.own),
                "transitive": sorted(summary.transitive),
            }
            for qualname, summary in sorted(self._functions.items())
            if summary.transitive
        }
