"""The single-pass AST lint engine.

One :class:`_Walker` (an :class:`ast.NodeVisitor`) traverses each file
exactly once.  At every node it consults the registry's dispatch table and
runs only the rules that registered interest in that node type, so adding
rules does not add walks.  The walker also maintains the shared analysis
state every rule needs:

- an **import alias table** (``import random as r`` / ``from random import
  Random``), so rules match on *resolved* dotted names like
  ``random.Random`` instead of guessing from attribute spellings;
- a **scope stack** recording functions defined inside enclosing function
  scopes — what :mod:`repro.devtools.checks.parallel` needs to spot
  closures handed to a process pool.

Rules are small classes registered on the module-level :data:`registry`;
:meth:`Rule.check` yields ``(node, message)`` pairs and the engine turns
them into :class:`~repro.devtools.findings.Finding` objects, applying
inline suppressions (:mod:`repro.devtools.suppress`) before anything is
reported.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.devtools.findings import Finding, Severity
from repro.devtools.suppress import SuppressionIndex

__all__ = [
    "LintEngine",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "RuleRegistry",
    "registry",
]


class ModuleContext:
    """Shared per-file analysis state, updated by the walker as it descends."""

    def __init__(self, path: str, module: str, source_lines: Sequence[str]) -> None:
        self.path = path
        self.module = module
        self.source_lines = source_lines
        #: alias -> fully-qualified dotted name ("r" -> "random").
        self.imports: dict[str, str] = {}
        #: innermost-last stack of (kind, locally-defined-function-names).
        self.scopes: list[tuple[str, set[str]]] = [("module", set())]

    @property
    def is_repro_source(self) -> bool:
        """True for modules under ``src/repro`` (rules scoped by the spec)."""
        return self.module == "repro" or self.module.startswith("repro.")

    def resolve(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to a dotted name via the imports.

        ``datetime.now(...)`` after ``from datetime import datetime``
        resolves to ``datetime.datetime.now``; attribute chains rooted at
        anything that is not an imported alias resolve to ``None``, which
        keeps rules from firing on look-alike methods of local objects.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    def is_nested_function(self, name: str) -> bool:
        """True if ``name`` is a function defined inside an enclosing function."""
        return any(
            kind == "function" and name in local_funcs
            for kind, local_funcs in self.scopes
        )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding ``(node, message)`` pairs for each violation.
    """

    code: str = ""
    summary: str = ""
    severity: Severity = Severity.ERROR
    #: AST node types this rule wants to see (the dispatch key).
    node_types: tuple[type[ast.AST], ...] = ()

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[tuple[ast.AST, str]]:
        raise NotImplementedError  # pragma: no cover


class ProjectRule:
    """Base class for one *cross-module* rule.

    Project rules run once per lint invocation, after the per-file pass,
    against the whole-program :class:`~repro.devtools.graph.ProjectGraph`.
    :meth:`check_project` yields ``(path, line, col, message)`` tuples;
    the engine turns them into :class:`Finding` objects and applies the
    same inline-suppression and baseline machinery as per-file rules.
    """

    code: str = ""
    summary: str = ""
    severity: Severity = Severity.ERROR

    def check_project(
        self, graph: "object"
    ) -> Iterator[tuple[str, int, int, str]]:
        raise NotImplementedError  # pragma: no cover


class RuleRegistry:
    """The set of known rules plus the node-type dispatch table."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}
        self._dispatch: dict[type[ast.AST], list[Rule]] = {}
        self._project_rules: dict[str, ProjectRule] = {}

    def register(self, rule_cls: type[Rule]) -> type[Rule]:
        """Class decorator: instantiate and index a rule."""
        rule = rule_cls()
        if not rule.code or not rule.node_types:
            raise ValueError(f"rule {rule_cls.__name__} needs a code and node_types")
        if rule.code in self._rules or rule.code in self._project_rules:
            raise ValueError(f"duplicate rule code {rule.code}")
        self._rules[rule.code] = rule
        for node_type in rule.node_types:
            self._dispatch.setdefault(node_type, []).append(rule)
        return rule_cls

    def register_project(self, rule_cls: type[ProjectRule]) -> type[ProjectRule]:
        """Class decorator: instantiate and index a cross-module rule."""
        rule = rule_cls()
        if not rule.code:
            raise ValueError(f"rule {rule_cls.__name__} needs a code")
        if rule.code in self._rules or rule.code in self._project_rules:
            raise ValueError(f"duplicate rule code {rule.code}")
        self._project_rules[rule.code] = rule
        return rule_cls

    def rules(self) -> list[Rule]:
        return [self._rules[code] for code in sorted(self._rules)]

    def project_rules(self) -> list[ProjectRule]:
        return [self._project_rules[code] for code in sorted(self._project_rules)]

    def get(self, code: str) -> Rule | ProjectRule:
        if code in self._rules:
            return self._rules[code]
        return self._project_rules[code]

    def rules_for(self, node_type: type[ast.AST]) -> list[Rule]:
        return self._dispatch.get(node_type, [])


#: The process-wide registry every ``@registry.register`` rule lands in.
registry = RuleRegistry()


class _Walker(ast.NodeVisitor):
    """One pre-order pass: update context, dispatch rules, descend."""

    def __init__(
        self,
        reg: RuleRegistry,
        ctx: ModuleContext,
        timings: dict[str, float] | None = None,
    ) -> None:
        self._registry = reg
        self.ctx = ctx
        self.raw_findings: list[tuple[Rule, ast.AST, str]] = []
        self._timings = timings

    # -- context bookkeeping ---------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.ctx.imports[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self._dispatch(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        prefix = "." * node.level + (node.module or "")
        for alias in node.names:
            if alias.name != "*":
                self.ctx.imports[alias.asname or alias.name] = (
                    f"{prefix}.{alias.name}" if prefix else alias.name
                )
        self._dispatch(node)
        self.generic_visit(node)

    def _visit_function(self, node: ast.AST, name: str | None) -> None:
        if name is not None:
            self.ctx.scopes[-1][1].add(name)
        self._dispatch(node)
        self.ctx.scopes.append(("function", set()))
        try:
            self.generic_visit(node)
        finally:
            self.ctx.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node, None)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._dispatch(node)
        self.ctx.scopes.append(("class", set()))
        try:
            self.generic_visit(node)
        finally:
            self.ctx.scopes.pop()

    # -- dispatch ---------------------------------------------------------

    def generic_visit(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def visit(self, node: ast.AST) -> None:
        visitor = getattr(
            self, f"visit_{type(node).__name__}", None
        )
        if visitor is not None:
            visitor(node)
        else:
            self._dispatch(node)
            self.generic_visit(node)

    def _dispatch(self, node: ast.AST) -> None:
        if self._timings is None:
            for rule in self._registry.rules_for(type(node)):
                for found_node, message in rule.check(node, self.ctx):
                    self.raw_findings.append((rule, found_node, message))
            return
        import time

        for rule in self._registry.rules_for(type(node)):
            # Wall-clock per rule for the --stats report: a measurement of
            # the linter itself, never of reproduced results, so the
            # duration-clock discipline does not apply.
            started = time.perf_counter()  # reprolint: disable=DET003
            for found_node, message in rule.check(node, self.ctx):
                self.raw_findings.append((rule, found_node, message))
            elapsed = time.perf_counter() - started  # reprolint: disable=DET003
            self._timings[rule.code] = self._timings.get(rule.code, 0.0) + elapsed


class LintEngine:
    """Lints sources with a registry's rules and applies suppressions.

    With ``collect_timings=True``, per-rule wall time accumulates in
    :attr:`rule_timings` (rule code -> seconds; the whole-program graph
    build is accounted under ``"(graph build)"``) — the ``--stats`` seam.
    Timing is opt-in so the default path pays no clock overhead per node.
    """

    def __init__(
        self, reg: RuleRegistry | None = None, collect_timings: bool = False
    ) -> None:
        from repro.devtools import checks

        checks.load_all()
        self._registry = reg if reg is not None else registry
        self._collect_timings = collect_timings
        self.rule_timings: dict[str, float] = {}

    # -- single file ------------------------------------------------------

    def lint_source(
        self, source: str, path: str, module: str | None = None
    ) -> list[Finding]:
        """Lint one source text; ``path`` is used for reporting and scoping."""
        suppressions = SuppressionIndex(source)
        if suppressions.skip_file:
            return []
        ctx = ModuleContext(
            path=path,
            module=module if module is not None else _module_name(path),
            source_lines=source.splitlines(),
        )
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            line = exc.lineno or 1
            return [
                Finding(
                    rule="PARSE",
                    path=path,
                    line=line,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    severity=Severity.ERROR,
                    line_text=ctx.line_text(line),
                )
            ]
        walker = _Walker(
            self._registry,
            ctx,
            timings=self.rule_timings if self._collect_timings else None,
        )
        walker.visit(tree)
        findings = []
        for rule, node, message in walker.raw_findings:
            line = getattr(node, "lineno", 1)
            if suppressions.is_suppressed(rule.code, line):
                continue
            findings.append(
                Finding(
                    rule=rule.code,
                    path=path,
                    line=line,
                    col=getattr(node, "col_offset", 0),
                    message=message,
                    severity=rule.severity,
                    line_text=ctx.line_text(line),
                )
            )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    # -- trees ------------------------------------------------------------

    def lint_paths(
        self,
        paths: Iterable[str | Path],
        project: bool = True,
        only_files: Iterable[str | Path] | None = None,
    ) -> list[Finding]:
        """Lint every ``.py`` file under the given files/directories.

        With ``project=True`` (the default) the cross-module rules also
        run, over a whole-program graph built from the ``repro`` source
        files in the set — one extra pass total, shared by all of them.

        ``only_files`` restricts the *per-file* rules to that subset
        (the ``--changed-only`` seam); project rules always analyze the
        full set, because a changed module can break an invariant whose
        finding lands in an unchanged one.
        """
        findings: list[Finding] = []
        files = collect_files(paths)
        if only_files is None:
            per_file = files
        else:
            wanted = {Path(f).resolve() for f in only_files}
            per_file = [file for file in files if file.resolve() in wanted]
        for file in per_file:
            findings.extend(
                self.lint_source(file.read_text(), file.as_posix())
            )
        if project:
            findings.extend(self._lint_project(files))
            findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def _lint_project(self, files: Sequence[Path]) -> list[Finding]:
        """Run the registered cross-module rules over the file set."""
        from repro.devtools import graph as graphmod

        if not self._registry.project_rules():
            return []
        if not any(graphmod.is_repro_source_path(file) for file in files):
            return []
        import time

        started = time.perf_counter()  # reprolint: disable=DET003 (linter self-measurement)
        graph = graphmod.build_graph(files)
        if self._collect_timings:
            elapsed = time.perf_counter() - started  # reprolint: disable=DET003
            self.rule_timings["(graph build)"] = (
                self.rule_timings.get("(graph build)", 0.0) + elapsed
            )
        suppressions: dict[str, SuppressionIndex] = {}
        source_lines: dict[str, list[str]] = {}

        def load(path: str) -> None:
            if path in suppressions:
                return
            try:
                text = Path(path).read_text()
            except OSError:
                text = ""
            suppressions[path] = SuppressionIndex(text)
            source_lines[path] = text.splitlines()

        findings: list[Finding] = []
        for rule in self._registry.project_rules():
            started = time.perf_counter()  # reprolint: disable=DET003
            results = list(rule.check_project(graph))
            if self._collect_timings:
                elapsed = time.perf_counter() - started  # reprolint: disable=DET003
                self.rule_timings[rule.code] = (
                    self.rule_timings.get(rule.code, 0.0) + elapsed
                )
            for path, line, col, message in results:
                load(path)
                if suppressions[path].is_suppressed(rule.code, line):
                    continue
                lines = source_lines[path]
                text = lines[line - 1].strip() if 1 <= line <= len(lines) else ""
                findings.append(
                    Finding(
                        rule=rule.code,
                        path=path,
                        line=line,
                        col=col,
                        message=message,
                        severity=rule.severity,
                        line_text=text,
                    )
                )
        return findings


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
                and not any(part.startswith(".") for part in candidate.parts)
            )
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def _module_name(path: str) -> str:
    """Best-effort dotted module name; ``src/`` layouts anchor the package."""
    parts = list(Path(path).parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if not parts:
        return ""
    parts[-1] = Path(parts[-1]).stem
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)
