"""Findings: what a lint rule reports.

A :class:`Finding` is one violation at one source location.  Findings are
value objects — the engine produces them, the CLI formats them, and the
baseline matches them by ``(rule, path, line text)`` so that grandfathered
findings survive unrelated edits that shift line numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How seriously a finding gates the build.

    Both levels fail the CLI when new (not suppressed, not baselined);
    the split exists so reports and the baseline can distinguish hard
    invariant violations from convention drift.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one location.

    Attributes:
        rule: rule code, e.g. ``DET001``.
        path: file the finding is in (as given to the engine).
        line: 1-based line number.
        col: 0-based column offset.
        message: human-readable explanation with the suggested fix.
        severity: gating level.
        line_text: the stripped source line, used for baseline matching.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    line_text: str = field(default="", compare=False)

    def key(self) -> tuple[str, str, str]:
        """Baseline matching key: stable across line-number drift."""
        return (self.rule, self.path, self.line_text)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by ``--format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
            "line_text": self.line_text,
        }

    def render(self) -> str:
        """The classic one-line ``path:line:col: CODE message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )
