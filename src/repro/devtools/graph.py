"""Whole-program analysis: symbol table, import graph, and call graph.

The per-file engine (:mod:`repro.devtools.engine`) sees one module at a
time, so it cannot follow a callable through two call layers into the
process pool, or notice a telemetry metric that `clustered.py` emits but
``docs/TELEMETRY.md`` never documents.  This module builds the
project-wide view those checks need, in **one AST pass per file**:

- a **symbol table** — for every module under ``src/repro``, the
  classes/functions it defines, its public surface, and its ``__all__``;
- an **import graph** — which repro modules import which, resolved
  through each file's alias table (the same resolution discipline the
  engine uses, so ``import x as y`` cannot hide an edge);
- a **call graph** — function-level edges, resolved through aliases and
  re-exports (``from repro.telemetry import use_telemetry`` follows into
  ``repro.telemetry.registry``), with conservative handling of methods
  (``self.m()`` binds to the enclosing class; a bare callable passed as
  an argument becomes an *indirect* edge) — over-approximation is the
  right failure mode for safety rules like XPAR001.

Alongside the graph proper, the single pass collects the cross-module
facts the XTEL/XCFG/XDEAD rules query: metric name literals, process-pool
submissions, ``argparse`` flag dests, ``StudyConfig``-shaped constructor
keywords, dataclass fields, and the project-wide set of referenced names
(spanning ``src``, ``tests``, ``benchmarks``, and ``examples``).

For the async-safety rules (ASY*/XTNT*), the same pass additionally
records per-function **call sites** (raw spelling, terminal attribute,
bare/awaited flags), ``await`` line numbers, **offload boundaries**
(callables handed to ``asyncio.to_thread``/``run_in_executor``/pool
``submit``/``Thread(target=...)`` run *off* the event loop), and a
lightweight **type sketch**: parameter annotations, ``x = Cls(...)``
locals, and ``self.attr = Cls(...)`` instance attributes.  The sketch
lets ``self._queue.submit()`` resolve through the receiver's class to
``JobQueue.submit``, which is what makes event-loop reachability
(:meth:`ProjectGraph.async_origins`) see through the service's
composition seams.

Builds are cached per run, keyed on every involved file's
``(path, mtime, size)``, so the lint CLI, the four cross-module rules,
and ``python -m repro.devtools.graph`` share one pass.  The JSON and DOT
exports are deterministic: sorted keys, relative paths, no timestamps.
"""

from __future__ import annotations

import ast
import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "ArgparseFlag",
    "CallSite",
    "FunctionNode",
    "MetricCall",
    "ModuleNode",
    "PoolSubmit",
    "ProjectGraph",
    "RouteCall",
    "build_graph",
    "main",
    "module_name_for",
]

_METRIC_INSTRUMENTS = frozenset({"span", "timer", "counter", "gauge", "observe"})
_POOL_METHODS = frozenset({"submit", "map"})
#: Callables (plain or decorator) whose first two string-literal args
#: register an HTTP endpoint: route("GET", "/v1/jobs").
_ROUTE_REGISTRARS = frozenset({"route", "add_route"})
_HTTP_METHODS = frozenset(
    {"GET", "HEAD", "POST", "PUT", "PATCH", "DELETE", "OPTIONS"}
)
_POOLISH_RECEIVERS = ("pool", "executor")
#: Keywords that hand a worker-side callable to an indirect submission
#: seam: ``ResilientExecutor(pool_task=...)`` submits its argument to a
#: ProcessPoolExecutor on the caller's behalf (repro.faults.recovery).
_POOL_TASK_KWARGS = frozenset({"pool_task"})
#: Constructors whose ``target=`` keyword runs on a spawned thread/process.
_THREAD_CLASSES = frozenset({"Thread", "Process", "Timer"})
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault", "pop",
        "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
    }
)
_REFERENCE_TREES = ("src", "tests", "benchmarks", "examples")
_RESOLVE_DEPTH = 10


def module_name_for(path: str | Path) -> str:
    """Dotted module name for a file; ``src/`` layouts anchor the package."""
    parts = list(Path(path).parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if not parts:
        return ""
    parts[-1] = Path(parts[-1]).stem
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def is_repro_source_path(path: str | Path) -> bool:
    """True for files that belong to the ``repro`` package proper."""
    module = module_name_for(path)
    return module == "repro" or module.startswith("repro.")


def project_root_for(files: Sequence[Path]) -> Path:
    """The directory holding ``src/`` for the given file set (or ``.``)."""
    for file in files:
        parts = file.parts
        if "src" in parts:
            index = parts.index("src")
            return Path(*parts[:index]) if index else Path(".")
    return Path(".")


# ---------------------------------------------------------------------------
# graph nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MetricCall:
    """One ``counter``/``gauge``/``timer``/``observe``/``span`` name literal.

    F-string names have each interpolated field collapsed to ``*``
    (``f"scans.era.{source.name}.records"`` becomes
    ``scans.era.*.records``), matching the ``<placeholder>`` wildcards of
    the documented catalog.
    """

    name: str
    instrument: str
    path: str
    lineno: int
    col: int


@dataclass(frozen=True, slots=True)
class PoolSubmit:
    """A callable handed to a process pool's ``submit``/``map``."""

    target: str | None  #: raw dotted spelling of the callable (None = lambda)
    path: str
    lineno: int
    kind: str  #: "submit" or "map"


@dataclass(frozen=True, slots=True)
class ArgparseFlag:
    """One ``add_argument`` call, reduced to its destination name."""

    dest: str
    path: str
    lineno: int


@dataclass(frozen=True, slots=True)
class RouteCall:
    """One HTTP endpoint registration (``@route("GET", "/v1/jobs")``).

    Collected from ``route``/``add_route`` calls — as decorators or plain
    calls — whose first two arguments are string literals.  These are the
    service's wire contract; XSVC001 cross-checks them against the
    endpoint catalog in ``docs/SERVICE.md``.
    """

    method: str
    pattern: str
    path: str
    lineno: int


@dataclass(frozen=True, slots=True)
class CallSite:
    """One call expression inside a function body, with context flags."""

    raw: str | None  #: dotted spelling of the callee (None = dynamic)
    terminal: str | None  #: last Name/Attribute segment ("flush", "sleep")
    lineno: int
    col: int
    bare: bool  #: the call is a bare expression statement (result dropped)
    awaited: bool  #: the call is directly wrapped in ``await``


@dataclass(slots=True)
class FunctionNode:
    """One function or method in the project call graph."""

    qualname: str  #: "repro.core.clustered._run_task", "repro.x.Cls.meth"
    module: str
    name: str
    path: str
    lineno: int
    is_method: bool
    is_async: bool = False
    #: decorated with a ``route("METHOD", "/pattern")`` registration.
    route_decorated: bool = False
    #: raw call targets as spelled ("helper", "mod.attr.fn", "self.m").
    raw_calls: list[str] = field(default_factory=list)
    #: raw callable-valued arguments (become *indirect* call edges).
    raw_indirect: list[str] = field(default_factory=list)
    #: raw callables handed across an offload boundary (to_thread, pools).
    raw_offload: list[str] = field(default_factory=list)
    #: module globals this function rebinds via a ``global`` declaration.
    global_writes: list[str] = field(default_factory=list)
    #: module-level mutable bindings this function mutates in place.
    container_writes: list[str] = field(default_factory=list)
    #: every call expression in the body, in source order.
    call_sites: list[CallSite] = field(default_factory=list)
    #: line numbers holding an ``await`` expression.
    await_lines: list[int] = field(default_factory=list)
    #: local/parameter name -> raw class-like type spelling ("JobQueue").
    local_types: dict[str, str] = field(default_factory=dict)
    #: resolved callee qualnames (filled by ProjectGraph._finalize).
    calls: tuple[str, ...] = ()
    #: resolved callees that cross an offload boundary (subset of calls).
    offloads: tuple[str, ...] = ()


@dataclass(slots=True)
class ModuleNode:
    """Everything one pass learned about one ``repro`` module."""

    name: str
    path: str
    imports: dict[str, str] = field(default_factory=dict)
    imported_modules: set[str] = field(default_factory=set)
    #: locally defined top-level classes/functions (and methods via ".").
    definitions: set[str] = field(default_factory=set)
    #: public module-level symbols: name -> lineno.
    public: dict[str, int] = field(default_factory=dict)
    all_exports: tuple[str, ...] = ()
    #: class name -> ((field, lineno), ...) from annotated class bodies.
    dataclass_fields: dict[str, tuple[tuple[str, int], ...]] = field(
        default_factory=dict
    )
    #: module-level names bound to list/dict/set displays (mutable state).
    mutable_globals: set[str] = field(default_factory=set)
    metric_calls: list[MetricCall] = field(default_factory=list)
    pool_submits: list[PoolSubmit] = field(default_factory=list)
    argparse_flags: list[ArgparseFlag] = field(default_factory=list)
    route_calls: list[RouteCall] = field(default_factory=list)
    #: keyword names used in any call in this module (flag-threading check).
    call_kwargs: set[str] = field(default_factory=set)
    #: (kwarg, lineno) pairs of StudyConfig(...)/config.with_(...) calls.
    config_kwargs: list[tuple[str, int]] = field(default_factory=list)
    #: class name -> {attribute -> raw class-like type} from ``self.x = Cls()``
    #: assignments and annotated ``self.x: Cls`` declarations.
    attr_types: dict[str, dict[str, str]] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# the per-file pass
# ---------------------------------------------------------------------------


class _ModuleVisitor(ast.NodeVisitor):
    """One pre-order walk collecting every graph fact for one module."""

    def __init__(self, node: ModuleNode, functions: dict[str, FunctionNode]) -> None:
        self.mod = node
        self.functions = functions
        self._class_stack: list[str] = []
        self._func_stack: list[FunctionNode] = []
        self._global_decls: list[set[str]] = []
        self._bare_calls: set[int] = set()
        self._awaited_calls: set[int] = set()

    # -- imports ----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.mod.imports[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.name.split(".")[0] == "repro":
                self.mod.imported_modules.add(alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        prefix = self._absolute_from(node)
        for alias in node.names:
            if alias.name == "*":
                continue
            target = f"{prefix}.{alias.name}" if prefix else alias.name
            self.mod.imports[alias.asname or alias.name] = target
        if prefix and prefix.split(".")[0] == "repro":
            self.mod.imported_modules.add(prefix)

    def _absolute_from(self, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        # Resolve "from .x import y" against this module's dotted name.
        base = self.mod.name.split(".")
        if not self.mod.path.endswith("__init__.py"):
            base = base[:-1]
        hops = node.level - 1
        base = base[: len(base) - hops] if hops else base
        return ".".join(base + ([node.module] if node.module else []))

    # -- definitions ------------------------------------------------------

    def _qualprefix(self) -> str:
        parts = [self.mod.name, *self._class_stack]
        if self._func_stack:
            parts.append(self._func_stack[-1].name)
        return ".".join(parts)

    def _handle_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        is_method = bool(self._class_stack) and not self._func_stack
        if not self._class_stack and not self._func_stack:
            self.mod.definitions.add(node.name)
            if not node.name.startswith("_") and not _registration_decorated(node):
                self.mod.public.setdefault(node.name, node.lineno)
        elif is_method:
            self.mod.definitions.add(f"{self._class_stack[-1]}.{node.name}")
        func = FunctionNode(
            qualname=f"{self._qualprefix()}.{node.name}",
            module=self.mod.name,
            name=node.name,
            path=self.mod.path,
            lineno=node.lineno,
            is_method=is_method,
            is_async=isinstance(node, ast.AsyncFunctionDef),
        )
        self.functions.setdefault(func.qualname, func)
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            annotated = _annotation_name(arg.annotation)
            if annotated is not None:
                func.local_types.setdefault(arg.arg, annotated)
        if self._func_stack:
            # A nested function is conservatively callable from its parent.
            self._func_stack[-1].raw_indirect.append(func.qualname)
        for decorator in node.decorator_list:
            self._record_call_target(decorator, indirect=True)
            if isinstance(decorator, ast.Call) and self._maybe_route(decorator):
                func.route_decorated = True
        self._func_stack.append(func)
        self._global_decls.append(set())
        try:
            for child in node.body:
                self.visit(child)
        finally:
            self._func_stack.pop()
            self._global_decls.pop()

    visit_FunctionDef = _handle_function
    visit_AsyncFunctionDef = _handle_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._class_stack and not self._func_stack:
            self.mod.definitions.add(node.name)
            if not node.name.startswith("_") and not _registration_decorated(node):
                self.mod.public.setdefault(node.name, node.lineno)
        fields: list[tuple[str, int]] = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                fields.append((stmt.target.id, stmt.lineno))
        if fields:
            self.mod.dataclass_fields[node.name] = tuple(fields)
        self._class_stack.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self._class_stack.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._class_stack and not self._func_stack:
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__all__":
                    self.mod.all_exports = tuple(
                        element.value
                        for element in ast.walk(node.value)
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    )
                elif _is_mutable_display(node.value):
                    self.mod.mutable_globals.add(target.id)
        self._record_types(node.targets, self._value_type(node.value))
        self._record_stores(node.targets)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_types([node.target], _annotation_name(node.annotation))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_stores([node.target])
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if isinstance(value, ast.Await):
            value = value.value
        if isinstance(value, ast.Call):
            self._bare_calls.add(id(value))
        self.generic_visit(node)

    def visit_Await(self, node: ast.Await) -> None:
        if self._func_stack:
            func = self._func_stack[-1]
            if node.lineno not in func.await_lines:
                func.await_lines.append(node.lineno)
        if isinstance(node.value, ast.Call):
            self._awaited_calls.add(id(node.value))
        self.generic_visit(node)

    def _record_types(self, targets: Iterable[ast.expr], raw_type: str | None) -> None:
        """Sketch ``x = Cls(...)`` locals and ``self.attr = Cls(...)`` attrs."""
        if raw_type is None or not self._func_stack:
            return
        func = self._func_stack[-1]
        for target in targets:
            if isinstance(target, ast.Name):
                func.local_types.setdefault(target.id, raw_type)
            elif (
                self._class_stack
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.mod.attr_types.setdefault(
                    self._class_stack[-1], {}
                ).setdefault(target.attr, raw_type)

    def _value_type(self, expr: ast.expr) -> str | None:
        """Class-like raw type of an assigned value, if statically evident."""
        if isinstance(expr, ast.Call):
            raw = _dotted(expr.func)
            return raw if _is_classlike(raw) else None
        if isinstance(expr, ast.Name) and self._func_stack:
            return self._func_stack[-1].local_types.get(expr.id)
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                found = self._value_type(value)
                if found is not None:
                    return found
            return None
        if isinstance(expr, ast.IfExp):
            return self._value_type(expr.body) or self._value_type(expr.orelse)
        return None

    def visit_Global(self, node: ast.Global) -> None:
        if self._global_decls:
            self._global_decls[-1].update(node.names)

    def _record_stores(self, targets: Iterable[ast.expr]) -> None:
        if not self._func_stack:
            return
        func = self._func_stack[-1]
        declared = self._global_decls[-1] if self._global_decls else set()
        for target in targets:
            if isinstance(target, ast.Name) and target.id in declared:
                if target.id not in func.global_writes:
                    func.global_writes.append(target.id)
            elif isinstance(target, (ast.Subscript, ast.Attribute)) and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
                if name not in func.container_writes:
                    func.container_writes.append(name)

    # -- calls ------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        raw = _dotted(node.func)
        self._record_call_target(node.func)
        if isinstance(node.func, ast.Attribute):
            terminal = node.func.attr
        elif isinstance(node.func, ast.Name):
            terminal = node.func.id
        else:
            terminal = None

        if self._func_stack:
            func = self._func_stack[-1]
            func.call_sites.append(
                CallSite(
                    raw=raw,
                    terminal=terminal,
                    lineno=node.lineno,
                    col=node.col_offset,
                    bare=id(node) in self._bare_calls,
                    awaited=id(node) in self._awaited_calls,
                )
            )
            for expr in self._offload_args(node, terminal):
                target = _dotted(_unwrap_partial(expr))
                if target is not None:
                    func.raw_offload.append(target)

        if self._func_stack and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Name)
                and node.func.attr in _MUTATOR_METHODS
            ):
                func = self._func_stack[-1]
                if receiver.id not in func.container_writes:
                    func.container_writes.append(receiver.id)

        if terminal in _METRIC_INSTRUMENTS and node.args:
            metric = _metric_literal(node.args[0])
            if metric is not None:
                self.mod.metric_calls.append(
                    MetricCall(
                        name=metric,
                        instrument=terminal,
                        path=self.mod.path,
                        lineno=node.args[0].lineno,
                        col=node.args[0].col_offset,
                    )
                )

        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _POOL_METHODS
            and _looks_like_pool(node.func)
            and node.args
        ):
            self.mod.pool_submits.append(
                PoolSubmit(
                    target=_dotted(node.args[0]),
                    path=self.mod.path,
                    lineno=node.lineno,
                    kind=node.func.attr,
                )
            )

        for keyword in node.keywords:
            if keyword.arg in _POOL_TASK_KWARGS:
                target = _dotted(keyword.value)
                if target is not None:
                    self.mod.pool_submits.append(
                        PoolSubmit(
                            target=target,
                            path=self.mod.path,
                            lineno=node.lineno,
                            kind="submit",
                        )
                    )

        if terminal in _ROUTE_REGISTRARS:
            self._maybe_route(node)

        if isinstance(node.func, ast.Attribute) and node.func.attr == "add_argument":
            flag = _argparse_dest(node)
            if flag is not None:
                self.mod.argparse_flags.append(
                    ArgparseFlag(dest=flag, path=self.mod.path, lineno=node.lineno)
                )

        for keyword in node.keywords:
            if keyword.arg is not None:
                self.mod.call_kwargs.add(keyword.arg)
        if _is_config_call(node.func, raw):
            for keyword in node.keywords:
                if keyword.arg is not None:
                    self.mod.config_kwargs.append((keyword.arg, node.lineno))

        # Callables passed as arguments become indirect call edges.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                self._record_call_target(arg, indirect=True)
        self.generic_visit(node)

    def _offload_args(self, node: ast.Call, terminal: str | None) -> list[ast.expr]:
        """Argument expressions this call runs *off* the calling thread."""
        out: list[ast.expr] = []
        if terminal == "to_thread" and node.args:
            out.append(node.args[0])
        elif terminal == "run_in_executor" and len(node.args) >= 2:
            out.append(node.args[1])
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _POOL_METHODS
            and _looks_like_pool(node.func)
            and node.args
        ):
            out.append(node.args[0])
        for keyword in node.keywords:
            if keyword.arg == "target" and terminal in _THREAD_CLASSES:
                out.append(keyword.value)
            elif keyword.arg in _POOL_TASK_KWARGS or keyword.arg == "initializer":
                out.append(keyword.value)
        return out

    def _maybe_route(self, node: ast.Call) -> bool:
        """Record ``route("METHOD", "/pattern")``-shaped registrations."""
        func = node.func
        terminal = (
            func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name)
            else None
        )
        if terminal not in _ROUTE_REGISTRARS or len(node.args) < 2:
            return False
        first, second = node.args[0], node.args[1]
        if not (
            isinstance(first, ast.Constant) and isinstance(first.value, str)
            and isinstance(second, ast.Constant) and isinstance(second.value, str)
        ):
            return False
        method = first.value.upper()
        if method not in _HTTP_METHODS or not second.value.startswith("/"):
            return False
        entry = RouteCall(
            method=method,
            pattern=second.value,
            path=self.mod.path,
            lineno=node.lineno,
        )
        if entry not in self.mod.route_calls:
            self.mod.route_calls.append(entry)
        return True

    def _record_call_target(self, expr: ast.expr, indirect: bool = False) -> None:
        if not self._func_stack:
            return
        raw = _dotted(expr)
        if raw is None:
            return
        func = self._func_stack[-1]
        (func.raw_indirect if indirect else func.raw_calls).append(raw)


def _registration_decorated(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef,
) -> bool:
    """True for ``@registry.register``-style (attribute) decorators.

    Registration decorators consume the definition — nothing ever spells
    its name again, so dead-symbol analysis must not flag it.  Plain-name
    transformers (``@dataclass``, ``@contextmanager``) leave the symbol
    callable and are not exempt.
    """
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Attribute):
            return True
    return False


def _dotted(expr: ast.expr) -> str | None:
    """``a.b.c`` spelling for Name/Attribute chains, else None."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _unwrap_partial(expr: ast.expr) -> ast.expr:
    """``functools.partial(f, ...)`` stands for ``f`` at an offload seam."""
    if (
        isinstance(expr, ast.Call)
        and _dotted(expr.func) in {"partial", "functools.partial"}
        and expr.args
    ):
        return expr.args[0]
    return expr


def _is_classlike(raw: str | None) -> bool:
    """Heuristic: a dotted spelling whose terminal looks like a class name."""
    if raw is None:
        return False
    terminal = raw.rsplit(".", 1)[-1]
    return terminal[:1].isupper() and terminal not in {"None", "True", "False"}


def _annotation_name(expr: ast.expr | None) -> str | None:
    """Class-like dotted name from an annotation (unwraps ``X | None``).

    Subscripted generics (``Optional[X]``, ``list[X]``) and lowercase
    builtins resolve to None — the type sketch only tracks receivers
    whose methods the call graph can bind.
    """
    if expr is None:
        return None
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        return _annotation_name(expr.left) or _annotation_name(expr.right)
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value if _is_classlike(expr.value) else None
    raw = _dotted(expr)
    return raw if _is_classlike(raw) else None


def _is_mutable_display(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in {"list", "dict", "set", "defaultdict", "deque", "Counter"}
    )


def _metric_literal(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.JoinedStr):
        parts: list[str] = []
        for value in expr.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append("*")
        return "".join(parts)
    return None


def _looks_like_pool(func: ast.Attribute) -> bool:
    if func.attr == "submit":
        return True
    receiver = func.value
    if isinstance(receiver, ast.Name):
        lowered = receiver.id.lower()
    elif isinstance(receiver, ast.Attribute):
        lowered = receiver.attr.lower()
    else:
        return False
    return any(hint in lowered for hint in _POOLISH_RECEIVERS)


def _argparse_dest(node: ast.Call) -> str | None:
    for keyword in node.keywords:
        if (
            keyword.arg == "dest"
            and isinstance(keyword.value, ast.Constant)
            and isinstance(keyword.value.value, str)
        ):
            return keyword.value.value
    flags = [
        arg.value
        for arg in node.args
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
    ]
    if not flags:
        return None
    for flag in flags:
        if flag.startswith("--"):
            return flag.lstrip("-").replace("-", "_")
    return flags[0].lstrip("-").replace("-", "_")


def _is_config_call(func: ast.expr, raw: str | None) -> bool:
    if isinstance(func, ast.Attribute) and func.attr == "with_":
        return True
    return raw is not None and "StudyConfig" in raw.split(".")


# ---------------------------------------------------------------------------
# reference collection (for XDEAD001)
# ---------------------------------------------------------------------------


class _ReferenceVisitor(ast.NodeVisitor):
    """Collect every name a file *uses* — not defines, imports, or exports.

    Import aliases and ``__all__`` strings are deliberately excluded: a
    symbol that is only re-exported but never actually used is still dead
    surface.
    """

    def __init__(self) -> None:
        self.names: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        pass

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        pass

    def visit_Assign(self, node: ast.Assign) -> None:
        if any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        ):
            return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.names.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.names.add(node.attr)
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        # getattr(obj, "symbol") and friends: identifier-shaped strings
        # count as references, erring on the side of "not dead".
        if isinstance(node.value, str) and node.value.isidentifier():
            self.names.add(node.value)


# ---------------------------------------------------------------------------
# the graph
# ---------------------------------------------------------------------------


class ProjectGraph:
    """The whole-program view: modules, functions, edges, references."""

    def __init__(
        self,
        root: Path,
        modules: dict[str, ModuleNode],
        functions: dict[str, FunctionNode],
        referenced_names: frozenset[str],
        reference_paths: tuple[str, ...],
    ) -> None:
        self.root = root
        self.modules = modules
        self.functions = functions
        self.referenced_names = referenced_names
        self.reference_paths = reference_paths
        self._async_origins: dict[str, str] | None = None
        self._effect_index: object | None = None
        self._finalize()

    # -- resolution -------------------------------------------------------

    def resolve(self, module: str, raw: str, _depth: int = 0) -> str | None:
        """Resolve a raw dotted spelling in ``module`` to a function qualname.

        Follows the module's alias table, then re-export chains through
        package ``__init__`` modules (bounded depth, cycle-safe by the
        bound).  Returns None for anything that is not a known project
        function — unresolved receivers never create edges.
        """
        if _depth > _RESOLVE_DEPTH:
            return None
        mod = self.modules.get(module)
        if mod is None:
            return None
        head, _, rest = raw.partition(".")
        if head == "self":
            return None  # handled by the caller, which knows the class
        if raw in self.functions:
            return raw
        local = f"{module}.{raw}"
        if local in self.functions:
            return local
        if head in mod.imports:
            target = mod.imports[head] + (f".{rest}" if rest else "")
            return self._resolve_absolute(target, _depth + 1)
        return None

    def _resolve_absolute(self, dotted: str, _depth: int) -> str | None:
        if _depth > _RESOLVE_DEPTH:
            return None
        if dotted in self.functions:
            return dotted
        # Longest known-module prefix, then chase that module's aliases.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                remainder = ".".join(parts[cut:])
                resolved = self.resolve(prefix, remainder, _depth + 1)
                if resolved is not None:
                    return resolved
                candidate = f"{prefix}.{remainder}"
                return candidate if candidate in self.functions else None
        return None

    def _resolve_in_function(self, func: FunctionNode, raw: str) -> str | None:
        if raw.startswith("self.") and func.is_method:
            # Conservative method binding: self.m() targets the enclosing
            # class's method when it exists; otherwise hop through the
            # attribute's sketched type (self._queue.submit -> JobQueue.submit).
            cls_qual = func.qualname.rsplit(".", 1)[0]
            remainder = raw[len("self."):]
            candidate = f"{cls_qual}.{remainder}"
            if candidate in self.functions:
                return candidate
            attr, _, rest = remainder.partition(".")
            module = self.modules.get(func.module)
            if module is None:
                return None
            cls_name = cls_qual.rsplit(".", 1)[-1]
            raw_type = module.attr_types.get(cls_name, {}).get(attr)
            if raw_type is None:
                return None
            return self._resolve_typed(func, raw_type, rest)
        if raw in self.functions:  # pre-resolved (nested-function edges)
            return raw
        head, _, rest = raw.partition(".")
        if head in func.local_types:
            typed = self._resolve_typed(func, func.local_types[head], rest)
            if typed is not None:
                return typed
        return self.resolve(func.module, raw)

    def _resolve_typed(
        self, func: FunctionNode, raw_type: str, rest: str
    ) -> str | None:
        """Bind ``<typed receiver>.rest`` through the receiver's class."""
        dotted = f"{raw_type}.{rest}" if rest else f"{raw_type}.__call__"
        return self.resolve(func.module, dotted)

    def resolve_call(self, func: FunctionNode, raw: str) -> str | None:
        """Public seam for rules: resolve one raw call site in ``func``."""
        return self._resolve_in_function(func, raw)

    def resolve_name(self, module: str, raw: str) -> str:
        """Alias-resolve a dotted spelling to its absolute form (best effort).

        Unlike :meth:`resolve`, the result need not be a project function:
        ``sleep`` after ``from time import sleep`` becomes ``time.sleep``.
        Unknown heads come back unchanged.
        """
        mod = self.modules.get(module)
        if mod is None:
            return raw
        head, _, rest = raw.partition(".")
        target = mod.imports.get(head)
        if target is None:
            return raw
        return f"{target}.{rest}" if rest else target

    def _finalize(self) -> None:
        for func in self.functions.values():
            resolved: list[str] = []
            for raw in func.raw_calls + func.raw_indirect + func.raw_offload:
                target = self._resolve_in_function(func, raw)
                if target is not None and target != func.qualname:
                    resolved.append(target)
            func.calls = tuple(sorted(set(resolved)))
            offloaded: list[str] = []
            for raw in func.raw_offload:
                target = self._resolve_in_function(func, raw)
                if target is not None:
                    offloaded.append(target)
            func.offloads = tuple(sorted(set(offloaded)))

    # -- queries ----------------------------------------------------------

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Call-graph closure (roots included) over resolved edges."""
        seen: set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            qualname = stack.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            stack.extend(self.functions[qualname].calls)
        return seen

    def async_origins(self) -> dict[str, str]:
        """Map every event-loop-colored function to the async root reaching it.

        Roots are all ``async def`` functions (mapped to themselves).
        Traversal follows resolved call edges but never crosses an offload
        boundary (``asyncio.to_thread``, ``run_in_executor``, pool
        ``submit``/``map``, ``Thread(target=...)``, ``initializer=``) —
        code past those runs off the event loop by construction.  BFS over
        sorted roots and sorted edges keeps the attribution deterministic.
        """
        if self._async_origins is None:
            origins: dict[str, str] = {}
            queue: deque[str] = deque()
            for qualname in sorted(self.functions):
                if self.functions[qualname].is_async:
                    origins[qualname] = qualname
                    queue.append(qualname)
            while queue:
                qualname = queue.popleft()
                func = self.functions[qualname]
                for callee in func.calls:
                    if callee in func.offloads or callee in origins:
                        continue
                    origins[callee] = origins[qualname]
                    queue.append(callee)
            self._async_origins = origins
        return self._async_origins

    def effect_index(self) -> "object":
        """The filesystem-effect summaries for this graph (built lazily).

        Returns an :class:`repro.devtools.effects.EffectIndex`.  Imported
        lazily because :mod:`repro.devtools.effects` depends on this
        module's node types; built once per graph and shared by the five
        DUR rules and the JSON export.
        """
        if self._effect_index is None:
            from repro.devtools.effects import EffectIndex

            self._effect_index = EffectIndex(self)
        return self._effect_index

    def pool_entry_points(self) -> dict[str, PoolSubmit]:
        """Resolved qualname -> the submission site that ships it."""
        entries: dict[str, PoolSubmit] = {}
        for module in self.modules.values():
            for submit in module.pool_submits:
                if submit.target is None:
                    continue
                resolved = self.resolve(module.name, submit.target)
                if resolved is not None:
                    entries.setdefault(resolved, submit)
        return entries

    def import_edges(self) -> dict[str, tuple[str, ...]]:
        return {
            name: tuple(sorted(m for m in module.imported_modules if m in self.modules))
            for name, module in sorted(self.modules.items())
        }

    def metric_calls(self) -> list[MetricCall]:
        out: list[MetricCall] = []
        for _, module in sorted(self.modules.items()):
            out.extend(module.metric_calls)
        return out

    def route_calls(self) -> list[RouteCall]:
        """Every HTTP endpoint registration, module order then line order."""
        out: list[RouteCall] = []
        for _, module in sorted(self.modules.items()):
            out.extend(sorted(module.route_calls, key=lambda r: r.lineno))
        return out

    # -- export -----------------------------------------------------------

    def to_payload(self) -> dict[str, object]:
        """Deterministic JSON-ready dump of the whole graph."""
        origins = self.async_origins()
        return {
            "schema_version": 3,
            "root": ".",
            "modules": {
                name: {
                    "path": module.path,
                    "imports": sorted(
                        m for m in module.imported_modules if m in self.modules
                    ),
                    "public": sorted(module.public),
                    "exports": sorted(module.all_exports),
                    "definitions": sorted(module.definitions),
                }
                for name, module in sorted(self.modules.items())
            },
            "call_graph": {
                qualname: sorted(func.calls)
                for qualname, func in sorted(self.functions.items())
                if func.calls
            },
            "pool_entry_points": sorted(self.pool_entry_points()),
            "async_roots": sorted(
                qualname
                for qualname, func in self.functions.items()
                if func.is_async
            ),
            "async_colored": sorted(origins),
            "offload_boundaries": sorted(
                {
                    callee
                    for func in self.functions.values()
                    for callee in func.offloads
                }
            ),
            "metrics": sorted(
                {call.name for call in self.metric_calls()}
            ),
            "routes": sorted(
                {f"{call.method} {call.pattern}" for call in self.route_calls()}
            ),
            # Filesystem-effect summaries (schema 3): per-function own and
            # transitive effect kinds, sorted at every level so the export
            # is byte-identical across runs.
            "effects": self.effect_index().to_payload(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)

    def to_dot(self, kind: str = "imports") -> str:
        """GraphViz DOT text for the import graph or the call graph."""
        lines = [f"digraph repro_{kind} {{", "  rankdir=LR;", "  node [shape=box];"]
        if kind == "imports":
            for name, targets in self.import_edges().items():
                lines.append(f'  "{name}";')
                for target in targets:
                    lines.append(f'  "{name}" -> "{target}";')
        else:
            for qualname, func in sorted(self.functions.items()):
                for callee in sorted(func.calls):
                    lines.append(f'  "{qualname}" -> "{callee}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# building + caching
# ---------------------------------------------------------------------------

_CACHE: dict[tuple[tuple[str, int, int], ...], ProjectGraph] = {}


def _signature(files: Iterable[Path]) -> tuple[tuple[str, int, int], ...]:
    out = []
    for file in sorted(files):
        try:
            stat = file.stat()
            out.append((file.as_posix(), stat.st_mtime_ns, stat.st_size))
        except OSError:
            out.append((file.as_posix(), -1, -1))
    return tuple(out)


def _reference_files(root: Path) -> list[Path]:
    files: list[Path] = []
    for tree in _REFERENCE_TREES:
        base = root / tree
        if base.is_dir():
            files.extend(
                candidate
                for candidate in base.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
    return sorted(files)


def build_graph(files: Sequence[str | Path], root: Path | None = None) -> ProjectGraph:
    """Build (or fetch from the per-run cache) the project graph.

    ``files`` are the repro source files to model; the reference universe
    for dead-symbol analysis is always the full ``src``/``tests``/
    ``benchmarks``/``examples`` trees under ``root`` (derived from the
    file paths when not given).
    """
    source_files = sorted(
        {Path(f) for f in files if is_repro_source_path(f)}
    )
    if root is None:
        root = project_root_for(source_files)
    reference_files = _reference_files(root) or source_files
    key = (_signature(source_files), _signature(reference_files))
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    modules: dict[str, ModuleNode] = {}
    functions: dict[str, FunctionNode] = {}
    for file in source_files:
        path = file.as_posix()
        try:
            tree = ast.parse(file.read_text(), filename=path)
        except (OSError, SyntaxError):
            continue  # the per-file engine reports parse failures
        node = ModuleNode(name=module_name_for(path), path=path)
        _ModuleVisitor(node, functions).visit(tree)
        modules[node.name] = node

    referenced: set[str] = set()
    reference_paths: list[str] = []
    for file in reference_files:
        try:
            tree = ast.parse(file.read_text(), filename=file.as_posix())
        except (OSError, SyntaxError):
            continue
        visitor = _ReferenceVisitor()
        visitor.visit(tree)
        referenced.update(visitor.names)
        reference_paths.append(file.as_posix())

    graph = ProjectGraph(
        root=root,
        modules=modules,
        functions=functions,
        referenced_names=frozenset(referenced),
        reference_paths=tuple(reference_paths),
    )
    _CACHE.clear()  # keep at most the latest build
    _CACHE[key] = graph
    return graph


# ---------------------------------------------------------------------------
# CLI: python -m repro.devtools.graph
# ---------------------------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    import argparse as _argparse

    parser = _argparse.ArgumentParser(
        prog="python -m repro.devtools.graph",
        description="Export the repro whole-program import/call graph.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to model (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the full graph as JSON (default)"
    )
    parser.add_argument(
        "--dot",
        choices=("imports", "calls"),
        default=None,
        metavar="KIND",
        help="emit GraphViz DOT for the import or call graph instead",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="write to PATH instead of stdout"
    )
    args = parser.parse_args(argv)

    from repro.devtools.engine import collect_files

    graph = build_graph(collect_files(args.paths))
    text = graph.to_dot(args.dot) if args.dot else graph.to_json() + "\n"
    if args.out:
        Path(args.out).write_text(text)
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
