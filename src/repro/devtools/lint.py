"""The reprolint CLI.

Usage::

    python -m repro.devtools.lint [paths ...]
        [--format text|json] [--baseline FILE] [--write-baseline]
        [--list-rules]

Exit codes: 0 = clean (every finding suppressed or baselined), 1 = new
findings, 2 = bad invocation.  ``--write-baseline`` snapshots the current
findings into the baseline file (with TODO justifications for a human to
fill in) and exits 0 — the workflow for adopting a new rule over existing
code.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.devtools.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.devtools.engine import LintEngine, registry

__all__ = ["main"]

DEFAULT_PATHS = ("src", "tests")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Project-specific determinism/correctness linter (reprolint).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE_NAME}; "
        "a missing file is an empty baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> None:
    engine_rules = registry.rules()
    width = max(len(rule.code) for rule in engine_rules)
    for rule in engine_rules:
        print(f"{rule.code:<{width}}  [{rule.severity.value:<7}]  {rule.summary}")


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    engine = LintEngine()

    if args.list_rules:
        _list_rules()
        return 0

    findings = engine.lint_paths(args.paths)

    if args.write_baseline:
        Baseline.from_findings(findings).write(args.baseline)
        print(
            f"wrote {len(findings)} finding(s) to {args.baseline}; "
            "fill in the justifications before committing"
        )
        return 0

    try:
        baseline = Baseline() if args.no_baseline else Baseline.load(args.baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    new = baseline.filter_new(findings)
    stale = baseline.stale_entries(findings)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [finding.to_dict() for finding in new],
                    "baselined": len(findings) - len(new),
                    "stale_baseline_entries": [list(key) for key in stale],
                },
                indent=2,
            )
        )
    else:
        for finding in new:
            print(finding.render())
        baselined = len(findings) - len(new)
        summary = f"reprolint: {len(new)} new finding(s), {baselined} baselined"
        if stale:
            summary += f", {len(stale)} stale baseline entr(y/ies) — prune them:"
        print(summary)
        for rule, path, line_text in stale:
            print(f"  stale: {rule} {path}: {line_text!r}")

    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
