"""The reprolint CLI.

Usage::

    python -m repro.devtools.lint [paths ...]
        [--format text|json|sarif] [--baseline FILE] [--write-baseline]
        [--update-baseline] [--changed-only [BASE]] [--no-project]
        [--list-rules]

Exit codes: 0 = clean (every finding suppressed or baselined), 1 = new
findings, 2 = bad invocation.  ``--write-baseline`` snapshots the current
findings into the baseline file (with TODO justifications for a human to
fill in) and exits 0 — the workflow for adopting a new rule over existing
code.  ``--update-baseline`` regenerates the file in place while
*preserving* existing justifications (migrating them across line-text
drift), and refuses — exit 2 — when an entry would lose one.
``--no-project`` skips the cross-module rules (XPAR/XTEL/XCFG/XDEAD/
XSVC/ASY/XTNT), which need the whole-program graph of
:mod:`repro.devtools.graph`.  ``--changed-only [BASE]`` (default base
``HEAD``) restricts the per-file rules to files ``git diff`` reports
changed against BASE plus untracked files — the fast pre-commit loop;
project rules still analyze the whole program.  ``--format sarif``
emits a SARIF 2.1.0 log (:mod:`repro.devtools.sarif`) for code-scanning
uploads.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.devtools.engine import LintEngine, registry

__all__ = ["main"]

DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Project-specific determinism/correctness linter (reprolint).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; sarif emits a SARIF 2.1.0 log)",
    )
    parser.add_argument(
        "--changed-only",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="BASE",
        help="restrict per-file rules to files changed vs BASE (default "
        "HEAD) plus untracked files; project rules still run whole-program",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE_NAME}; "
        "a missing file is an empty baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="regenerate the baseline in place, preserving existing "
        "justifications; errors if an entry would lose one",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip the cross-module (whole-program graph) rules",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="report per-rule wall time (text: a table after the summary; "
        "json: a 'stats' key; ignored for sarif)",
    )
    return parser


def _list_rules() -> None:
    engine_rules = [*registry.rules(), *registry.project_rules()]
    engine_rules.sort(key=lambda rule: rule.code)
    width = max(len(rule.code) for rule in engine_rules)
    for rule in engine_rules:
        print(f"{rule.code:<{width}}  [{rule.severity.value:<7}]  {rule.summary}")


def _changed_files(base: str) -> set[Path] | None:
    """Files ``git diff`` reports against ``base``, plus untracked ones."""
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", base, "--"],
            capture_output=True,
            text=True,
            check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    names = [*diff.stdout.splitlines(), *untracked.stdout.splitlines()]
    return {Path(name) for name in names if name.endswith(".py")}


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    engine = LintEngine(collect_timings=args.stats)

    if args.list_rules:
        _list_rules()
        return 0

    only_files: set[Path] | None = None
    if args.changed_only is not None:
        only_files = _changed_files(args.changed_only)
        if only_files is None:
            print(
                "error: --changed-only needs a git checkout and a valid "
                f"base ref (got {args.changed_only!r})",
                file=sys.stderr,
            )
            return 2

    findings = engine.lint_paths(
        args.paths, project=not args.no_project, only_files=only_files
    )

    if args.write_baseline:
        Baseline.from_findings(findings).write(args.baseline)
        print(
            f"wrote {len(findings)} finding(s) to {args.baseline}; "
            "fill in the justifications before committing"
        )
        return 0

    try:
        baseline = Baseline() if args.no_baseline else Baseline.load(args.baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        refreshed, unresolved = baseline.refreshed(findings)
        if unresolved:
            print(
                "error: refusing to update the baseline — these entries "
                "would lose their justification (write them by hand, or use "
                "--write-baseline and fill in the TODOs):",
                file=sys.stderr,
            )
            for rule, path, line_text in unresolved:
                print(f"  {rule} {path}: {line_text!r}", file=sys.stderr)
            return 2
        refreshed.write(args.baseline)
        print(
            f"updated {args.baseline}: {len(refreshed)} allowance(s), "
            "justifications preserved"
        )
        return 0

    new = baseline.filter_new(findings)
    stale = baseline.stale_entries(findings)

    if args.format == "sarif":
        from repro.devtools.sarif import sarif_payload

        print(json.dumps(sarif_payload(new), indent=2, sort_keys=True))
    elif args.format == "json":
        payload: dict[str, object] = {
            "findings": [finding.to_dict() for finding in new],
            "baselined": len(findings) - len(new),
            "stale_baseline_entries": [list(key) for key in stale],
        }
        if args.stats:
            payload["stats"] = {
                "rule_seconds": {
                    code: round(seconds, 6)
                    for code, seconds in sorted(engine.rule_timings.items())
                }
            }
        print(json.dumps(payload, indent=2))
    else:
        for finding in new:
            print(finding.render())
        baselined = len(findings) - len(new)
        summary = f"reprolint: {len(new)} new finding(s), {baselined} baselined"
        if stale:
            summary += f", {len(stale)} stale baseline entr(y/ies) — prune them:"
        print(summary)
        for rule, path, line_text in stale:
            print(f"  stale: {rule} {path}: {line_text!r}")
        if args.stats and engine.rule_timings:
            print("per-rule wall time:")
            width = max(len(code) for code in engine.rule_timings)
            ordered = sorted(
                engine.rule_timings.items(), key=lambda item: (-item[1], item[0])
            )
            for code, seconds in ordered:
                print(f"  {code:<{width}}  {seconds:8.3f}s")

    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
