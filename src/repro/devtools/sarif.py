"""SARIF 2.1.0 export for reprolint findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS
interchange shape GitHub code scanning and most analysis dashboards
ingest.  :func:`sarif_payload` renders one ``run`` of the ``reprolint``
driver: the full rule catalog (so viewers can show summaries for rules
with zero hits) plus one ``result`` per *new* finding — baselined and
suppressed findings are filtered before this layer, matching the text
and JSON formats.

The payload is deterministic: rules sort by code, results arrive in the
engine's (path, line, col, rule) order, and no timestamps or absolute
paths are embedded.
"""

from __future__ import annotations

from typing import Sequence

from repro.devtools.findings import Finding, Severity

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "sarif_payload"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}

#: Where each rule family is documented (repo-relative, viewer-clickable).
_HELP_URI = "docs/STATIC_ANALYSIS.md"


def _rule_catalog() -> list[dict[str, object]]:
    from repro.devtools.engine import registry

    rules = sorted(
        [*registry.rules(), *registry.project_rules()], key=lambda rule: rule.code
    )
    return [
        {
            "id": rule.code,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": _LEVELS[rule.severity]},
            "helpUri": _HELP_URI,
        }
        for rule in rules
    ]


def sarif_payload(findings: Sequence[Finding]) -> dict[str, object]:
    """The SARIF 2.1.0 log document for one lint run's new findings."""
    rules = _rule_catalog()
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    results: list[dict[str, object]] = []
    for finding in findings:
        result: dict[str, object] = {
            "ruleId": finding.rule,
            "level": _LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        index = rule_index.get(finding.rule)
        if index is not None:  # PARSE has no registered rule object
            result["ruleIndex"] = index
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
