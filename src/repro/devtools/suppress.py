"""Inline suppressions: ``# reprolint: disable=RULE[,RULE...]``.

A suppression comment silences the named rules on its own line — either a
trailing comment on the offending statement or a comment-only line
immediately above it (for lines too crowded to annotate in place).  A bare
``# reprolint: disable`` (no rule list) silences every rule on that line;
use sparingly.  ``# reprolint: skip-file`` anywhere in the first ten lines
exempts the whole file (reserved for vendored or generated code).

Suppressions are matched against the *reported* line of a finding, which
for multi-line statements is the line of the offending AST node.
"""

from __future__ import annotations

import re

__all__ = ["SuppressionIndex"]

_DIRECTIVE = re.compile(r"#\s*reprolint:\s*(disable|skip-file)(?:=([A-Z0-9,\s]+))?")
_SKIP_FILE_WINDOW = 10


class SuppressionIndex:
    """Per-file index of suppression directives, built once per lint pass."""

    __slots__ = ("skip_file", "_by_line")

    def __init__(self, source: str) -> None:
        self.skip_file = False
        #: line number -> set of suppressed rule codes ("*" = all rules).
        self._by_line: dict[int, set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _DIRECTIVE.search(text)
            if match is None:
                continue
            kind, rule_list = match.groups()
            if kind == "skip-file":
                if lineno <= _SKIP_FILE_WINDOW:
                    self.skip_file = True
                continue
            rules = (
                {code.strip() for code in rule_list.split(",") if code.strip()}
                if rule_list
                else {"*"}
            )
            self._by_line.setdefault(lineno, set()).update(rules)
            # A comment-only line suppresses the statement below it.
            if text.lstrip().startswith("#"):
                self._by_line.setdefault(lineno + 1, set()).update(rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is silenced on ``line`` (or file-wide)."""
        if self.skip_file:
            return True
        rules = self._by_line.get(line)
        return rules is not None and ("*" in rules or rule in rules)
