"""The responsible-disclosure process (paper Sections 2.5, 4.4 and 5.1).

Models the notification campaign the authors ran in 2012 (and repeated in
2016): hunting for a security contact, falling back to ``security@`` /
``support@`` addresses, CERT/CC coordination, and the vendors' eventual
(non-)responses — the machinery behind Table 2.
"""

from repro.disclosure.process import (
    CampaignSummary,
    ContactChannel,
    DisclosureOutcome,
    NotificationCampaign,
)

__all__ = [
    "CampaignSummary",
    "ContactChannel",
    "DisclosureOutcome",
    "NotificationCampaign",
]
