"""A stochastic model of the vulnerability-notification process.

Reproduces the mechanics the paper documents:

- Section 2.5: the authors found a discoverable security contact for only
  a minority of vendors (16 of 42 across both campaigns), fell back to
  ``security@`` / ``support@`` addresses, and were later helped by
  CERT/CC and ICS-CERT; coordination via CERT "resulted in at least two
  additional public security advisories".
- Table 2: of 37 vendors, 5 published advisories, roughly half
  acknowledged receipt in some form, and the rest auto-responded or went
  silent.
- Section 5.1: response likelihood improves when a dedicated contact
  exists and when a coordinator is involved (Arora et al.).

Vendors' *behavioural propensities* come from their registry category, so
one simulated campaign regenerates a Table 2-shaped outcome distribution —
and counterfactual campaigns (e.g. "everyone routed through CERT") can be
compared against it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

from repro.devices.vendors import ResponseCategory, Vendor
from repro.timeline import Month

__all__ = [
    "ContactChannel",
    "DisclosureOutcome",
    "CampaignSummary",
    "NotificationCampaign",
]


class ContactChannel(Enum):
    """How the researchers reached (or failed to reach) a vendor."""

    SECURITY_PAGE = "dedicated security contact"
    PERSONAL_CONNECTION = "personal connection"
    GENERIC_ALIAS = "security@/support@ alias"
    WEB_FORM = "support web form"
    CERT_COORDINATION = "CERT/CC coordination"


@dataclass(frozen=True, slots=True)
class DisclosureOutcome:
    """One vendor's simulated path through the disclosure process.

    Attributes:
        vendor: vendor name.
        channel: how contact was attempted.
        contact_found: whether a dedicated contact was discoverable.
        acknowledged: month of substantive acknowledgement (None = never).
        advisory: month a public advisory appeared (None = never).
        via_cert: whether CERT coordination was involved.
        response_days: days from notification to first substantive
            response (None = never responded).
    """

    vendor: str
    channel: ContactChannel
    contact_found: bool
    acknowledged: Month | None
    advisory: Month | None
    via_cert: bool
    response_days: int | None


@dataclass(slots=True)
class CampaignSummary:
    """Aggregate outcomes of one simulated campaign (a Table 2 analogue)."""

    outcomes: list[DisclosureOutcome] = field(default_factory=list)

    @property
    def notified(self) -> int:
        """Vendors notified."""
        return len(self.outcomes)

    @property
    def contacts_found(self) -> int:
        """Vendors with a discoverable security contact."""
        return sum(1 for o in self.outcomes if o.contact_found)

    @property
    def acknowledged(self) -> int:
        """Vendors that substantively acknowledged."""
        return sum(1 for o in self.outcomes if o.acknowledged is not None)

    @property
    def advisories(self) -> int:
        """Vendors that published a public advisory."""
        return sum(1 for o in self.outcomes if o.advisory is not None)

    @property
    def cert_assisted_advisories(self) -> int:
        """Advisories that came out of CERT coordination."""
        return sum(
            1 for o in self.outcomes if o.advisory is not None and o.via_cert
        )

    def mean_response_days(self) -> float | None:
        """Average response latency among responders."""
        days = [o.response_days for o in self.outcomes if o.response_days]
        return sum(days) / len(days) if days else None


#: Per-category behavioural propensities, calibrated so a simulated 2012
#: campaign over the 37 notified vendors lands on Table 2's aggregates:
#: (P[acknowledge | contacted], P[advisory | acknowledged], response-mean-days).
_CATEGORY_BEHAVIOUR: dict[ResponseCategory, tuple[float, float, int]] = {
    ResponseCategory.PUBLIC_ADVISORY: (0.95, 0.9, 21),
    ResponseCategory.PRIVATE_RESPONSE: (0.9, 0.05, 35),
    ResponseCategory.AUTO_RESPONSE: (0.1, 0.0, 2),
    ResponseCategory.NO_RESPONSE: (0.04, 0.0, 60),
    ResponseCategory.NOTIFIED_2016: (0.5, 0.25, 60),
    ResponseCategory.NOT_NOTIFIED: (0.0, 0.0, 0),
}

#: Section 2.5 / 4.4: 16 of 42 vendors had a discoverable reporting contact.
CONTACT_DISCOVERY_PROBABILITY = 16 / 42

#: Arora et al. / the paper's own experience: a coordinator measurably
#: raises the odds of a substantive response and of an advisory.
CERT_ACKNOWLEDGE_BOOST = 1.6
CERT_ADVISORY_BOOST = 1.5


class NotificationCampaign:
    """Simulates one notification campaign over a set of vendors.

    Args:
        notified_at: the campaign month (February 2012 in the paper).
        cert_fraction: fraction of unreachable vendors escalated through
            CERT/CC (the authors escalated most of them, eventually).
    """

    def __init__(self, notified_at: Month, cert_fraction: float = 0.6) -> None:
        self.notified_at = notified_at
        self.cert_fraction = cert_fraction

    def run(self, vendors: list[Vendor], rng: random.Random) -> CampaignSummary:
        """Simulate the campaign over the given vendors."""
        summary = CampaignSummary()
        for vendor in vendors:
            summary.outcomes.append(self._notify(vendor, rng))
        return summary

    def _notify(self, vendor: Vendor, rng: random.Random) -> DisclosureOutcome:
        ack_p, advisory_p, mean_days = _CATEGORY_BEHAVIOUR[vendor.response]
        contact_found = rng.random() < CONTACT_DISCOVERY_PROBABILITY
        via_cert = False
        if contact_found:
            channel = (
                ContactChannel.PERSONAL_CONNECTION
                if rng.random() < 0.15
                else ContactChannel.SECURITY_PAGE
            )
        elif rng.random() < self.cert_fraction:
            channel = ContactChannel.CERT_COORDINATION
            via_cert = True
        else:
            channel = (
                ContactChannel.GENERIC_ALIAS
                if rng.random() < 0.7
                else ContactChannel.WEB_FORM
            )
        effective_ack = ack_p
        effective_advisory = advisory_p
        if via_cert:
            effective_ack = min(1.0, ack_p * CERT_ACKNOWLEDGE_BOOST)
            effective_advisory = min(1.0, advisory_p * CERT_ADVISORY_BOOST)
        elif not contact_found and channel is ContactChannel.GENERIC_ALIAS:
            # Mail to a guessed alias often bounces or lands unread.
            effective_ack = ack_p * 0.7

        acknowledged = advisory = None
        response_days = None
        if rng.random() < effective_ack:
            response_days = max(1, round(rng.expovariate(1 / mean_days)))
            acknowledged = self.notified_at + max(0, response_days // 30)
            if rng.random() < effective_advisory:
                advisory = acknowledged + rng.randrange(1, 5)
        return DisclosureOutcome(
            vendor=vendor.name,
            channel=channel,
            contact_found=contact_found,
            acknowledged=acknowledged,
            advisory=advisory,
            via_cert=via_cert,
            response_days=response_days,
        )
