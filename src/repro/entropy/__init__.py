"""Entropy-failure simulation: how weak keys actually come to exist.

The paper (Section 2.4) traces the weak-key epidemic to a common pattern on
headless, embedded and low-resource devices: the OS random number generator
has incorporated *no external entropy* by the time an application generates a
long-term key.  Devices with identical boot states then generate identical
first primes, diverge slightly (a clock tick, a packet arrival) during
generation of the second prime, and emit distinct moduli sharing one factor.

This package models that mechanism end to end:

- :mod:`repro.entropy.pool` — a /dev/urandom-style extract-expand pool with
  entropy accounting and a ``getrandom``-style blocking read (the 2014 Linux
  fix).
- :mod:`repro.entropy.sources` — boot-time entropy sources of varying
  quality (wall clock, MAC address, network interrupts, hardware RNG).
- :mod:`repro.entropy.boot` — the boot-sequence simulator that replays the
  "boot-time entropy hole" and its patched counterpart.
- :mod:`repro.entropy.keygen` — vendor keygen profiles built on top: shared-
  prime populations, the IBM nine-prime bug, and healthy generation.
"""

from repro.entropy.boot import BootOutcome, DeviceBootSimulator
from repro.entropy.keygen import (
    HealthyProfile,
    IbmNinePrimeProfile,
    KeygenProfile,
    SharedPrimeProfile,
    WeakKeyFactory,
)
from repro.entropy.pool import EntropyPool, InsufficientEntropyError
from repro.entropy.sources import (
    BootClockSource,
    EntropySource,
    HardwareRngSource,
    MacAddressSource,
    NetworkInterruptSource,
)

__all__ = [
    "BootClockSource",
    "BootOutcome",
    "DeviceBootSimulator",
    "EntropyPool",
    "EntropySource",
    "HardwareRngSource",
    "HealthyProfile",
    "IbmNinePrimeProfile",
    "InsufficientEntropyError",
    "KeygenProfile",
    "MacAddressSource",
    "NetworkInterruptSource",
    "SharedPrimeProfile",
    "WeakKeyFactory",
]
