"""Boot-sequence simulation: replaying the boot-time entropy hole.

The flaw found by Heninger et al. was one of *ordering*: on affected devices
the first cryptographic key was generated before any external entropy had
been mixed into the pool.  :class:`DeviceBootSimulator` makes the ordering
explicit — sources are split into those mixed *before* first key generation
and those that only arrive *after* — so patched and unpatched boots differ
only in where the keygen read happens.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.entropy.pool import EntropyPool
from repro.entropy.sources import EntropySource

__all__ = ["BootOutcome", "DeviceBootSimulator"]


@dataclass(slots=True)
class BootOutcome:
    """The observable result of one simulated boot.

    Attributes:
        pool: the entropy pool in the state the key generator saw it.
        seeded_at_keygen: whether the pool was credibly seeded at that point.
        mixed_log: (source name, entropy bits) per input, in mix order.
    """

    pool: EntropyPool
    seeded_at_keygen: bool
    mixed_log: list[tuple[str, float]] = field(default_factory=list)


class DeviceBootSimulator:
    """Simulates a device boot up to the moment of first key generation.

    Args:
        premix_sources: sources the firmware mixes before keygen (on flawed
            devices this list is empty or contains only low-entropy sources).
        postmix_sources: sources that arrive after keygen; they influence
            later reads but not the first key.
    """

    def __init__(
        self,
        premix_sources: list[EntropySource],
        postmix_sources: list[EntropySource] | None = None,
    ) -> None:
        self.premix_sources = list(premix_sources)
        self.postmix_sources = list(postmix_sources or [])

    def boot(self, rng: random.Random) -> BootOutcome:
        """Run one boot, returning the pool as the key generator sees it."""
        pool = EntropyPool()
        log: list[tuple[str, float]] = []
        for source in self.premix_sources:
            data, bits = source.sample(rng)
            pool.mix(data, bits)
            log.append((source.name, bits))
        return BootOutcome(
            pool=pool, seeded_at_keygen=pool.is_seeded, mixed_log=log
        )

    def continue_after_keygen(self, outcome: BootOutcome, rng: random.Random) -> None:
        """Mix the post-keygen sources into the outcome's pool (in place)."""
        for source in self.postmix_sources:
            data, bits = source.sample(rng)
            outcome.pool.mix(data, bits)
            outcome.mixed_log.append((source.name, bits))
