"""Vendor key-generation profiles built on the entropy-failure model.

A :class:`KeygenProfile` captures *how a product line generates RSA keys*:

- :class:`SharedPrimeProfile` — the canonical flaw (paper Section 2.4).  The
  fleet's possible boot-time pool states form a small finite set; the first
  prime is a deterministic function of the boot state, so two devices that
  boot identically share ``p``.  Divergence (a clock tick, a packet) arrives
  before the second prime, so ``q`` differs — yielding moduli that batch GCD
  can factor.
- :class:`IbmNinePrimeProfile` — the degenerate IBM RSA-II / BladeCenter bug
  (Section 3.3.1): only nine possible primes, hence at most 36 moduli.
- :class:`HealthyProfile` — correctly seeded generation; unique primes.

All primes are derived deterministically from ``(factory seed, profile id,
state)`` so an entire simulated world is reproducible from one integer seed.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.crypto.primes import generate_prime, is_openssl_style_prime, openssl_style_prime
from repro.crypto.rsa import DEFAULT_PUBLIC_EXPONENT, RsaKeyPair, keypair_from_primes

__all__ = [
    "GeneratedKey",
    "KeygenProfile",
    "SharedPrimeProfile",
    "IbmNinePrimeProfile",
    "HealthyProfile",
    "WeakKeyFactory",
]


@dataclass(frozen=True, slots=True)
class GeneratedKey:
    """A key pair plus the generation metadata the analysis layer can use.

    Attributes:
        keypair: the generated RSA key pair.
        profile_id: the keygen profile that produced it.
        boot_state: the boot-state index the first prime was derived from
            (None for healthy generation).
        weak_by_construction: True when the first prime came from a finite
            shared pool — i.e. the key is *potentially* factorable if any
            other device drew the same boot state.
    """

    keypair: RsaKeyPair
    profile_id: str
    boot_state: int | None
    weak_by_construction: bool


class KeygenProfile(ABC):
    """How one product line generates RSA keys."""

    #: unique identifier, namespaced per vendor/model (e.g. "juniper-srx")
    profile_id: str

    @abstractmethod
    def generate(self, rng: random.Random, factory: "WeakKeyFactory") -> GeneratedKey:
        """Generate one device key."""


class WeakKeyFactory:
    """Derives and caches deterministic primes for all keygen profiles.

    The factory is the single source of primes in a simulated world.  Primes
    are keyed by ``(profile_id, kind, state)`` and derived by seeding a PRNG
    from a hash of the factory seed and the key — so the same seed always
    rebuilds the same world, and distinct namespaces can never collide on a
    prime (beyond the negligible chance of two PRNG streams finding the same
    prime, ~2**-50 at the default size).

    Args:
        seed: world seed.
        prime_bits: size of every generated prime.  128 bits keeps the pure-
            Python simulation fast; the paper's devices used 512/1024-bit
            primes, and all algorithms here are size-agnostic.
        openssl_table: the small-prime table used for OpenSSL-style
            generation; tests may pass a shorter table for speed.
    """

    def __init__(
        self,
        seed: int,
        prime_bits: int = 128,
        openssl_table: tuple[int, ...] | None = None,
    ) -> None:
        if prime_bits < 24:
            raise ValueError("prime_bits below 24 risks accidental collisions")
        self.seed = seed
        self.prime_bits = prime_bits
        self._openssl_table = openssl_table
        self._cache: dict[tuple[str, str, int], int] = {}
        self._unique_counter = itertools.count()

    def _rng_for(self, profile_id: str, kind: str, state: int) -> random.Random:
        tag = f"repro|{self.seed}|{profile_id}|{kind}|{state}".encode()
        return random.Random(int.from_bytes(hashlib.sha256(tag).digest(), "big"))

    def derive_prime(
        self, profile_id: str, kind: str, state: int, openssl_style: bool
    ) -> int:
        """Return the cached deterministic prime for a (profile, kind, state)."""
        cache_key = (profile_id, kind, state)
        prime = self._cache.get(cache_key)
        if prime is None:
            rng = self._rng_for(profile_id, kind, state)
            while True:
                if openssl_style:
                    if self._openssl_table is not None:
                        prime = openssl_style_prime(
                            self.prime_bits, rng, self._openssl_table
                        )
                    else:
                        prime = openssl_style_prime(self.prime_bits, rng)
                else:
                    prime = generate_prime(self.prime_bits, rng)
                # Every real keygen rejects primes with gcd(p-1, e) != 1, or
                # the private exponent would not exist.
                if (prime - 1) % DEFAULT_PUBLIC_EXPONENT:
                    break
            self._cache[cache_key] = prime
        return prime

    def unique_state(self) -> int:
        """Return a never-repeating state index (for divergent second primes)."""
        return next(self._unique_counter)

    def is_openssl_prime(self, p: int) -> bool:
        """Apply the OpenSSL fingerprint predicate with this factory's table."""
        if self._openssl_table is not None:
            return is_openssl_style_prime(p, self._openssl_table)
        return is_openssl_style_prime(p)


@dataclass(frozen=True)
class SharedPrimeProfile(KeygenProfile):
    """The boot-time entropy-hole flaw: finite boot states, shared first primes.

    Args:
        profile_id: namespace for this product line's primes.
        boot_states: how many distinct pool states the fleet can boot into.
            Smaller values mean more collisions, i.e. a higher fraction of
            factorable keys once the population exceeds the state count.
        openssl_style: whether this implementation generates primes the
            OpenSSL way (drives the Table 5 fingerprint).
        divergence_states: size of the second-prime state space.  ``None``
            (the default) gives every key a globally unique second prime;
            a finite value additionally allows *identical moduli* on distinct
            devices (shared default certificates, seen in the wild).
    """

    profile_id: str
    boot_states: int
    openssl_style: bool = True
    divergence_states: int | None = None

    def __post_init__(self) -> None:
        if self.boot_states < 1:
            raise ValueError("boot_states must be >= 1")
        if self.divergence_states is not None and self.divergence_states < 1:
            raise ValueError("divergence_states must be >= 1 when finite")

    def generate(self, rng: random.Random, factory: WeakKeyFactory) -> GeneratedKey:
        boot_state = rng.randrange(self.boot_states)
        p = factory.derive_prime(self.profile_id, "boot-p", boot_state, self.openssl_style)
        while True:
            if self.divergence_states is None:
                q_state = factory.unique_state()
            else:
                q_state = boot_state * self.divergence_states + rng.randrange(
                    self.divergence_states
                )
            q = factory.derive_prime(self.profile_id, "diverged-q", q_state, self.openssl_style)
            if q != p:
                break
        return GeneratedKey(
            keypair=keypair_from_primes(p, q),
            profile_id=self.profile_id,
            boot_state=boot_state,
            weak_by_construction=True,
        )


@dataclass(frozen=True)
class IbmNinePrimeProfile(KeygenProfile):
    """The IBM RSA-II / BladeCenter bug: nine possible primes, 36 moduli.

    "a bug in the prime-generation code ... led to only nine possible primes
    being generated.  Every public key associated with these devices was the
    product of two of these primes." (paper Section 3.3.1)
    """

    profile_id: str = "ibm-rsa2"
    prime_count: int = 9
    #: IBM's implementation satisfies the OpenSSL fingerprint (Table 5).
    openssl_style: bool = True

    def __post_init__(self) -> None:
        if self.prime_count < 2:
            raise ValueError("need at least two primes to form a modulus")

    def clique_primes(self, factory: WeakKeyFactory) -> list[int]:
        """The full set of primes this implementation can ever emit."""
        return [
            factory.derive_prime(self.profile_id, "clique", i, self.openssl_style)
            for i in range(self.prime_count)
        ]

    def possible_moduli(self, factory: WeakKeyFactory) -> list[int]:
        """All C(prime_count, 2) moduli the implementation can produce."""
        primes = self.clique_primes(factory)
        return sorted(
            a * b for i, a in enumerate(primes) for b in primes[i + 1 :]
        )

    def generate(self, rng: random.Random, factory: WeakKeyFactory) -> GeneratedKey:
        i, j = rng.sample(range(self.prime_count), 2)
        p = factory.derive_prime(self.profile_id, "clique", i, self.openssl_style)
        q = factory.derive_prime(self.profile_id, "clique", j, self.openssl_style)
        return GeneratedKey(
            keypair=keypair_from_primes(p, q),
            profile_id=self.profile_id,
            boot_state=min(i, j) * self.prime_count + max(i, j),
            weak_by_construction=True,
        )


@dataclass(frozen=True)
class HealthyProfile(KeygenProfile):
    """Correctly seeded key generation: every prime globally unique.

    Primes are generated plainly: the OpenSSL fingerprint (Table 5) only ever
    observes primes of *factored* keys, and healthy keys are never factored,
    so their generation style is unobservable to the measurement pipeline.
    """

    profile_id: str

    def generate(self, rng: random.Random, factory: WeakKeyFactory) -> GeneratedKey:
        p = factory.derive_prime(
            self.profile_id, "healthy-p", factory.unique_state(), openssl_style=False
        )
        q = factory.derive_prime(
            self.profile_id, "healthy-q", factory.unique_state(), openssl_style=False
        )
        if p == q:  # pragma: no cover - probability ~2**-120
            q = factory.derive_prime(
                self.profile_id, "healthy-q", factory.unique_state(), openssl_style=False
            )
        return GeneratedKey(
            keypair=keypair_from_primes(p, q),
            profile_id=self.profile_id,
            boot_state=None,
            weak_by_construction=False,
        )
