"""A /dev/urandom-style entropy pool with entropy accounting.

The pool is an extract-expand construction over SHA-256: inputs are hashed
into a running state, and output blocks are derived from the state plus an
output counter (so reads never repeat, but two pools that mixed identical
inputs produce identical output streams — the root cause of the weak-key
flaw).

Entropy *credits* are tracked separately from the state, mirroring the Linux
kernel: ``read`` (like ``/dev/urandom``) always answers, even before the pool
has been credibly seeded; ``getrandom`` (like the 2014 system call, paper
Section 2.5) raises :class:`InsufficientEntropyError` until the credited
entropy crosses the seed threshold.
"""

from __future__ import annotations

import hashlib

__all__ = ["EntropyPool", "InsufficientEntropyError", "SEED_THRESHOLD_BITS"]

# Linux considers the CRNG initialised once 128 bits of entropy are credited.
SEED_THRESHOLD_BITS = 128


class InsufficientEntropyError(RuntimeError):
    """Raised by :meth:`EntropyPool.getrandom` before the pool is seeded."""


class EntropyPool:
    """Deterministic extract-expand entropy pool.

    Attributes:
        entropy_bits: total entropy credited by :meth:`mix` so far.
    """

    def __init__(self) -> None:
        self._state = hashlib.sha256(b"repro-entropy-pool-v1").digest()
        self._counter = 0
        self.entropy_bits = 0.0

    def mix(self, data: bytes, entropy_bits: float = 0.0) -> None:
        """Mix ``data`` into the pool, crediting ``entropy_bits`` of entropy.

        Mixing is order-sensitive, like the kernel input pool: the same
        inputs in the same order yield the same output stream.
        """
        self._state = hashlib.sha256(self._state + data).digest()
        if entropy_bits < 0:
            raise ValueError("entropy credit cannot be negative")
        self.entropy_bits += entropy_bits

    @property
    def is_seeded(self) -> bool:
        """True once the credited entropy reaches the kernel seed threshold."""
        return self.entropy_bits >= SEED_THRESHOLD_BITS

    def read(self, nbytes: int) -> bytes:
        """Nonblocking read (``/dev/urandom`` semantics).

        Always returns output — even from a never-mixed pool.  This is the
        behaviour that made the boot-time entropy hole exploitable.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        out = bytearray()
        while len(out) < nbytes:
            block = hashlib.sha256(
                self._state + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            out.extend(block)
        # Reads perturb the state so the stream never repeats within one pool.
        self._state = hashlib.sha256(self._state + b"reseed" + bytes(out[:32])).digest()
        return bytes(out[:nbytes])

    def getrandom(self, nbytes: int) -> bytes:
        """Blocking-until-seeded read (``getrandom(2)`` semantics, 2014 fix).

        Raises:
            InsufficientEntropyError: if the pool has not yet been credibly
                seeded; a correctly patched device never generates a key from
                this state.
        """
        if not self.is_seeded:
            raise InsufficientEntropyError(
                f"pool holds {self.entropy_bits:.0f} credited bits, "
                f"needs {SEED_THRESHOLD_BITS}"
            )
        return self.read(nbytes)

    def fork(self) -> "EntropyPool":
        """Return an identical copy (two devices with the same boot history)."""
        clone = EntropyPool()
        clone._state = self._state
        clone._counter = self._counter
        clone.entropy_bits = self.entropy_bits
        return clone

    def state_fingerprint(self) -> str:
        """Hex digest identifying the current pool state (for tests/analysis)."""
        return hashlib.sha256(
            self._state + self._counter.to_bytes(8, "big") + b"fp"
        ).hexdigest()
