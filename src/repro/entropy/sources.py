"""Boot-time entropy sources of varying quality.

Each source models one input the kernel might mix at boot.  The crucial
distinction is between *distinctness* and *entropy*: a MAC address is unique
per device but publicly known (zero secrecy), and a coarse boot clock takes
only a handful of values across a fleet of devices booted from the same
firmware image.  Devices whose only inputs are low-entropy sources land in a
small set of possible pool states — the precondition for shared primes.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

__all__ = [
    "EntropySource",
    "BootClockSource",
    "MacAddressSource",
    "NetworkInterruptSource",
    "HardwareRngSource",
]


class EntropySource(ABC):
    """A source of boot-time input to the entropy pool."""

    #: human-readable source name used in boot logs and analysis output
    name: str = "abstract"

    @abstractmethod
    def sample(self, rng: random.Random) -> tuple[bytes, float]:
        """Draw one boot's worth of input.

        Returns:
            ``(data, entropy_bits)`` — the bytes mixed into the pool and the
            entropy the kernel would credit for them.
        """


class BootClockSource(EntropySource):
    """The real-time clock at first key generation.

    Embedded devices frequently boot with the clock at the epoch or at the
    firmware build timestamp; resolution is coarse.  ``distinct_values``
    controls how many clock readings the whole fleet can observe.
    """

    name = "boot-clock"

    def __init__(self, distinct_values: int = 64) -> None:
        if distinct_values < 1:
            raise ValueError("distinct_values must be >= 1")
        self.distinct_values = distinct_values

    def sample(self, rng: random.Random) -> tuple[bytes, float]:
        reading = rng.randrange(self.distinct_values)
        # The kernel credits timer inputs almost nothing.
        credited = min(1.0, self.distinct_values.bit_length() / 8)
        return reading.to_bytes(8, "big"), credited


class MacAddressSource(EntropySource):
    """The NIC MAC address: device-unique, but attacker-knowable.

    Mixing it makes pool states distinct across devices *if* it is mixed
    before first use; many flawed firmwares generated keys before the network
    stack initialised.  Credited entropy is zero because the value is public.
    """

    name = "mac-address"

    def sample(self, rng: random.Random) -> tuple[bytes, float]:
        mac = rng.getrandbits(48).to_bytes(6, "big")
        return mac, 0.0


class NetworkInterruptSource(EntropySource):
    """Inter-arrival jitter of early network interrupts.

    A headless device that has seen a few packets gets a little true
    entropy; ``events`` bounds how many arrivals happened before keygen.
    """

    name = "network-interrupts"

    def __init__(self, events: int = 4, jitter_bits_per_event: float = 1.5) -> None:
        if events < 0:
            raise ValueError("events must be >= 0")
        self.events = events
        self.jitter_bits_per_event = jitter_bits_per_event

    def sample(self, rng: random.Random) -> tuple[bytes, float]:
        timings = bytes(rng.getrandbits(8) for _ in range(max(self.events, 1)))
        return timings, self.events * self.jitter_bits_per_event


class HardwareRngSource(EntropySource):
    """A hardware RNG delivering full-entropy seed material."""

    name = "hardware-rng"

    def __init__(self, nbytes: int = 32) -> None:
        if nbytes < 1:
            raise ValueError("nbytes must be >= 1")
        self.nbytes = nbytes

    def sample(self, rng: random.Random) -> tuple[bytes, float]:
        data = rng.randbytes(self.nbytes)
        return data, 8.0 * self.nbytes
