"""Fault injection, recovery, and checkpointing for clustered execution.

The paper's batch-GCD runs were cluster jobs over 81.2M moduli where
worker loss and partial results are the normal case; this package is the
reproduction's answer.  Three layers, each usable alone:

- :mod:`repro.faults.plan` / :mod:`repro.faults.inject` — a deterministic
  **fault seam**: a seeded :class:`FaultPlan` schedules per-chunk crash /
  timeout / corrupt-result / slow-worker faults, enabled only via
  ``$REPRO_FAULTS`` or an explicit plan (a single ``is None`` check —
  zero overhead — otherwise).
- :mod:`repro.faults.recovery` — :class:`ResilientExecutor`, the retry /
  pool-rebuild / degrade-to-in-process driver the clustered batch GCD
  runs its task chunks through, bounded by a :class:`RecoveryPolicy`.
- :mod:`repro.faults.checkpoint` — :class:`CheckpointStore`, subset-pass
  granular JSON checkpoints so a killed run resumes with a byte-identical
  final result.
- :mod:`repro.faults.journal` — :class:`MutationJournal`, the write-ahead
  append/commit journal the durable stores (service job queue, incremental
  product-tree store) build their SIGKILL-mid-mutation recovery on.
- :mod:`repro.faults.fsio` — the shared durable-write primitives
  (:func:`fsync_file`, :func:`fsync_dir`, :func:`atomic_write_text`)
  every persistence protocol above routes its commit points through;
  machine-checked by the DUR rules of reprolint.

See ``docs/FAULTS.md`` for formats and semantics.
"""

from repro.faults.checkpoint import CheckpointStore, corpus_digest
from repro.faults.fsio import atomic_write_text, fsync_dir, fsync_file
from repro.faults.journal import MutationJournal
from repro.faults.inject import (
    CRASH_EXIT_CODE,
    InjectedCrash,
    corrupt_chunk_results,
    trigger_fault,
)
from repro.faults.plan import (
    ENV_FAULTS,
    FAULT_KINDS,
    FaultPlan,
    FaultRule,
    load_fault_plan,
    resolve_fault_plan,
)
from repro.faults.recovery import (
    ChunkResultError,
    RecoveryPolicy,
    RecoveryStats,
    ResilientExecutor,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "ENV_FAULTS",
    "FAULT_KINDS",
    "CheckpointStore",
    "ChunkResultError",
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "MutationJournal",
    "RecoveryPolicy",
    "RecoveryStats",
    "ResilientExecutor",
    "atomic_write_text",
    "corpus_digest",
    "fsync_dir",
    "fsync_file",
    "corrupt_chunk_results",
    "load_fault_plan",
    "resolve_fault_plan",
    "trigger_fault",
]
