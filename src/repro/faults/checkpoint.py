"""Subset-pass checkpointing for the clustered batch GCD.

A clustered run's unit of durable progress is the **subset pass**: the
``(subset i, product j)`` remainder-tree task whose sparse divisor hits
are merged into the final result.  :class:`CheckpointStore` persists each
completed pass as one JSON shard plus a manifest, so a killed run —
SIGKILL, OOM, power loss — restarts from the last completed pass and
still produces a byte-identical :class:`~repro.core.results.BatchGcdResult`
(pass aggregation is an lcm-merge, commutative and associative, so the
replay order does not matter).

Layout under ``checkpoint_dir``::

    manifest.json            # run identity + completed pass list
    pass-<i>-<j>.json        # sparse divisors of one completed pass

The manifest binds the checkpoint to a specific computation: a SHA-256
digest of the corpus plus the ``k`` / scheduler / backend parameters.  A
mismatched manifest (different corpus or engine shape) is *ignored*, not
an error — the run simply starts fresh and overwrites.  Writes go through
a temp-file rename so a kill mid-write never leaves a torn shard; a shard
listed in the manifest but unreadable on load is treated as incomplete
and recomputed.

Telemetry: loading records a ``batch_gcd.checkpoint_load`` span (with the
number of passes restored), each incremental write a
``batch_gcd.checkpoint_write`` span.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.faults.fsio import atomic_write_text as _atomic_write
from repro.telemetry import get_telemetry

__all__ = ["CheckpointStore", "corpus_digest"]

_MANIFEST = "manifest.json"
_VERSION = 1


def corpus_digest(moduli: Sequence[int]) -> str:
    """A stable identity for a corpus (order-sensitive, content-exact)."""
    h = hashlib.sha256()
    for n in moduli:
        h.update(f"{n:x}\n".encode("ascii"))
    return h.hexdigest()


class CheckpointStore:
    """Persist and restore completed subset passes for one computation.

    Args:
        directory: the checkpoint directory (created on first write).
        digest: corpus identity from :func:`corpus_digest`.
        k: subset count of the run.
        scheduler: task-graph driver name.
        backend: big-int backend name.
    """

    def __init__(
        self, directory: "str | Path", *, digest: str, k: int, scheduler: str,
        backend: str,
    ) -> None:
        self.directory = Path(directory)
        self._identity = {
            "version": _VERSION,
            "digest": digest,
            "k": k,
            "scheduler": scheduler,
            "backend": backend,
        }
        self._passes: set[tuple[int, int]] = set()

    @property
    def completed_passes(self) -> set[tuple[int, int]]:
        """Passes currently recorded in the manifest."""
        return set(self._passes)

    def _shard_path(self, i: int, j: int) -> Path:
        return self.directory / f"pass-{i}-{j}.json"

    def load(self) -> dict[tuple[int, int], list[tuple[int, int]]]:
        """Restore completed passes: ``(i, j) -> [(position, divisor), ...]``.

        Returns an empty mapping when there is no checkpoint or the
        manifest identifies a different computation.  Unreadable shards
        are skipped (their passes recompute).
        """
        telemetry = get_telemetry()
        with telemetry.span("batch_gcd.checkpoint_load"):
            manifest_path = self.directory / _MANIFEST
            restored: dict[tuple[int, int], list[tuple[int, int]]] = {}
            self._passes = set()
            try:
                manifest = json.loads(manifest_path.read_text())
            except (OSError, ValueError):
                telemetry.annotate(passes=0, matched=False)
                return restored
            if any(manifest.get(key) != value for key, value in self._identity.items()):
                telemetry.annotate(passes=0, matched=False)
                return restored
            for entry in manifest.get("passes", []):
                i, j = int(entry[0]), int(entry[1])
                try:
                    shard = json.loads(self._shard_path(i, j).read_text())
                    divisors = [
                        (int(pos), int(value, 16))
                        for pos, value in shard["divisors"]
                    ]
                except (OSError, ValueError, KeyError, TypeError):
                    continue  # torn/missing shard: recompute this pass
                restored[(i, j)] = divisors
                self._passes.add((i, j))
            telemetry.annotate(passes=len(restored), matched=True)
            return restored

    def record(
        self,
        passes: Mapping[tuple[int, int], Iterable[tuple[int, int]]],
    ) -> None:
        """Durably add completed passes (shards first, then the manifest)."""
        if not passes:
            return
        telemetry = get_telemetry()
        with telemetry.span("batch_gcd.checkpoint_write", passes=len(passes)):
            self.directory.mkdir(parents=True, exist_ok=True)
            for (i, j), divisors in passes.items():
                shard = {
                    "pass": [i, j],
                    "divisors": [[pos, f"{value:x}"] for pos, value in divisors],
                }
                _atomic_write(self._shard_path(i, j), json.dumps(shard))
                self._passes.add((i, j))
            manifest = dict(self._identity)
            manifest["passes"] = sorted([i, j] for i, j in self._passes)
            _atomic_write(
                self.directory / _MANIFEST, json.dumps(manifest, indent=1)
            )
