"""Durable filesystem primitives shared by every persistence protocol.

The repo grew five hand-rolled write protocols (checkpoint shards, the
mutation journal, product-tree manifests, the service job-queue journal,
``endpoint.json`` publish) and each one needs the same three moves done
in the same order to survive a crash:

- :func:`fsync_file` — flush the user-space buffer *and* fsync the file
  descriptor.  A SIGKILL loses whatever sits in the Python-level buffer;
  a power loss additionally loses whatever sits in the page cache.
  ``flush()`` alone only defends against the first.
- :func:`atomic_write_text` — the commit-point discipline: write a temp
  file **in the same directory**, fsync it, then :func:`os.replace` onto
  the final path, then fsync the directory so the new directory entry is
  itself durable.  A reader never observes a torn file, and a crash at
  any step leaves either the old committed state or the new one.
- :func:`fsync_dir` — make a completed rename durable.  The kernel keeps
  the new directory entry after a SIGKILL, but only a directory fsync
  pins it across power loss.

The DUR rules in :mod:`repro.devtools.checks.durability` machine-check
that persistence code either routes through these helpers or reproduces
the same discipline inline; the crash drills in
``tests/test_faults_durability_drills.py`` demonstrate the data loss each
rule prevents.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import IO

__all__ = ["atomic_write_text", "fsync_dir", "fsync_file"]


def fsync_file(handle: IO) -> None:
    """Flush the user-space buffer and fsync the descriptor.

    The pair is the unit of durability: ``flush()`` moves bytes from the
    Python buffer to the kernel (SIGKILL-safe), ``os.fsync`` moves them
    from the page cache to the disk (power-loss-safe).
    """
    handle.flush()
    os.fsync(handle.fileno())


def fsync_dir(path: str | Path) -> None:
    """Fsync a directory so renames/creations inside it are durable."""
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    fd = os.open(os.fspath(path), flags)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Durably replace ``path`` with ``text`` via temp-file + atomic rename.

    The temp file lives in the same directory (``<name>.tmp``) so the
    rename cannot cross filesystems, and it is fsynced *before* the
    rename — otherwise the rename can land while the content is still in
    the page cache and a power loss commits an empty or torn file.  The
    directory entry is fsynced after, so the commit itself is durable.
    Parent directories are created on demand.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_suffix(target.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        fsync_file(handle)
    os.replace(tmp, target)
    fsync_dir(target.parent)
