"""Worker-side fault triggering: the injection half of the fault seam.

:func:`trigger_fault` is called at the top of every task-chunk execution
(pool worker or in-process) with the chunk's id and attempt number.  With
no plan installed it is a single ``is None`` check — the production
fast path.  With a plan, it consults
:meth:`~repro.faults.plan.FaultPlan.rule_for` and acts:

- ``crash`` on a **pool worker** hard-kills the process (``os._exit``),
  so the parent observes a genuine ``BrokenProcessPool`` — the same
  failure a cluster sees when a node is OOM-killed mid-task.  In-process
  it raises :class:`InjectedCrash` instead (killing the driver would end
  the run it is supposed to test).
- ``timeout`` and ``slow`` stall for ``rule.seconds`` before the chunk
  computes.  The two kinds differ only in intent: a ``timeout`` stall is
  sized to exceed the recovery policy's per-chunk timeout, a ``slow``
  stall to stay under it.
- ``corrupt`` does nothing here; the *caller* truncates its otherwise
  correct result via :func:`corrupt_chunk_results` so the parent's
  completeness verification has something real to catch.
"""

from __future__ import annotations

import os
import time
from typing import Sequence, TypeVar

from repro.faults.plan import FaultPlan, FaultRule

__all__ = [
    "CRASH_EXIT_CODE",
    "InjectedCrash",
    "corrupt_chunk_results",
    "trigger_fault",
]

#: Exit status used by a ``crash`` fault on a pool worker (distinctive in
#: worker post-mortems; any nonzero status breaks the pool identically).
CRASH_EXIT_CODE = 76

T = TypeVar("T")


class InjectedCrash(RuntimeError):
    """A planned in-process worker crash (the non-pool ``crash`` form)."""


def trigger_fault(
    plan: FaultPlan | None,
    chunk_id: int,
    attempt: int,
    *,
    pooled: bool,
) -> FaultRule | None:
    """Apply the planned fault for this (chunk, attempt), if any.

    Returns the active rule so the caller can apply result-side effects
    (``corrupt``).  Raises / stalls / exits for the other kinds.
    """
    if plan is None:
        return None
    rule = plan.rule_for(chunk_id, attempt)
    if rule is None:
        return None
    if rule.kind == "crash":
        if pooled:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedCrash(
            f"injected crash: chunk {chunk_id} attempt {attempt}"
        )
    if rule.kind in ("timeout", "slow"):
        time.sleep(rule.seconds)
    return rule


def corrupt_chunk_results(results: Sequence[T]) -> list[T]:
    """Truncate a chunk's per-task records (the ``corrupt`` fault payload).

    Dropping the final record leaves a well-formed but *incomplete* result
    — exactly the shape of a lost shard or a truncated IPC payload — which
    the parent's completeness check must reject and retry.
    """
    return list(results[:-1])
