"""Append-only mutation journal: write-ahead durability for small stores.

:class:`MutationJournal` is the write-ahead half of the crash-safety
story shared by the durable stores in this codebase (the service job
queue journals transitions; the incremental product-tree store journals
inserts).  The contract is deliberately minimal:

- **append before mutate** — a caller appends one JSON record describing
  the mutation it is *about* to apply, applies it, and later calls
  :meth:`commit` once the mutation is durably reflected elsewhere (e.g.
  an atomically-renamed manifest).  A SIGKILL between append and commit
  leaves the record behind, and :meth:`pending` surfaces it on the next
  open so the mutation can be replayed.
- **torn tails are expected** — a kill mid-append can leave a partial
  final line.  Replay parses line by line and stops at the first
  unparsable line; everything before it is trusted, everything after is
  discarded.  Appends are newline-terminated *before* the payload is
  flushed so a previous record can never be fused with the next one.
- **commit truncates** — committed records carry no information (the
  authoritative state lives in the caller's own files), so :meth:`commit`
  rewrites the journal without them via a temp-file rename, keeping the
  file bounded by the in-flight window rather than by history.

Records are JSON objects with sorted keys; the caller owns the schema.
Every record is stamped with a monotonically increasing ``_seq`` so
replay order and the commit horizon are unambiguous.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

__all__ = ["MutationJournal"]


class MutationJournal:
    """A torn-tail-tolerant, append-only JSONL write-ahead journal.

    Args:
        path: the journal file (parent directories are created on first
            append).  The file itself appears on first append too — a
            journal that never saw a mutation leaves nothing behind.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._next_seq = 0
        for record in self._read():
            self._next_seq = max(self._next_seq, int(record["_seq"]) + 1)

    # -- reading ---------------------------------------------------------

    def _read(self) -> Iterator[dict[str, Any]]:
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                return  # torn tail: trust nothing at or after the tear
            if not isinstance(record, dict) or "_seq" not in record:
                return
            yield record

    def pending(self) -> list[dict[str, Any]]:
        """All durable, uncommitted records in append order."""
        return sorted(self._read(), key=lambda r: int(r["_seq"]))

    # -- writing ---------------------------------------------------------

    def append(self, record: dict[str, Any]) -> int:
        """Durably append one mutation record; returns its ``_seq``.

        The record must be JSON-serialisable and must not contain the
        reserved ``_seq`` key (the journal stamps it).
        """
        if "_seq" in record:
            raise ValueError("'_seq' is reserved for the journal")
        seq = self._next_seq
        stamped = dict(record)
        stamped["_seq"] = seq
        line = json.dumps(stamped, sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._next_seq = seq + 1
        return seq

    def commit(self, through_seq: int) -> None:
        """Drop every record with ``_seq <= through_seq`` (atomic rewrite).

        The rewrite is fsynced before the rename so a power loss cannot
        commit a torn journal over a good one.  The rename itself is
        *not* followed by a directory fsync: losing it merely resurrects
        already-committed records, and replay is idempotent, so the
        extra fsync would buy nothing (the documented DUR004 exemption).
        """
        keep = [r for r in self.pending() if int(r["_seq"]) > through_seq]
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        text = "".join(json.dumps(r, sort_keys=True) + "\n" for r in keep)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        # Losing this rename to a power loss only re-exposes committed
        # records to an idempotent replay.  # reprolint: disable=DUR004
        tmp.replace(self.path)

    def clear(self) -> None:
        """Drop every record (the caller's state is fully committed)."""
        self.commit(self._next_seq)
