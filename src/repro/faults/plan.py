"""Deterministic fault plans: seeded per-chunk failure schedules.

A :class:`FaultPlan` decides, as a pure function of ``(seed, chunk_id,
attempt)``, whether a task chunk experiences a fault on a given execution
attempt — so a chaos run is exactly reproducible regardless of worker
count, scheduling order, or which process happens to execute the chunk.

Each :class:`FaultRule` selects a subset of chunks (an explicit ``chunks``
list, or a seeded ``rate`` draw per chunk) and faults their first
``times`` attempts with one of four kinds:

- ``crash`` — the worker dies (``os._exit`` on a pool worker, a raised
  :class:`~repro.faults.inject.InjectedCrash` in-process);
- ``timeout`` — the worker stalls for ``seconds`` before computing, long
  enough to trip a configured per-chunk timeout;
- ``corrupt`` — the chunk computes but returns a truncated result set,
  which the parent's completeness check rejects;
- ``slow`` — a sub-timeout stall: a straggler, not a failure.

Rules are consumed in order: with ``crash(times=2)`` followed by
``slow(times=1)``, a selected chunk crashes on attempts 0 and 1 and runs
slow on attempt 2.  The plan is inert unless explicitly installed — the
production path never consults one (see :func:`resolve_fault_plan`).

Plans parse from JSON (``{"seed": 7, "rules": [{"kind": "crash", ...}]}``)
or from a compact spec string (``"seed=7;crash:rate=1.0,times=2"``); see
``docs/FAULTS.md`` for the full grammar.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ENV_FAULTS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "load_fault_plan",
    "resolve_fault_plan",
]

#: Environment variable holding a fault spec (string or JSON) for a run.
ENV_FAULTS = "REPRO_FAULTS"

#: Recognised fault kinds (see the module docstring).
FAULT_KINDS = ("crash", "timeout", "corrupt", "slow")


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One fault schedule: which chunks, how many attempts, what kind.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        rate: fraction of chunks selected by the seeded draw (ignored when
            ``chunks`` is given).
        times: number of consecutive faulted attempts per selected chunk.
        seconds: stall duration for ``timeout``/``slow`` faults.
        chunks: explicit chunk ids to fault (overrides ``rate``).
    """

    kind: str
    rate: float = 1.0
    times: int = 1
    seconds: float = 0.25
    chunks: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (choose from {FAULT_KINDS})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seeded, order-sensitive set of fault rules.

    The plan is immutable and built from JSON-scalar fields only, so it
    pickles across the process-pool boundary unchanged — workers and the
    parent always agree on the schedule.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = field(default_factory=tuple)

    def rule_for(self, chunk_id: int, attempt: int) -> FaultRule | None:
        """The fault (if any) chunk ``chunk_id`` suffers on ``attempt``.

        Deterministic: depends only on the plan and the two arguments.
        """
        consumed = 0
        for rule in self.rules:
            if not self._selects(rule, chunk_id):
                continue
            if attempt < consumed + rule.times:
                return rule
            consumed += rule.times
        return None

    def schedule(self, chunk_ids: range | list[int]) -> dict[int, list[str]]:
        """Per-chunk fault kinds in attempt order (empty lists omitted).

        This is what chaos tests use to compute the *expected* retry and
        rebuild counters for an injected plan.
        """
        out: dict[int, list[str]] = {}
        for chunk_id in chunk_ids:
            kinds: list[str] = []
            attempt = 0
            while (rule := self.rule_for(chunk_id, attempt)) is not None:
                kinds.append(rule.kind)
                if rule.kind in ("slow",):
                    break  # a slow attempt completes; later attempts never run
                attempt += 1
            if kinds:
                out[chunk_id] = kinds
        return out

    def _selects(self, rule: FaultRule, chunk_id: int) -> bool:
        if rule.chunks is not None:
            return chunk_id in rule.chunks
        if rule.rate >= 1.0:
            return True
        draw = random.Random(
            f"repro-faults|{self.seed}|{rule.kind}|{chunk_id}"
        ).random()
        return draw < rule.rate

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [
                {
                    "kind": r.kind,
                    "rate": r.rate,
                    "times": r.times,
                    "seconds": r.seconds,
                    **({"chunks": list(r.chunks)} if r.chunks is not None else {}),
                }
                for r in self.rules
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError("fault plan JSON must be an object")
        rules = []
        for entry in payload.get("rules", []):
            chunks = entry.get("chunks")
            rules.append(
                FaultRule(
                    kind=entry["kind"],
                    rate=float(entry.get("rate", 1.0)),
                    times=int(entry.get("times", 1)),
                    seconds=float(entry.get("seconds", 0.25)),
                    chunks=tuple(chunks) if chunks is not None else None,
                )
            )
        return cls(seed=int(payload.get("seed", 0)), rules=tuple(rules))

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON or from the compact spec grammar.

        Spec grammar (segments joined by ``;``)::

            seed=7;crash:rate=1.0,times=2;slow:seconds=0.01,chunks=0|3

        The optional leading ``seed=N`` names the selection seed; every
        other segment is ``kind[:key=value,...]``.
        """
        text = text.strip()
        if not text:
            raise ValueError("empty fault plan spec")
        if text.startswith("{"):
            return cls.from_dict(json.loads(text))
        seed = 0
        rules: list[FaultRule] = []
        for segment in text.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            if segment.startswith("seed="):
                seed = int(segment[len("seed=") :])
                continue
            kind, _, tail = segment.partition(":")
            kwargs: dict = {}
            for pair in filter(None, (p.strip() for p in tail.split(","))):
                key, sep, value = pair.partition("=")
                if not sep:
                    raise ValueError(f"bad fault option {pair!r} in {segment!r}")
                if key == "chunks":
                    kwargs["chunks"] = tuple(
                        int(c) for c in value.split("|") if c
                    )
                elif key == "rate":
                    kwargs["rate"] = float(value)
                elif key == "times":
                    kwargs["times"] = int(value)
                elif key == "seconds":
                    kwargs["seconds"] = float(value)
                else:
                    raise ValueError(f"unknown fault option {key!r}")
            rules.append(FaultRule(kind=kind.strip(), **kwargs))
        if not rules:
            raise ValueError(f"fault plan spec names no rules: {text!r}")
        return cls(seed=seed, rules=tuple(rules))


def load_fault_plan(source: "str | Path | FaultPlan | None") -> FaultPlan | None:
    """Coerce a CLI/config value into a plan.

    Accepts an already-built plan, a path to a JSON plan file, or an
    inline spec/JSON string.  ``None`` stays ``None``.
    """
    if source is None or isinstance(source, FaultPlan):
        return source
    text = str(source)
    candidate = Path(text)
    try:
        is_file = candidate.is_file()
    except OSError:  # e.g. a spec string too long for a pathname
        is_file = False
    if is_file:
        return FaultPlan.parse(candidate.read_text())
    return FaultPlan.parse(text)


def resolve_fault_plan(
    explicit: "str | Path | FaultPlan | None" = None,
) -> FaultPlan | None:
    """The plan for a run: an explicit one, else ``$REPRO_FAULTS``, else None.

    This is the production seam: with no explicit plan and no environment
    override the result is ``None`` and every injection site is a single
    ``is None`` check — the zero-overhead default.
    """
    if explicit is not None:
        return load_fault_plan(explicit)
    env = os.environ.get(ENV_FAULTS)
    if env:
        return load_fault_plan(env)
    return None
