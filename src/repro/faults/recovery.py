"""Retry / rebuild / degrade execution of task chunks over a process pool.

:class:`ResilientExecutor` is the recovery seam between a task graph and
``concurrent.futures``: the clustered batch GCD hands it a list of
``(chunk_id, payload)`` work items plus three execution strategies —

- **pool_task**: a module-level (picklable) callable run on a
  :class:`~concurrent.futures.ProcessPoolExecutor` worker,
- **local_task**: the in-process equivalent (used when no pool factory is
  given, i.e. ``processes=None`` runs),
- **fallback**: a fault-free in-parent execution used as the terminal
  resort once retries exhaust —

and a :class:`RecoveryPolicy`.  The executor then guarantees every chunk
is consumed exactly once, surviving:

- **worker exceptions** (including injected crashes): bounded retry with
  exponential backoff, re-submitted to a fresh worker;
- **worker death** (``BrokenProcessPool``): the pool is torn down and
  rebuilt (re-running the initializer broadcast), every in-flight chunk
  re-queued; after ``max_pool_rebuilds`` rebuilds the pool is abandoned
  and the remaining chunks degrade to in-process execution;
- **hung workers**: with ``chunk_timeout`` set, an in-flight chunk older
  than the timeout is abandoned (its eventual result, if any, is
  discarded) and re-queued;
- **corrupt results**: the caller's ``verify`` hook rejects incomplete
  chunk results (:class:`ChunkResultError`), which count and retry like
  crashes.

Every recovery action is observable: the ``batch_gcd.retries`` /
``batch_gcd.pool_rebuilds`` / ``batch_gcd.chunk_timeout`` counters land
in the active telemetry registry, and a :class:`RecoveryStats` totals the
same events for :class:`~repro.core.clustered.ClusterRunStats`.

On *any* exception escaping the run loop (including one raised by the
caller's ``consume``), the ``finally`` drain cancels every in-flight
future and shuts the pool down with ``cancel_futures=True`` — a mid-run
error never orphans workers or leaks queued tasks.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.telemetry import get_telemetry

__all__ = [
    "ChunkResultError",
    "RecoveryPolicy",
    "RecoveryStats",
    "ResilientExecutor",
]


class ChunkResultError(RuntimeError):
    """A chunk returned a structurally wrong result (failed verification)."""


@dataclass(frozen=True, slots=True)
class RecoveryPolicy:
    """Bounds on the recovery behaviour of one clustered run.

    Attributes:
        max_retries: re-submissions allowed per chunk before it degrades
            to fault-free in-process execution.
        chunk_timeout: seconds an in-flight chunk may run before it is
            abandoned and re-queued (None disables the timeout; only
            meaningful on pooled runs — an in-process chunk cannot be
            preempted).
        backoff_base: first retry delay, seconds.
        backoff_multiplier: growth factor per subsequent retry.
        backoff_cap: upper bound on any single backoff delay.
        max_pool_rebuilds: ``BrokenProcessPool`` rebuilds tolerated before
            the pool is abandoned and remaining chunks run in-process.
    """

    max_retries: int = 2
    chunk_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap: float = 1.0
    max_pool_rebuilds: int = 5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be > 0 or None")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Delay before re-submitting a chunk whose attempt ``attempt`` failed."""
        return min(
            self.backoff_base * self.backoff_multiplier**attempt,
            self.backoff_cap,
        )


@dataclass(slots=True)
class RecoveryStats:
    """What recovery actually did during one run (all zero on a clean run)."""

    retries: int = 0
    pool_rebuilds: int = 0
    chunk_timeouts: int = 0
    crashed_chunks: int = 0
    corrupt_chunks: int = 0
    inprocess_fallbacks: int = 0


@dataclass(slots=True)
class _Inflight:
    """Bookkeeping for one submitted chunk attempt."""

    chunk_id: int
    payload: Any
    attempt: int
    submitted: float


@dataclass(order=True, slots=True)
class _Queued:
    """A chunk waiting (possibly in backoff) to be submitted."""

    eligible_at: float
    seq: int
    chunk_id: int = field(compare=False)
    payload: Any = field(compare=False)
    attempt: int = field(compare=False)


class ResilientExecutor:
    """Drive chunks to completion under the recovery policy (see module doc).

    Args:
        payloads: ``(chunk_id, payload)`` work items; chunk ids must be
            unique (they key retries, faults, and completion).
        policy: the recovery bounds.
        fallback: fault-free in-parent execution ``(chunk_id, payload) ->
            result``; the terminal resort, also used for every chunk once
            the pool is abandoned.
        pool_factory: zero-arg callable building a fresh
            ``ProcessPoolExecutor`` (carrying any initializer broadcast).
            None selects in-process execution via ``local_task``.
        pool_task: module-level callable ``(chunk_id, attempt, payload) ->
            result`` submitted to the pool.
        local_task: in-process equivalent of ``pool_task`` (may raise, so
            injected faults exercise the same retry path).
        verify: optional ``(chunk_id, payload, result)`` hook raising
            :class:`ChunkResultError` on a corrupt result.
        window: bound on simultaneously in-flight chunks (pooled only).
        on_submit: optional hook called before every pool submission
            (payload-size accounting).
    """

    def __init__(
        self,
        *,
        payloads: Sequence[tuple[int, Any]],
        policy: RecoveryPolicy,
        fallback: Callable[[int, Any], Any],
        pool_factory: Callable[[], Any] | None = None,
        pool_task: Callable[..., Any] | None = None,
        local_task: Callable[[int, int, Any], Any] | None = None,
        verify: Callable[[int, Any, Any], None] | None = None,
        window: int = 1,
        on_submit: Callable[[int, Any], None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if pool_factory is not None and pool_task is None:
            raise ValueError("pooled execution needs a pool_task")
        if pool_factory is None and local_task is None:
            raise ValueError("in-process execution needs a local_task")
        if window < 1:
            raise ValueError("window must be >= 1")
        self._payloads = list(payloads)
        self._policy = policy
        self._fallback = fallback
        self._pool_factory = pool_factory
        self._pool_task = pool_task
        self._local_task = local_task
        self._verify = verify
        self._window = window
        self._on_submit = on_submit
        self._sleep = sleep
        self.stats = RecoveryStats()

    def run(self, consume: Callable[[int, Any, float], None]) -> RecoveryStats:
        """Execute every chunk, calling ``consume(chunk_id, result, seconds)``.

        ``seconds`` is submit-to-consume latency for the winning attempt.
        Each chunk is consumed exactly once, in completion order.
        """
        if self._pool_factory is None:
            self._run_local(consume)
        else:
            self._run_pooled(consume)
        return self.stats

    # -- in-process ------------------------------------------------------

    def _run_local(self, consume: Callable[[int, Any, float], None]) -> None:
        telemetry = get_telemetry()
        clock = telemetry.clock
        for chunk_id, payload in self._payloads:
            attempt = 0
            while True:
                started = clock.wall()
                try:
                    result = self._local_task(chunk_id, attempt, payload)
                    if self._verify is not None:
                        self._verify(chunk_id, payload, result)
                except Exception as exc:
                    if attempt >= self._policy.max_retries:
                        started = clock.wall()
                        result = self._fallback(chunk_id, payload)
                        self.stats.inprocess_fallbacks += 1
                        consume(chunk_id, result, clock.wall() - started)
                        break
                    self._count_failure(exc)
                    self.stats.retries += 1
                    telemetry.counter("batch_gcd.retries")
                    self._sleep(self._policy.backoff(attempt))
                    attempt += 1
                    continue
                consume(chunk_id, result, clock.wall() - started)
                break

    # -- pooled ----------------------------------------------------------

    def _run_pooled(self, consume: Callable[[int, Any, float], None]) -> None:
        telemetry = get_telemetry()
        clock = telemetry.clock
        queue: list[_Queued] = []
        seq = 0
        for chunk_id, payload in self._payloads:
            heapq.heappush(queue, _Queued(0.0, seq, chunk_id, payload, 0))
            seq += 1
        pending: dict[Future, _Inflight] = {}
        completed: set[int] = set()
        pool = self._pool_factory()

        def requeue(rec: _Inflight, now: float) -> None:
            """Retry a failed attempt, or degrade it to in-process."""
            nonlocal seq
            if rec.attempt >= self._policy.max_retries:
                started = clock.wall()
                result = self._fallback(rec.chunk_id, rec.payload)
                self.stats.inprocess_fallbacks += 1
                completed.add(rec.chunk_id)
                consume(rec.chunk_id, result, clock.wall() - started)
                return
            self.stats.retries += 1
            telemetry.counter("batch_gcd.retries")
            eligible = now + self._policy.backoff(rec.attempt)
            heapq.heappush(
                queue,
                _Queued(eligible, seq, rec.chunk_id, rec.payload, rec.attempt + 1),
            )
            seq += 1

        def break_pool(first_victim: _Inflight, now: float) -> None:
            """Tear down a broken pool; requeue every in-flight chunk."""
            nonlocal pool
            self.stats.pool_rebuilds += 1
            telemetry.counter("batch_gcd.pool_rebuilds")
            victims = [first_victim] + list(pending.values())
            pending.clear()
            pool.shutdown(wait=False, cancel_futures=True)
            if self.stats.pool_rebuilds > self._policy.max_pool_rebuilds:
                pool = None  # degraded: everything else runs in-process
            else:
                pool = self._pool_factory()
            for victim in victims:
                requeue(victim, now)

        try:
            while queue or pending:
                now = clock.wall()
                # Fill the in-flight window with eligible queued chunks.
                while queue and len(pending) < self._window:
                    if queue[0].eligible_at > now and pending:
                        break  # backoff pending; wake via wait() timeout
                    item = heapq.heappop(queue)
                    if item.chunk_id in completed:
                        continue
                    if item.eligible_at > now:
                        self._sleep(item.eligible_at - now)
                        now = clock.wall()
                    if pool is None:
                        started = clock.wall()
                        result = self._fallback(item.chunk_id, item.payload)
                        self.stats.inprocess_fallbacks += 1
                        completed.add(item.chunk_id)
                        consume(item.chunk_id, result, clock.wall() - started)
                        continue
                    if self._on_submit is not None:
                        self._on_submit(item.chunk_id, item.payload)
                    rec = _Inflight(item.chunk_id, item.payload, item.attempt, now)
                    try:
                        future = pool.submit(
                            self._pool_task, item.chunk_id, item.attempt, item.payload
                        )
                    except BrokenProcessPool:
                        break_pool(rec, now)
                        continue
                    pending[future] = rec
                if not pending:
                    continue

                done, _ = wait(
                    set(pending),
                    timeout=self._poll_timeout(pending, queue, now),
                    return_when=FIRST_COMPLETED,
                )
                now = clock.wall()
                pool_broke = False
                for future in done:
                    rec = pending.pop(future, None)
                    if rec is None:
                        continue
                    try:
                        result = future.result(timeout=0)
                    except BrokenProcessPool:
                        break_pool(rec, now)
                        pool_broke = True
                        break
                    except Exception as exc:
                        self._count_failure(exc)
                        requeue(rec, now)
                        continue
                    if rec.chunk_id in completed:
                        continue  # late result of an abandoned attempt
                    try:
                        if self._verify is not None:
                            self._verify(rec.chunk_id, rec.payload, result)
                    except ChunkResultError as exc:
                        self._count_failure(exc)
                        requeue(rec, now)
                        continue
                    completed.add(rec.chunk_id)
                    consume(rec.chunk_id, result, now - rec.submitted)
                if pool_broke:
                    continue

                # Abandon chunks that have been in flight too long.
                if self._policy.chunk_timeout is not None:
                    deadline = self._policy.chunk_timeout
                    for future, rec in list(pending.items()):
                        if now - rec.submitted < deadline:
                            continue
                        self.stats.chunk_timeouts += 1
                        telemetry.counter("batch_gcd.chunk_timeout")
                        future.cancel()  # a running worker cannot be stopped;
                        del pending[future]  # its eventual result is discarded
                        requeue(rec, now)
        finally:
            for future in pending:
                future.cancel()
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)

    def _poll_timeout(
        self,
        pending: dict[Future, _Inflight],
        queue: list[_Queued],
        now: float,
    ) -> float | None:
        """How long ``wait`` may block before recovery needs to look around."""
        candidates: list[float] = []
        if self._policy.chunk_timeout is not None:
            oldest = min(rec.submitted for rec in pending.values())
            candidates.append(oldest + self._policy.chunk_timeout - now)
        if queue and len(pending) < self._window:
            candidates.append(queue[0].eligible_at - now)
        if not candidates:
            return None
        return max(min(candidates), 0.01)

    def _count_failure(self, exc: Exception) -> None:
        if isinstance(exc, ChunkResultError):
            self.stats.corrupt_chunks += 1
        else:
            self.stats.crashed_chunks += 1
