"""Implementation fingerprinting (paper Section 3.3).

- :mod:`repro.fingerprint.rules` — certificate-subject and content rules.
- :mod:`repro.fingerprint.sharedprimes` — shared-prime extrapolation,
  prime cliques, cross-vendor overlaps.
- :mod:`repro.fingerprint.openssl` — the OpenSSL prime fingerprint
  (Table 5).
- :mod:`repro.fingerprint.anomalies` — bit-error and key-substitution
  triage.
- :mod:`repro.fingerprint.engine` — the orchestrated pipeline.
"""

from repro.fingerprint.anomalies import (
    BitErrorFinding,
    SubstitutionFinding,
    detect_bit_errors,
    detect_key_substitution,
    is_well_formed_modulus,
)
from repro.fingerprint.engine import FingerprintReport, fingerprint_study
from repro.fingerprint.openssl import (
    VendorOpensslVerdict,
    classify_vendors,
    openssl_prime_fraction,
)
from repro.fingerprint.rules import RuleMatch, identify_by_subject
from repro.fingerprint.sharedprimes import (
    PrimeClique,
    extrapolate_vendors,
    find_prime_cliques,
    label_degenerate_cliques,
    shared_prime_overlaps,
)

__all__ = [
    "BitErrorFinding",
    "FingerprintReport",
    "PrimeClique",
    "RuleMatch",
    "SubstitutionFinding",
    "VendorOpensslVerdict",
    "classify_vendors",
    "detect_bit_errors",
    "detect_key_substitution",
    "extrapolate_vendors",
    "find_prime_cliques",
    "fingerprint_study",
    "identify_by_subject",
    "is_well_formed_modulus",
    "label_degenerate_cliques",
    "openssl_prime_fraction",
    "shared_prime_overlaps",
]
