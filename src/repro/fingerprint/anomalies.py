"""Artifact detection: bit errors and man-in-the-middle key substitution.

Two classes of batch-GCD hits are *not* flawed key generation, and the
paper set them aside before analysing vendors:

- **Bit errors** (Section 3.3.5): a modulus corrupted in memory, on the
  wire, or in storage behaves like a random integer — divisible by each
  small prime ``q`` with probability ``1/q`` — so it surfaces with a
  divisor that is a product of many small primes, its "factors" are not a
  pair of equal-size primes, and it usually sits one bit away from a valid
  modulus seen elsewhere in the corpus.
- **Key substitution** (Section 3.3.3): an interceptor serving one fixed
  modulus across many otherwise-unrelated certificates, each of which fails
  signature verification because only the key was swapped.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.results import BatchGcdResult
from repro.numt.primality import is_probable_prime
from repro.numt.smooth import trial_factor
from repro.scans.records import CertificateStore

__all__ = [
    "BitErrorFinding",
    "SubstitutionFinding",
    "detect_bit_errors",
    "detect_key_substitution",
    "is_well_formed_modulus",
]

#: A divisor whose smooth part (over primes below this bound) covers most of
#: it indicates random corruption rather than shared keygen state.
SMOOTH_BOUND = 10_000


def is_well_formed_modulus(n: int, p: int, q: int) -> bool:
    """True when ``n = p*q`` for two primes of equal bit length."""
    return (
        p * q == n
        and abs(p.bit_length() - q.bit_length()) <= 1
        and is_probable_prime(p)
        and is_probable_prime(q)
    )


@dataclass(frozen=True, slots=True)
class BitErrorFinding:
    """One modulus attributed to transmission/storage corruption.

    Attributes:
        modulus: the corrupted modulus.
        divisor: the (smooth, composite) divisor batch GCD reported.
        nearest_valid: a corpus modulus at Hamming distance 1, when found —
            the "nearly identical valid certificate" the paper describes.
    """

    modulus: int
    divisor: int
    nearest_valid: int | None


def detect_bit_errors(
    result: BatchGcdResult, corpus: set[int] | None = None
) -> list[BitErrorFinding]:
    """Identify batch-GCD hits that are bit-error artifacts.

    A flagged modulus is classified as a bit error when its reported divisor
    does not split it into a well-formed RSA modulus and its divisor is
    dominated by small primes.  When the full corpus is supplied, each
    finding is additionally linked to a valid modulus one bit-flip away.
    """
    findings = []
    corpus = corpus or set()
    for index in result.vulnerable_indices:
        n = result.moduli[index]
        divisor = result.divisors[index]
        if divisor <= 1 or divisor >= n:
            continue
        q = n // divisor
        if is_well_formed_modulus(n, divisor, q):
            continue
        factors, cofactor = trial_factor(divisor, SMOOTH_BOUND)
        distinct_small = len(factors)
        if distinct_small < 2 and cofactor != 1:
            # A single large shared factor is keygen flaw territory, not
            # corruption.
            continue
        findings.append(
            BitErrorFinding(
                modulus=n,
                divisor=divisor,
                nearest_valid=_hamming_neighbour(n, corpus),
            )
        )
    return findings


def _hamming_neighbour(n: int, corpus: set[int]) -> int | None:
    """Find a corpus member exactly one bit-flip from ``n``."""
    for bit in range(n.bit_length() + 1):
        candidate = n ^ (1 << bit)
        if candidate != n and candidate in corpus:
            return candidate
    return None


@dataclass(frozen=True, slots=True)
class SubstitutionFinding:
    """A fixed modulus served across many unrelated certificates.

    Attributes:
        modulus: the substituted modulus.
        certificate_count: distinct certificates carrying it.
        distinct_subjects: distinct subject DNs among them.
        invalid_signatures: how many fail self-verification (all, for a key
            swap that keeps the original signature bytes).
    """

    modulus: int
    certificate_count: int
    distinct_subjects: int
    invalid_signatures: int


def detect_key_substitution(
    store: CertificateStore,
    min_certificates: int = 5,
    max_verify: int = 20,
) -> list[SubstitutionFinding]:
    """Find moduli shared by many certificates with differing subjects.

    Legitimate shared default certificates repeat the *whole* certificate;
    an interceptor substituting keys produces many distinct certificates
    (different subjects/serials) carrying one modulus, none of which verify.

    Args:
        store: the scanned certificate corpus.
        min_certificates: minimum distinct certificates per modulus.
        max_verify: cap on signature verifications per candidate (they are
            the expensive part).
    """
    by_modulus: dict[int, list[int]] = defaultdict(list)
    for cert_id, entry in enumerate(store.entries()):
        by_modulus[entry.certificate.public_key.n].append(cert_id)
    findings = []
    for modulus, cert_ids in by_modulus.items():
        if len(cert_ids) < min_certificates:
            continue
        subjects = {
            store[cid].certificate.subject.rfc4514() for cid in cert_ids
        }
        if len(subjects) < min_certificates:
            continue
        sample = cert_ids[:max_verify]
        invalid = sum(
            1 for cid in sample if not store[cid].certificate.verify_signature()
        )
        if invalid < len(sample):
            # Some certificates genuinely verify with this key: a shared
            # default key, not a substitution.
            continue
        findings.append(
            SubstitutionFinding(
                modulus=modulus,
                certificate_count=len(cert_ids),
                distinct_subjects=len(subjects),
                invalid_signatures=invalid,
            )
        )
    return findings
