"""The fingerprinting engine: certificates + factorizations -> vendor labels.

Runs the full Section 3.3 pipeline in order:

1. subject/banner rules over every collected certificate;
2. degenerate prime-clique recognition (the IBM nine-prime bug);
3. shared-prime extrapolation from labelled to unlabelled moduli;
4. artifact triage (bit errors, key substitution), which removes
   non-keygen hits from the vulnerability statistics;
5. the OpenSSL prime fingerprint per vendor (Table 5).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.results import BatchGcdResult, FactoredModulus
from repro.crypto.primes import OPENSSL_FINGERPRINT_PRIMES
from repro.fingerprint.anomalies import (
    BitErrorFinding,
    SubstitutionFinding,
    detect_bit_errors,
    detect_key_substitution,
    is_well_formed_modulus,
)
from repro.fingerprint.openssl import VendorOpensslVerdict, classify_vendors
from repro.fingerprint.rules import identify_by_subject
from repro.fingerprint.sharedprimes import (
    PrimeClique,
    extrapolate_vendors,
    find_prime_cliques,
    label_degenerate_cliques,
    shared_prime_overlaps,
)
from repro.scans.records import CertificateStore
from repro.telemetry import get_telemetry

__all__ = ["FingerprintReport", "fingerprint_study"]


@dataclass(slots=True)
class FingerprintReport:
    """Everything the fingerprinting pipeline learned.

    Attributes:
        vendor_by_cert: cert id -> vendor for every attributed certificate.
        model_by_cert: cert id -> product model where exposed (Cisco).
        rule_counts: how many certificates each rule labelled.
        vendor_by_modulus: modulus -> vendor (subject rules + cliques +
            extrapolation).
        extrapolated_moduli: moduli attributed purely via shared primes.
        cliques: all shared-factor components among factored moduli.
        degenerate_cliques: the IBM-style components.
        overlaps: cross-vendor shared-prime counts (Dell/Xerox, Siemens/IBM).
        bit_errors: corruption artifacts excluded from vulnerability stats.
        substitutions: MITM key-substitution findings.
        openssl_verdicts: Table 5 rows.
        factored_clean: well-formed factored moduli (artifacts removed).
    """

    vendor_by_cert: dict[int, str] = field(default_factory=dict)
    model_by_cert: dict[int, str] = field(default_factory=dict)
    rule_counts: Counter = field(default_factory=Counter)
    vendor_by_modulus: dict[int, str] = field(default_factory=dict)
    extrapolated_moduli: dict[int, str] = field(default_factory=dict)
    cliques: list[PrimeClique] = field(default_factory=list)
    degenerate_cliques: list[PrimeClique] = field(default_factory=list)
    overlaps: dict[frozenset, int] = field(default_factory=dict)
    bit_errors: list[BitErrorFinding] = field(default_factory=list)
    substitutions: list[SubstitutionFinding] = field(default_factory=list)
    openssl_verdicts: list[VendorOpensslVerdict] = field(default_factory=list)
    factored_clean: dict[int, FactoredModulus] = field(default_factory=dict)

    def vulnerable_moduli(self) -> set[int]:
        """Factored moduli that reflect flawed keygen (artifacts removed)."""
        return set(self.factored_clean)

    def vendor_for_modulus(self, n: int) -> str | None:
        """Best-known vendor for a modulus."""
        return self.vendor_by_modulus.get(n)


def fingerprint_study(
    store: CertificateStore,
    batch_result: BatchGcdResult,
    openssl_table: tuple[int, ...] | None = None,
    check_safe_primes: bool = True,
) -> FingerprintReport:
    """Run the full fingerprinting pipeline over a scanned corpus."""
    report = FingerprintReport()
    table = openssl_table or OPENSSL_FINGERPRINT_PRIMES
    telemetry = get_telemetry()

    # 1. Subject and banner rules over every certificate.
    with telemetry.span("fingerprint.rules"):
        modulus_vendor_votes: dict[int, Counter] = {}
        for cert_id, entry in enumerate(store.entries()):
            match = identify_by_subject(entry.certificate, banner=entry.banner)
            if match is None:
                continue
            report.vendor_by_cert[cert_id] = match.vendor
            report.rule_counts[match.rule] += 1
            if match.model:
                report.model_by_cert[cert_id] = match.model
            n = entry.certificate.public_key.n
            modulus_vendor_votes.setdefault(n, Counter())[match.vendor] += 1
        report.vendor_by_modulus = {
            n: votes.most_common(1)[0][0]
            for n, votes in modulus_vendor_votes.items()
        }

    factored = batch_result.resolve()

    # 2. Artifact triage first, so junk never pollutes prime pools.
    with telemetry.span("fingerprint.triage", factored=len(factored)):
        corpus = set(batch_result.moduli)
        report.bit_errors = detect_bit_errors(batch_result, corpus)
        report.substitutions = detect_key_substitution(store)
        artifact_moduli = {f.modulus for f in report.bit_errors}
        artifact_moduli.update(f.modulus for f in report.substitutions)
        report.factored_clean = {
            n: fact
            for n, fact in factored.items()
            if n not in artifact_moduli
            and is_well_formed_modulus(n, fact.p, fact.q)
        }

    # 3. Prime cliques; degenerate ones carry the prior IBM attribution.
    with telemetry.span("fingerprint.cliques"):
        report.cliques = find_prime_cliques(report.factored_clean)
        report.degenerate_cliques = label_degenerate_cliques(report.cliques)
        for clique in report.degenerate_cliques:
            for n in clique.moduli:
                report.vendor_by_modulus.setdefault(n, clique.label or "IBM")

    # 4. Shared-prime extrapolation to a fixpoint.
    with telemetry.span("fingerprint.extrapolate"):
        report.extrapolated_moduli = extrapolate_vendors(
            report.factored_clean, report.vendor_by_modulus
        )
        report.vendor_by_modulus.update(report.extrapolated_moduli)

        # Certificates whose modulus is now attributed inherit the vendor.
        for cert_id, entry in enumerate(store.entries()):
            if cert_id in report.vendor_by_cert:
                continue
            vendor = report.vendor_by_modulus.get(entry.certificate.public_key.n)
            if vendor is not None:
                report.vendor_by_cert[cert_id] = vendor
                report.rule_counts["shared-primes"] += 1

    # 5. Cross-vendor overlaps and the OpenSSL fingerprint.
    with telemetry.span("fingerprint.openssl"):
        report.overlaps = shared_prime_overlaps(
            report.factored_clean, report.vendor_by_modulus
        )
        report.openssl_verdicts = classify_vendors(
            report.factored_clean,
            report.vendor_by_modulus,
            table=table,
            check_safe_primes=check_safe_primes,
        )

    if telemetry.enabled:
        for rule, hits in report.rule_counts.items():
            telemetry.counter(f"fingerprint.rule.{rule}", hits)
        telemetry.counter("fingerprint.bit_errors", len(report.bit_errors))
        telemetry.counter("fingerprint.substitutions", len(report.substitutions))
        telemetry.counter("fingerprint.cliques", len(report.cliques))
        telemetry.counter(
            "fingerprint.degenerate_cliques", len(report.degenerate_cliques)
        )
        telemetry.counter("fingerprint.factored_clean", len(report.factored_clean))
        telemetry.counter(
            "fingerprint.extrapolated", len(report.extrapolated_moduli)
        )
    return report
