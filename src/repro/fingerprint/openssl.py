"""The OpenSSL prime fingerprint (Section 3.3.4, Table 5).

Mironov observed that OpenSSL's prime generation eliminates primes ``p``
with ``p - 1`` divisible by any of the first 2048 (odd) primes; a random
512-bit prime satisfies the property with probability only ~7.5 %.  Since
batch GCD recovers the prime factors of every *vulnerable* modulus, the
fraction of a vendor's recovered primes satisfying the property separates
likely-OpenSSL implementations from definitely-not-OpenSSL ones.

The fingerprint requires private-key material, so it only ever covers
vendors with factored keys — exactly the caveat the paper states.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import FactoredModulus
from repro.crypto.primes import (
    OPENSSL_FINGERPRINT_PRIMES,
    is_openssl_style_prime,
    is_safe_prime,
)

__all__ = ["VendorOpensslVerdict", "classify_vendors", "openssl_prime_fraction"]

#: Classification thresholds on the satisfying fraction.  An OpenSSL
#: implementation satisfies the property for *every* prime; a non-OpenSSL
#: one satisfies it ~7.5 % of the time per prime by chance.
SATISFY_THRESHOLD = 0.90
REFUTE_THRESHOLD = 0.50


@dataclass(frozen=True, slots=True)
class VendorOpensslVerdict:
    """One vendor's row in Table 5.

    Attributes:
        vendor: vendor name.
        primes_examined: recovered prime factors examined.
        satisfying: how many satisfied the OpenSSL property.
        safe_primes: how many were safe primes (the confound the paper
            checked: exclusively-safe-prime generators would also satisfy).
        verdict: "openssl", "not-openssl", or "inconclusive" (too few
            primes or a middling fraction).
    """

    vendor: str
    primes_examined: int
    satisfying: int
    safe_primes: int
    verdict: str

    @property
    def satisfying_fraction(self) -> float:
        """Fraction of examined primes satisfying the property."""
        return self.satisfying / self.primes_examined if self.primes_examined else 0.0


def openssl_prime_fraction(
    primes: list[int], table: tuple[int, ...] = OPENSSL_FINGERPRINT_PRIMES
) -> float:
    """Fraction of the given primes satisfying the OpenSSL property."""
    if not primes:
        return 0.0
    return sum(1 for p in primes if is_openssl_style_prime(p, table)) / len(primes)


def classify_vendors(
    factored: dict[int, FactoredModulus],
    modulus_vendors: dict[int, str],
    table: tuple[int, ...] = OPENSSL_FINGERPRINT_PRIMES,
    min_primes: int = 4,
    check_safe_primes: bool = True,
) -> list[VendorOpensslVerdict]:
    """Build Table 5: per-vendor OpenSSL verdicts from recovered primes.

    Args:
        factored: modulus -> factorization from the batch GCD.
        modulus_vendors: modulus -> attributed vendor.
        table: small-prime table (tests may shrink it).
        min_primes: below this many distinct recovered primes the verdict is
            "inconclusive".
        check_safe_primes: also count safe primes (slower; disable in bulk).
    """
    primes_by_vendor: dict[str, set[int]] = {}
    for modulus, fact in factored.items():
        vendor = modulus_vendors.get(modulus)
        if vendor is None:
            continue
        pool = primes_by_vendor.setdefault(vendor, set())
        pool.add(fact.p)
        pool.add(fact.q)
    verdicts = []
    for vendor, pool in sorted(primes_by_vendor.items()):
        primes = sorted(pool)
        satisfying = sum(1 for p in primes if is_openssl_style_prime(p, table))
        safe = (
            sum(1 for p in primes if is_safe_prime(p)) if check_safe_primes else 0
        )
        fraction = satisfying / len(primes) if primes else 0.0
        if len(primes) < min_primes:
            verdict = "inconclusive"
        elif fraction >= SATISFY_THRESHOLD:
            verdict = "openssl"
        elif fraction <= REFUTE_THRESHOLD:
            verdict = "not-openssl"
        else:
            verdict = "inconclusive"
        verdicts.append(
            VendorOpensslVerdict(
                vendor=vendor,
                primes_examined=len(primes),
                satisfying=satisfying,
                safe_primes=safe,
                verdict=verdict,
            )
        )
    return verdicts
