"""Certificate-subject fingerprint rules (Section 3.3.1).

Maps certificate metadata to vendors using the conventions the paper
describes: vendor names in ``O=``, Cisco model names in ``OU=``, Juniper's
``CN=system generated``, Fritz!Box's myfritz.net / fritz.box names, Dell's
Imaging Group OU, Siemens Building Automation subjects, and content-based
identification for all-default certificates (McAfee SnapGear).

Rules fire on *observable* certificate data only; ground-truth simulation
metadata is never consulted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.certs import Certificate

__all__ = ["SubjectRule", "RuleMatch", "identify_by_subject", "SUBJECT_RULES"]


@dataclass(frozen=True, slots=True)
class RuleMatch:
    """The result of a fingerprint rule firing.

    Attributes:
        vendor: canonical vendor name.
        model: product model when the convention exposes one (Cisco).
        rule: name of the rule that fired (for the labelling statistics).
    """

    vendor: str
    rule: str
    model: str | None = None


@dataclass(frozen=True, slots=True)
class SubjectRule:
    """A named predicate over certificate observables."""

    name: str
    description: str


#: Vendors identifiable directly from an O= (organisation) attribute, as the
#: paper observed for Hewlett-Packard, Xerox, TP-LINK and Conel s.r.o.
#: (end users almost never change device-default subjects).
_VENDOR_ORGANISATIONS = {
    "Innominate": "Innominate",
    "HP": "HP",
    "Hewlett-Packard": "HP",
    "Thomson": "Thomson",
    "Fritz!Box": "Fritz!Box",
    "Linksys": "Linksys",
    "Fortinet": "Fortinet",
    "ZyXEL": "ZyXEL",
    "Kronos": "Kronos",
    "Xerox": "Xerox",
    "TP-LINK": "TP-LINK",
    "ADTRAN": "ADTRAN",
    "D-Link": "D-Link",
    "Huawei": "Huawei",
    "Sangfor": "Sangfor",
    "Schmid Telecom": "Schmid Telecom",
    "2-Wire": "2-Wire",
    "Conel s.r.o.": "Conel s.r.o.",
    "DrayTek": "DrayTek",
    "MitraStar": "MitraStar",
    "Netgear": "Netgear",
    "NTI": "NTI",
    "Allegro": "Allegro",
    "BridgeWave": "BridgeWave",
    "ServerTech": "ServerTech",
    "SkyStream Networks": "SkyStream Networks",
    "Cisco": "Cisco",
}

#: Banners that identify a vendor when the certificate itself cannot
#: (Section 3.3.1: the SnapGear management-console home page).
_BANNER_VENDORS = {
    "SnapGear Management Console": "McAfee",
}

SUBJECT_RULES: tuple[SubjectRule, ...] = (
    SubjectRule("system-generated", 'CN="system generated" (Juniper)'),
    SubjectRule("dell-imaging", 'OU="Dell Imaging Group"'),
    SubjectRule("siemens-building", "Siemens Building Technologies subject"),
    SubjectRule("fritz-names", "myfritz.net CN or fritz.box SANs"),
    SubjectRule("vendor-in-o", "vendor named in O="),
    SubjectRule("banner", "vendor identified from served content"),
)


def identify_by_subject(
    certificate: Certificate, banner: str = ""
) -> RuleMatch | None:
    """Apply the subject rules in specificity order.

    Returns:
        The first matching :class:`RuleMatch`, or None when the certificate
        is unattributable from subject data alone (IP-only subjects,
        owner-named IBM cards, ordinary web certificates) — those fall
        through to shared-prime extrapolation.
    """
    subject = certificate.subject
    if subject.CN == "system generated":
        return RuleMatch(vendor="Juniper", rule="system-generated")
    if subject.OU == "Dell Imaging Group":
        return RuleMatch(vendor="Dell", rule="dell-imaging")
    if "Siemens" in subject.O:
        return RuleMatch(vendor="Siemens", rule="siemens-building")
    if subject.CN.endswith(".myfritz.net") or subject.CN == "fritz.box":
        return RuleMatch(vendor="Fritz!Box", rule="fritz-names")
    if any("fritz" in san for san in certificate.subject_alt_names):
        return RuleMatch(vendor="Fritz!Box", rule="fritz-names")
    vendor = _VENDOR_ORGANISATIONS.get(subject.O)
    if vendor is not None:
        model = subject.OU or None
        return RuleMatch(vendor=vendor, rule="vendor-in-o", model=model)
    if banner:
        banner_vendor = _BANNER_VENDORS.get(banner)
        if banner_vendor is not None:
            return RuleMatch(vendor=banner_vendor, rule="banner")
    return None
