"""Shared-prime extrapolation and prime-clique analysis (Section 3.3.2).

Devices sharing prime factors were almost always the same vendor, so the
paper used factored primes to label certificates its subject rules could
not: build a pool of primes from a vendor's clearly-identified certificates,
then attribute any other certificate whose modulus uses a pooled prime.

This module also finds *prime cliques* — connected components of the graph
linking moduli that share factors.  The degenerate nine-prime IBM component
(36 possible moduli) is recognised structurally and labelled IBM, encoding
the prior knowledge the paper carried over from the 2012 study.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.core.results import FactoredModulus

__all__ = [
    "PrimeClique",
    "extrapolate_vendors",
    "find_prime_cliques",
    "label_degenerate_cliques",
]

#: A component with at least this many moduli drawn from at most
#: ``DEGENERATE_MAX_PRIMES`` primes is a degenerate generator bug of the IBM
#: kind (nine primes -> 36 moduli), not an entropy-hole collision pattern.
DEGENERATE_MIN_MODULI = 10
DEGENERATE_MAX_PRIMES = 9


@dataclass(slots=True)
class PrimeClique:
    """A connected component of the shared-factor graph.

    Attributes:
        primes: the prime factors appearing in the component.
        moduli: the moduli built from those primes.
        label: vendor label, once assigned.
    """

    primes: set[int] = field(default_factory=set)
    moduli: set[int] = field(default_factory=set)
    label: str | None = None

    @property
    def is_degenerate(self) -> bool:
        """True for few-primes/many-moduli generator bugs (IBM-style)."""
        return (
            len(self.moduli) >= DEGENERATE_MIN_MODULI
            and len(self.primes) <= DEGENERATE_MAX_PRIMES
        )


def find_prime_cliques(factored: dict[int, FactoredModulus]) -> list[PrimeClique]:
    """Group factored moduli into connected components by shared primes."""
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for fact in factored.values():
        for prime in (fact.p, fact.q):
            parent.setdefault(prime, prime)
        union(fact.p, fact.q)
    groups: dict[int, PrimeClique] = defaultdict(PrimeClique)
    for modulus, fact in factored.items():
        clique = groups[find(fact.p)]
        clique.moduli.add(modulus)
        clique.primes.update((fact.p, fact.q))
    return list(groups.values())


def label_degenerate_cliques(
    cliques: list[PrimeClique], label: str = "IBM"
) -> list[PrimeClique]:
    """Label degenerate cliques with the known-vendor attribution.

    The paper knew from the 2012 disclosure that the nine-prime clique
    belonged to IBM RSA-II / BladeCenter management modules and "labeled
    them all IBM" even though the certificates carried customer names.
    """
    degenerate = [c for c in cliques if c.is_degenerate]
    for clique in degenerate:
        clique.label = label
    return degenerate


def extrapolate_vendors(
    factored: dict[int, FactoredModulus],
    modulus_vendors: dict[int, str],
) -> dict[int, str]:
    """Label unattributed moduli via vendors' prime pools.

    Args:
        factored: modulus -> factorization for every factored modulus.
        modulus_vendors: modulus -> vendor for moduli already attributed by
            subject rules.

    Returns:
        New attributions (modulus -> vendor) for previously unlabelled
        moduli.  When a prime is pooled by more than one vendor (the
        Dell/Xerox overlap), the majority vendor for that prime wins — and
        the tie surfaces in :func:`shared_prime_overlaps` for reporting.

    The extrapolation iterates to a fixpoint: newly labelled moduli enlarge
    the pools, which can label further moduli (this is how IP-only
    Fritz!Box certificates chain to the named ones).
    """
    attributions: dict[int, str] = {}
    labelled = dict(modulus_vendors)
    while True:
        prime_votes: dict[int, Counter] = defaultdict(Counter)
        for modulus, vendor in labelled.items():
            fact = factored.get(modulus)
            if fact is None:
                continue
            prime_votes[fact.p][vendor] += 1
            prime_votes[fact.q][vendor] += 1
        new: dict[int, str] = {}
        for modulus, fact in factored.items():
            if modulus in labelled:
                continue
            votes: Counter = Counter()
            for prime in (fact.p, fact.q):
                votes.update(prime_votes.get(prime, Counter()))
            if votes:
                new[modulus] = votes.most_common(1)[0][0]
        if not new:
            return attributions
        attributions.update(new)
        labelled.update(new)


def shared_prime_overlaps(
    factored: dict[int, FactoredModulus],
    modulus_vendors: dict[int, str],
) -> dict[frozenset[str], int]:
    """Count primes shared between certificates of *different* vendors.

    The paper found exactly this signal linking Dell Imaging Group printers
    to Xerox (Fuji Xerox manufacturing) and a Siemens interface to the IBM
    clique.

    Returns:
        Mapping from vendor-pair (as a frozenset) to the number of shared
        primes.
    """
    vendors_by_prime: dict[int, set[str]] = defaultdict(set)
    for modulus, vendor in modulus_vendors.items():
        fact = factored.get(modulus)
        if fact is None:
            continue
        vendors_by_prime[fact.p].add(vendor)
        vendors_by_prime[fact.q].add(vendor)
    overlaps: dict[frozenset[str], int] = Counter()
    for _prime, vendors in vendors_by_prime.items():
        if len(vendors) > 1:
            for pair in _pairs(sorted(vendors)):
                overlaps[frozenset(pair)] += 1
    return dict(overlaps)


def _pairs(items: list[str]):
    for i, a in enumerate(items):
        for b in items[i + 1 :]:
            yield a, b
