"""Number-theoretic primitives underpinning the batch-GCD computation.

This package is self-contained (pure Python ``int`` arithmetic) and provides
everything the higher layers need:

- :mod:`repro.numt.sieve` — small-prime sieves used by prime generation and
  by the OpenSSL prime fingerprint (Section 3.3.4 of the paper).
- :mod:`repro.numt.primality` — Miller–Rabin probabilistic primality testing
  and prime search.
- :mod:`repro.numt.arith` — extended gcd, modular inverse, integer roots,
  perfect-power detection and CRT.
- :mod:`repro.numt.trees` — product trees and remainder trees, the building
  blocks of Bernstein's batch-GCD algorithm (Section 3.2).
- :mod:`repro.numt.smooth` — smooth-part extraction, used to recognise
  bit-error artifacts whose spurious gcd divisors are products of many small
  primes (Section 3.3.5).
- :mod:`repro.numt.incremental` — the appendable product tree and its
  persistent on-disk store: O(log n) insert, single-descent membership
  checks against the whole corpus (the serving-path engine's substrate).

With one deliberate exception, everything operates on plain ``int``
values, has no I/O and records no telemetry of its own — callers that
need per-phase timings wrap these primitives in spans (see how
:mod:`repro.core.clustered` brackets
:func:`product_tree` / :func:`remainder_tree` with
``batch_gcd.task.*`` spans).  The exception is
:class:`~repro.numt.incremental.ProductTreeStore`, which is a durable
store by design: it persists node shards to disk and records
``batch_gcd.incremental.*`` spans (its pure in-memory half,
:class:`~repro.numt.incremental.IncrementalProductTree`, keeps the
package rule).  The tree functions are the hot path of the
whole system: at the paper's scale the root product alone is ~2.6 GB of
integer, which is exactly why the clustered engine splits it k ways.

Performance note: complexities are quasilinear for the trees
(``M(n) log n`` with ``M`` the multiplication cost), ``O(k log³ n)`` per
Miller–Rabin witness, and linear in the table size for the sieves; there
is no global state, so every function here is safe to call from process
pool workers.
"""

from repro.numt.arith import (
    crt_pair,
    egcd,
    introot,
    is_perfect_power,
    modinv,
)
from repro.numt.backend import (
    BigIntBackend,
    available_backends,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.numt.incremental import (
    IncrementalProductTree,
    PartnerHit,
    ProbeOutcome,
    ProductTreeStore,
    StoreCorruptError,
    empty_digest,
    extend_digest,
)
from repro.numt.primality import (
    is_probable_prime,
    next_prime,
    random_prime,
)
from repro.numt.sieve import (
    first_n_primes,
    primes_below,
    smallest_factor_below,
)
from repro.numt.smooth import smooth_part, trial_factor
from repro.numt.trees import (
    barrett_reduce,
    newton_reciprocal,
    prepare_reciprocals,
    product_tree,
    remainder_tree,
    remainder_tree_prepared,
    remainder_tree_squared,
    remainders_mod_squares,
    tree_product,
)

__all__ = [
    "BigIntBackend",
    "IncrementalProductTree",
    "PartnerHit",
    "ProbeOutcome",
    "ProductTreeStore",
    "StoreCorruptError",
    "available_backends",
    "barrett_reduce",
    "crt_pair",
    "egcd",
    "empty_digest",
    "extend_digest",
    "first_n_primes",
    "get_backend",
    "introot",
    "is_perfect_power",
    "is_probable_prime",
    "modinv",
    "newton_reciprocal",
    "next_prime",
    "prepare_reciprocals",
    "primes_below",
    "product_tree",
    "random_prime",
    "remainder_tree",
    "remainder_tree_prepared",
    "remainder_tree_squared",
    "remainders_mod_squares",
    "resolve_backend",
    "set_backend",
    "smallest_factor_below",
    "smooth_part",
    "tree_product",
    "trial_factor",
    "use_backend",
]
