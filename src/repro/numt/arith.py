"""Integer arithmetic helpers: egcd, modular inverse, roots, CRT."""

from __future__ import annotations

import math

__all__ = ["egcd", "modinv", "introot", "is_perfect_power", "crt_pair"]


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    # Normalise so the gcd is non-negative.
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Raises:
        ValueError: if ``gcd(a, m) != 1`` (the inverse does not exist).  RSA
            private-key computation relies on this to reject degenerate
            exponent choices.
    """
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {m} (gcd={g})")
    return x % m


def introot(n: int, k: int) -> int:
    """Return ``floor(n ** (1/k))`` for non-negative ``n`` and ``k >= 1``."""
    if n < 0:
        raise ValueError("introot requires n >= 0")
    if k < 1:
        raise ValueError("introot requires k >= 1")
    if k == 1 or n < 2:
        return n
    if k == 2:
        return math.isqrt(n)
    # Newton iteration seeded from the bit length.
    x = 1 << (-(-n.bit_length() // k))
    while True:
        y = ((k - 1) * x + n // x ** (k - 1)) // k
        if y >= x:
            return x
        x = y


def is_perfect_power(n: int) -> tuple[int, int] | None:
    """Return ``(base, exponent)`` with ``exponent >= 2`` if ``n`` is a perfect
    power, else None.

    Used to reject degenerate "RSA" moduli of the form p**2 when validating
    well-formedness of scanned keys.
    """
    if n < 4:
        return None
    for k in range(2, n.bit_length() + 1):
        root = introot(n, k)
        if root < 2:
            break
        if root**k == n:
            return root, k
    return None


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> tuple[int, int]:
    """Combine ``x = r1 (mod m1)`` and ``x = r2 (mod m2)`` for coprime moduli.

    Returns:
        ``(x, m1*m2)`` with ``0 <= x < m1*m2``.

    Raises:
        ValueError: if the moduli are not coprime.
    """
    g, p, _ = egcd(m1, m2)
    if g != 1:
        raise ValueError(f"moduli not coprime (gcd={g})")
    lcm = m1 * m2
    x = (r1 + (r2 - r1) * p % m2 * m1) % lcm
    return x, lcm
