"""Pluggable big-int backend: pure-Python ``int`` or ``gmpy2.mpz``.

Every number-theoretic primitive in :mod:`repro.numt` operates on plain
``int`` values by default — that is the reproducible, dependency-free
baseline.  Real batch-GCD deployments (fastgcd, the paper's cluster) use
GMP, whose multiplication and division are asymptotically and
constant-factor faster; when ``gmpy2`` happens to be importable this
module exposes it behind the same seam so the *identical* tree code runs
on ``mpz`` operands.

The seam is deliberately tiny: a backend is a value wrapper (``wrap`` /
``unwrap``), a ``gcd``, and a flag saying whether the software Barrett
reduction in :mod:`repro.numt.trees` pays off (it does not on gmpy2,
whose native division is already subquadratic).  Nothing else in the
tree algorithms changes — ``*``, ``%`` and ``//`` dispatch through the
operand type.

Selection follows the telemetry active-registry idiom: an explicit
``backend=`` argument wins, otherwise the module-level active backend
(set via :func:`set_backend` / :func:`use_backend`, initialised from the
``REPRO_NUMT_BACKEND`` environment variable) applies.  ``gmpy2`` is
never imported unless asked for, and asking for it on a machine without
it is a loud :class:`ValueError`, not a silent fallback.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

__all__ = [
    "BigIntBackend",
    "PYTHON_BACKEND",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

#: Environment variable consulted when no backend is named explicitly.
BACKEND_ENV_VAR = "REPRO_NUMT_BACKEND"


@dataclass(frozen=True, slots=True)
class BigIntBackend:
    """One big-int arithmetic implementation.

    Attributes:
        name: registry key (``"python"`` or ``"gmpy2"``).
        wrap: convert a plain ``int`` into the backend's operand type.
        unwrap: convert a backend operand back to a plain ``int``.
        gcd: two-argument gcd on backend operands.
        use_barrett: whether the software Barrett/Newton reduction in
            :func:`repro.numt.trees.remainder_tree_prepared` beats the
            backend's native ``%`` (True only for CPython's schoolbook
            division).
    """

    name: str
    wrap: Callable[[int], Any]
    unwrap: Callable[[Any], int]
    gcd: Callable[[Any, Any], Any]
    use_barrett: bool

    def wrap_all(self, values: Sequence[int]) -> list[Any]:
        """Wrap a sequence, skipping the copy loop for the native backend."""
        if self is PYTHON_BACKEND:
            return list(values)
        return [self.wrap(v) for v in values]

    def unwrap_all(self, values: Sequence[Any]) -> list[int]:
        """Unwrap a sequence back to plain ints."""
        if self is PYTHON_BACKEND:
            return list(values)
        return [self.unwrap(v) for v in values]


def _python_backend() -> BigIntBackend:
    import math

    return BigIntBackend(
        name="python", wrap=int, unwrap=int, gcd=math.gcd, use_barrett=True
    )


PYTHON_BACKEND = _python_backend()


def _gmpy2_backend() -> BigIntBackend | None:
    try:
        import gmpy2
    except ImportError:
        return None
    return BigIntBackend(
        name="gmpy2",
        wrap=gmpy2.mpz,
        unwrap=int,
        gcd=gmpy2.gcd,
        use_barrett=False,
    )


_LOADERS: dict[str, Callable[[], BigIntBackend | None]] = {
    "python": lambda: PYTHON_BACKEND,
    "gmpy2": _gmpy2_backend,
}


def available_backends() -> list[str]:
    """Names of the backends importable on this machine."""
    return [name for name, load in _LOADERS.items() if load() is not None]


def resolve_backend(name: str | BigIntBackend | None = None) -> BigIntBackend:
    """Resolve a backend by name, environment, or the active default.

    Precedence: an explicit ``name`` (or an already-constructed backend,
    returned as-is), then ``$REPRO_NUMT_BACKEND``, then the module's
    active backend.

    Raises:
        ValueError: for an unknown name, or for a known backend whose
            library is not importable here.
    """
    if isinstance(name, BigIntBackend):
        return name
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or None
    if name is None:
        return get_backend()
    loader = _LOADERS.get(name)
    if loader is None:
        raise ValueError(
            f"unknown big-int backend {name!r} "
            f"(known: {', '.join(sorted(_LOADERS))})"
        )
    backend = loader()
    if backend is None:
        raise ValueError(
            f"big-int backend {name!r} is not available "
            f"(is the {name} package installed?)"
        )
    return backend


_active: BigIntBackend = PYTHON_BACKEND


def get_backend() -> BigIntBackend:
    """The currently active backend (pure-Python by default)."""
    return _active


def set_backend(backend: BigIntBackend | None) -> BigIntBackend:
    """Install a backend as active; returns the previous one."""
    global _active
    previous = _active
    _active = backend if backend is not None else PYTHON_BACKEND
    return previous


@contextmanager
def use_backend(backend: str | BigIntBackend | None) -> Iterator[BigIntBackend]:
    """Activate a backend for the dynamic extent of a ``with`` block."""
    previous = set_backend(resolve_backend(backend))
    try:
        yield get_backend()
    finally:
        set_backend(previous)
