"""Incremental batch GCD: a persistent, appendable product-tree store.

The batch engines in :mod:`repro.core` answer "which moduli in this
corpus share primes?" by rebuilding the full product/remainder tree per
run — O(n log n) big-int work even when only one new modulus arrived.
This module is the serving-path answer to the corpus being *dynamic*
(new keys arrive continuously and must be checked against everything
seen so far):

- :class:`IncrementalProductTree` keeps the corpus product tree live in
  memory, appends a leaf by recomputing only the **rightmost spine**
  (amortised O(log n) nodes per insert), and answers "does this new
  modulus share a prime with the corpus?" with a **single descent**: one
  reduction of the stored root (``gcd(m, P mod m)`` — exactly the
  classic ``gcd(m, (P·m mod m²)/m)`` test, since ``P·m mod m² =
  m·(P mod m)``) followed by a divisor-guided walk down the tree to
  locate the partner leaves.
- :class:`ProductTreeStore` persists that tree on disk — per-node
  records sharded per level, an atomically-renamed manifest as the
  commit point, and a write-ahead
  :class:`~repro.faults.journal.MutationJournal` so a SIGKILL mid-insert
  replays cleanly on the next open.  Identity extends
  :func:`repro.faults.checkpoint.corpus_digest`'s SHA-256 corpus digest
  to a *chained* form (:func:`extend_digest`) updatable in O(1) per
  insert: both hash the records ``f"{n:x}\\n"``, the chained form just
  folds them in one at a time.

Layout under ``directory``::

    manifest.json        # version/backend/count/digest/jobs — commit point
    journal.jsonl        # write-ahead insert records (empty when idle)
    hits.json            # sparse accumulated divisors [[index, hex], ...]
    nodes/level-<l>.jsonl# per-node records [index, hex]; append-mostly

Each insert appends one record per dirty spine node (O(log n) appends),
rewrites the sparse hits file when the vulnerable set changed, then
renames a fresh manifest: a kill at any point either replays the
journalled insert on the next open or never sees it.  Level files are
compacted (atomic rewrite) once superseded records dominate.

Divisor semantics match the clustered engine's: the accumulated divisor
for a corpus member is the gcd-capped lcm of its pairwise shares, so the
vulnerable/clean *flag* always matches the classic engine, and on
squarefree corpora (every well-formed RSA modulus) the divisors are
byte-identical; on degenerate non-squarefree inputs the multiplicity may
be a proper divisor of the classic one, exactly as for
:class:`repro.core.clustered.ClusteredBatchGcd`.

Telemetry (active registry, see :mod:`repro.telemetry`): each probe
records a ``batch_gcd.incremental.descend`` span (annotated with the
partner count), each insert a ``batch_gcd.incremental.insert`` span plus
the ``batch_gcd.incremental.rebuild_bytes`` counter (bytes of spine
nodes recomputed) and the ``batch_gcd.incremental.store_nodes`` gauge;
bootstrapping records one ``batch_gcd.incremental.bootstrap`` span.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Any, Iterable, NamedTuple, Sequence

#: Commit-point writes (hits, manifest, level rewrites) go through the
#: shared durable primitive: temp-in-same-dir, fsync, atomic rename,
#: directory fsync.  Imported as an alias (not rebound) so the program
#: graph resolves call sites through it.  See repro.faults.fsio.
from repro.faults.fsio import atomic_write_text as _atomic_write
from repro.faults.fsio import fsync_file
from repro.faults.journal import MutationJournal
from repro.numt.backend import BigIntBackend, resolve_backend
from repro.numt.trees import product_tree
from repro.telemetry import get_telemetry

__all__ = [
    "IncrementalProductTree",
    "PartnerHit",
    "ProbeOutcome",
    "ProductTreeStore",
    "StoreCorruptError",
    "empty_digest",
    "extend_digest",
]

_MANIFEST = "manifest.json"
_JOURNAL = "journal.jsonl"
_HITS = "hits.json"
_NODES_DIR = "nodes"
_VERSION = 1

#: Compact a level file once it holds this many times more records than
#: live nodes (superseded spine rewrites accumulate at ~1 per insert).
_COMPACT_FACTOR = 4


def empty_digest() -> str:
    """The chained corpus digest of an empty corpus."""
    return hashlib.sha256(b"").hexdigest()


def extend_digest(digest: str, modulus: int) -> str:
    """Fold one appended modulus into a chained corpus digest.

    Chained analogue of :func:`repro.faults.checkpoint.corpus_digest`:
    the same per-modulus record (``f"{n:x}\\n"``) is absorbed one insert
    at a time, so the store's identity updates in O(1) instead of
    rehashing the corpus.
    """
    h = hashlib.sha256()
    h.update(bytes.fromhex(digest))
    h.update(f"{modulus:x}\n".encode("ascii"))
    return h.hexdigest()


class PartnerHit(NamedTuple):
    """One existing corpus member sharing a factor with a probed modulus."""

    index: int
    shared: int


class ProbeOutcome(NamedTuple):
    """Result of probing a modulus against the corpus (no mutation)."""

    divisor: int
    partners: list[PartnerHit]


class StoreCorruptError(RuntimeError):
    """The on-disk store cannot be reconciled (leaf records missing)."""


class IncrementalProductTree:
    """An appendable product tree with divisor-guided descent.

    The level structure is identical to :func:`repro.numt.trees.product_tree`
    (leaves first, odd nodes promoted), so a freshly appended tree is
    level-for-level equal to a batch-built one over the same corpus.

    Args:
        moduli: initial corpus (appended in order).
        backend: big-int backend for the tree's operands.
    """

    def __init__(
        self,
        moduli: Sequence[int] = (),
        backend: str | BigIntBackend | None = None,
    ) -> None:
        self._backend = resolve_backend(backend)
        if moduli:
            self._levels = product_tree(moduli, backend=self._backend)
        else:
            self._levels = [[]]

    @classmethod
    def from_levels(
        cls, levels: list[list[int]], backend: str | BigIntBackend | None = None
    ) -> "IncrementalProductTree":
        """Adopt an already-built level structure (loading a store)."""
        tree = cls(backend=backend)
        tree._levels = levels if levels else [[]]
        return tree

    @property
    def backend(self) -> BigIntBackend:
        return self._backend

    @property
    def count(self) -> int:
        """Number of leaves (corpus size)."""
        return len(self._levels[0])

    @property
    def node_count(self) -> int:
        """Total nodes across all levels."""
        if not self.count:
            return 0
        return sum(len(level) for level in self._levels)

    @property
    def levels(self) -> list[list[int]]:
        """The live level structure (leaves first).  Not a copy."""
        return self._levels

    def root(self) -> int:
        """Product of the whole corpus (1 when empty), backend operand."""
        if not self.count:
            return self._backend.wrap(1)
        return self._levels[-1][0]

    def leaf(self, index: int) -> int:
        """Leaf value as a plain int."""
        return self._backend.unwrap(self._levels[0][index])

    @staticmethod
    def level_sizes(count: int) -> list[int]:
        """Expected per-level node counts for a corpus of ``count`` leaves."""
        if count == 0:
            return [0]
        sizes = [count]
        while sizes[-1] > 1:
            sizes.append((sizes[-1] + 1) // 2)
        return sizes

    # -- mutation --------------------------------------------------------

    def append(self, modulus: int) -> list[tuple[int, int]]:
        """Append a leaf, recomputing only the rightmost spine.

        Returns the dirty ``(level, index)`` coordinates — the appended
        leaf plus one recomputed (or newly created) ancestor per level.
        """
        if modulus < 2:
            raise ValueError("all moduli must be >= 2")
        levels = self._levels
        index = len(levels[0])
        levels[0].append(self._backend.wrap(modulus))
        dirty = [(0, index)]
        level = 0
        j = index
        while len(levels[level]) > 1:
            parent = j >> 1
            nodes = levels[level]
            left = nodes[2 * parent]
            if 2 * parent + 1 < len(nodes):
                value = left * nodes[2 * parent + 1]
            else:
                value = left
            if level + 1 == len(levels):
                levels.append([value])
            elif parent == len(levels[level + 1]):
                levels[level + 1].append(value)
            else:
                levels[level + 1][parent] = value
            dirty.append((level + 1, parent))
            level += 1
            j = parent
        return dirty

    def recompute_spine(self, leaf_index: int) -> list[tuple[int, int]]:
        """Recompute every ancestor of ``leaf_index`` from its children.

        Used to heal the rightmost spine after a crash mid-insert left
        stale node records behind; returns the recomputed coordinates.
        """
        levels = self._levels
        dirty: list[tuple[int, int]] = []
        level, j = 0, leaf_index
        while len(levels[level]) > 1:
            parent = j >> 1
            nodes = levels[level]
            left = nodes[2 * parent]
            if 2 * parent + 1 < len(nodes):
                value = left * nodes[2 * parent + 1]
            else:
                value = left
            levels[level + 1][parent] = value
            dirty.append((level + 1, parent))
            level += 1
            j = parent
        return dirty

    # -- queries ---------------------------------------------------------

    def divisor_against(self, modulus: int) -> int:
        """``gcd(modulus, P mod modulus)`` — the one-reduction weak check.

        Equal to the classic batch-GCD divisor the modulus would receive
        in the corpus-plus-modulus union: with ``P`` the product of the
        existing corpus, ``(P·m mod m²)/m = P mod m``.
        """
        if modulus < 2:
            raise ValueError("modulus must be >= 2")
        if not self.count:
            return 1
        m = self._backend.wrap(modulus)
        return self._backend.unwrap(self._backend.gcd(m, self.root() % m))

    def leaves_sharing(self, divisor: int) -> list[PartnerHit]:
        """Corpus members sharing a factor with ``divisor``, via descent.

        Walks from the root, pruning every subtree whose product is
        coprime to ``divisor``; visits O(log n) nodes per surviving path.
        """
        if divisor <= 1 or not self.count:
            return []
        unwrap = self._backend.unwrap
        d = divisor
        hits: list[PartnerHit] = []
        stack: list[tuple[int, int]] = [(len(self._levels) - 1, 0)]
        while stack:
            level, j = stack.pop()
            node = unwrap(self._levels[level][j])
            g = math.gcd(d, node % d if node.bit_length() > d.bit_length() else node)
            if g == 1:
                continue
            if level == 0:
                hits.append(PartnerHit(j, g))
                continue
            below = self._levels[level - 1]
            for child in (2 * j, 2 * j + 1):
                if child < len(below):
                    stack.append((level - 1, child))
        return sorted(hits)


class ProductTreeStore:
    """The persistent incremental batch-GCD corpus store.

    One store holds one evolving corpus: the product tree (for O(1
    descent) checks), the accumulated sparse divisors (the vulnerable
    set so far), a chained corpus digest, and per-job insert progress so
    a crashed service job resumes idempotently.

    Args:
        directory: store root on disk, or ``None`` for a memory-only
            store (no persistence, no journal — same API and semantics).
        backend: big-int backend name or instance.  A persisted store
            remembers its backend; reopening with a conflicting explicit
            backend raises.

    Raises:
        StoreCorruptError: on open, if leaf records are missing below
            the committed count (internal levels self-heal; leaves are
            the ground truth and cannot be reconstructed).
        ValueError: on a backend mismatch with the persisted manifest.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        backend: str | BigIntBackend | None = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._journal: MutationJournal | None = None
        self._jobs: dict[str, tuple[int, int]] = {}
        self._hits: dict[int, int] = {}
        self._moduli: list[int] = []
        self._digest = empty_digest()
        self._level_records: list[int] = []  # per-level on-disk record counts
        self.replayed_inserts = 0
        if self.directory is None:
            self._tree = IncrementalProductTree(backend=backend)
            return
        self._journal = MutationJournal(self.directory / _JOURNAL)
        self._load(backend)

    # -- identity and queries -------------------------------------------

    @property
    def count(self) -> int:
        return len(self._moduli)

    @property
    def digest(self) -> str:
        """Chained SHA-256 corpus digest (see :func:`extend_digest`)."""
        return self._digest

    @property
    def backend(self) -> BigIntBackend:
        return self._tree.backend

    @property
    def node_count(self) -> int:
        return self._tree.node_count

    @property
    def moduli(self) -> list[int]:
        """The corpus in insertion order (a copy)."""
        return list(self._moduli)

    def divisors(self) -> list[int]:
        """Accumulated divisor per corpus member (1 = clean so far)."""
        return [self._hits.get(i, 1) for i in range(len(self._moduli))]

    def job_progress(self, job_id: str) -> tuple[int, int] | None:
        """``(base_index, inserted)`` for a job, or None if unseen."""
        return self._jobs.get(job_id)

    @property
    def jobs(self) -> dict[str, tuple[int, int]]:
        """All recorded per-job progress (a copy)."""
        return dict(self._jobs)

    def probe(self, modulus: int) -> ProbeOutcome:
        """Check a modulus against the corpus without inserting it.

        One root reduction plus, when the divisor is nontrivial, one
        divisor-guided descent to the partner leaves.
        """
        telemetry = get_telemetry()
        with telemetry.span(
            "batch_gcd.incremental.descend", corpus=self.count
        ):
            divisor = self._tree.divisor_against(modulus)
            partners = (
                self._tree.leaves_sharing(divisor) if divisor > 1 else []
            )
            telemetry.annotate(divisor_bits=divisor.bit_length(), partners=len(partners))
        return ProbeOutcome(divisor, partners)

    # -- mutation --------------------------------------------------------

    def insert(self, modulus: int, job_id: str | None = None) -> ProbeOutcome:
        """Probe then append one modulus; durable once the call returns.

        The probe result is folded into the accumulated divisors: the
        new member records its divisor against the prior corpus, and
        every partner leaf lcm-merges its share with the newcomer
        (gcd-capped), so the store's vulnerable set tracks what a full
        batch-GCD over the grown corpus would report.
        """
        outcome = self.probe(modulus)
        index = self.count
        if self._journal is not None:
            seq = self._journal.append(
                {"index": index, "m": f"{modulus:x}", "job": job_id}
            )
        self._apply_insert(modulus, outcome, job_id)
        if self._journal is not None:
            self._journal.commit(seq)
        return outcome

    def extend(
        self, moduli: Iterable[int], job_id: str | None = None
    ) -> list[ProbeOutcome]:
        """Insert a batch in order (each checked against all before it)."""
        return [self.insert(m, job_id=job_id) for m in moduli]

    def apply_job(self, job_id: str, moduli: Sequence[int]) -> tuple[int, int]:
        """Idempotently insert a job's corpus; returns ``(base, count)``.

        A job already applied (fully or partially, e.g. the run was
        SIGKILLed and the queue re-delivered it) resumes from its
        recorded progress instead of re-inserting — re-running a job is
        safe and returns the same index range.
        """
        progress = self._jobs.get(job_id)
        if progress is None:
            base, done = self.count, 0
            self._jobs[job_id] = (base, 0)
        else:
            base, done = progress
        for m in moduli[done:]:
            self.insert(m, job_id=job_id)
        return base, len(moduli)

    def bootstrap(
        self,
        moduli: Sequence[int],
        divisors: Sequence[int] | None = None,
        jobs: dict[str, tuple[int, int]] | None = None,
    ) -> None:
        """Replace the store contents with a batch-built corpus.

        The bulk-ingest path: a full engine run already computed the
        corpus divisors, so the store adopts them and builds the product
        tree once (no per-insert spine work).  All files are rewritten
        through temp-file renames with the manifest last, so a kill
        mid-bootstrap leaves the previous committed state loadable.

        Args:
            moduli: the full corpus, in order.  Must extend the current
                corpus (the store is append-only; prefix-checked).
            divisors: aligned accumulated divisors (``None`` = all clean).
            jobs: per-job progress to persist (``None`` keeps current).
        """
        if list(moduli[: self.count]) != self._moduli:
            raise ValueError(
                "bootstrap corpus must extend the existing corpus "
                "(the store is append-only)"
            )
        if divisors is not None and len(divisors) != len(moduli):
            raise ValueError("divisors must align with moduli")
        telemetry = get_telemetry()
        with telemetry.span(
            "batch_gcd.incremental.bootstrap", moduli=len(moduli)
        ):
            digest = self._digest
            for m in moduli[self.count :]:
                digest = extend_digest(digest, m)
            tree = IncrementalProductTree(moduli, backend=self._tree.backend)
            hits = {}
            if divisors is not None:
                hits = {i: d for i, d in enumerate(divisors) if d > 1}
            else:
                hits = dict(self._hits)
            self._tree = tree
            self._moduli = list(moduli)
            self._digest = digest
            self._hits = hits
            if jobs is not None:
                self._jobs = dict(jobs)
            if self.directory is not None:
                self._write_all_levels()
                self._write_hits()
                self._write_manifest()
                self._journal.clear()
            telemetry.gauge(
                "batch_gcd.incremental.store_nodes", self._tree.node_count
            )

    # -- insert internals ------------------------------------------------

    def _apply_insert(
        self, modulus: int, outcome: ProbeOutcome, job_id: str | None
    ) -> None:
        telemetry = get_telemetry()
        with telemetry.span(
            "batch_gcd.incremental.insert", corpus=self.count
        ):
            index = self.count
            dirty = self._tree.append(modulus)
            self._moduli.append(modulus)
            self._digest = extend_digest(self._digest, modulus)
            if outcome.divisor > 1:
                self._merge_hit(index, outcome.divisor)
            for partner in outcome.partners:
                share = math.gcd(self._moduli[partner.index], modulus)
                self._merge_hit(partner.index, share)
            if job_id is not None:
                base, done = self._jobs.get(job_id, (index, 0))
                self._jobs[job_id] = (base, done + 1)
            rebuilt = sum(
                (self._tree.backend.unwrap(
                    self._tree.levels[level][i]
                ).bit_length() + 7) // 8
                for level, i in dirty
            )
            telemetry.counter("batch_gcd.incremental.rebuild_bytes", rebuilt)
            telemetry.annotate(spine_nodes=len(dirty))
            if self.directory is not None:
                self._append_level_records(dirty)
                if outcome.divisor > 1 or outcome.partners:
                    self._write_hits()
                self._write_manifest()
            telemetry.gauge(
                "batch_gcd.incremental.store_nodes", self._tree.node_count
            )

    def _merge_hit(self, index: int, share: int) -> None:
        """gcd-capped lcm-merge, the clustered engine's aggregation rule."""
        current = self._hits.get(index, 1)
        merged = current * share // math.gcd(current, share)
        self._hits[index] = math.gcd(merged, self._moduli[index])

    # -- persistence -----------------------------------------------------

    def _level_path(self, level: int) -> Path:
        return self.directory / _NODES_DIR / f"level-{level}.jsonl"

    def _append_level_records(self, dirty: list[tuple[int, int]]) -> None:
        unwrap = self._tree.backend.unwrap
        by_level: dict[int, list[int]] = {}
        for level, i in dirty:
            by_level.setdefault(level, []).append(i)
        while len(self._level_records) < len(self._tree.levels):
            self._level_records.append(0)
        (self.directory / _NODES_DIR).mkdir(parents=True, exist_ok=True)
        for level, indices in by_level.items():
            lines = "".join(
                json.dumps([i, f"{unwrap(self._tree.levels[level][i]):x}"])
                + "\n"
                for i in indices
            )
            with open(self._level_path(level), "a", encoding="utf-8") as fh:
                fh.write(lines)
                # The manifest commits count=N on the strength of these
                # appended spine records; without the fsync a power loss
                # after the (fsynced) manifest rename could surface a
                # manifest that promises leaves the level files lost.
                fsync_file(fh)
            self._level_records[level] += len(indices)
            live = len(self._tree.levels[level])
            if self._level_records[level] > _COMPACT_FACTOR * live + 16:
                self._rewrite_level(level)

    def _rewrite_level(self, level: int) -> None:
        unwrap = self._tree.backend.unwrap
        nodes = self._tree.levels[level]
        text = "".join(
            json.dumps([i, f"{unwrap(v):x}"]) + "\n" for i, v in enumerate(nodes)
        )
        _atomic_write(self._level_path(level), text)
        self._level_records[level] = len(nodes)

    def _write_all_levels(self) -> None:
        nodes_dir = self.directory / _NODES_DIR
        nodes_dir.mkdir(parents=True, exist_ok=True)
        levels = self._tree.levels
        self._level_records = [0] * len(levels)
        for level in range(len(levels)):
            self._rewrite_level(level)
        # Prune level files beyond the current height (bootstrap shrink
        # cannot happen — append-only — but stale files from a crashed
        # larger bootstrap must not confuse a later load).
        for stale in nodes_dir.glob("level-*.jsonl"):
            try:
                number = int(stale.stem.split("-")[1])
            except (IndexError, ValueError):
                continue
            if number >= len(levels):
                stale.unlink()

    def _write_hits(self) -> None:
        payload = {
            "divisors": [
                [i, f"{d:x}"] for i, d in sorted(self._hits.items())
            ]
        }
        _atomic_write(self.directory / _HITS, json.dumps(payload))

    def _write_manifest(self) -> None:
        manifest = {
            "version": _VERSION,
            "backend": self._tree.backend.name,
            "count": self.count,
            "digest": self._digest,
            "jobs": {
                job: [base, done]
                for job, (base, done) in sorted(self._jobs.items())
            },
        }
        _atomic_write(
            self.directory / _MANIFEST, json.dumps(manifest, sort_keys=True)
        )

    # -- loading ---------------------------------------------------------

    def _load(self, backend: str | BigIntBackend | None) -> None:
        try:
            manifest = json.loads((self.directory / _MANIFEST).read_text())
        except (OSError, ValueError):
            manifest = None
        if manifest is None or manifest.get("version") != _VERSION:
            self._tree = IncrementalProductTree(backend=backend)
            return
        stored_backend = manifest.get("backend", "python")
        requested = resolve_backend(backend) if backend is not None else None
        if requested is not None and requested.name != stored_backend:
            raise ValueError(
                f"store was persisted with backend {stored_backend!r} but "
                f"{requested.name!r} was requested"
            )
        resolved = resolve_backend(backend if backend is not None else stored_backend)
        count = int(manifest.get("count", 0))
        self._digest = manifest.get("digest", empty_digest())
        self._jobs = {
            job: (int(base), int(done))
            for job, (base, done) in manifest.get("jobs", {}).items()
        }
        pending = [
            record
            for record in self._journal.pending()
            if int(record["index"]) >= count
        ]
        levels, self._level_records = self._load_levels(count, resolved)
        self._tree = IncrementalProductTree.from_levels(levels, backend=resolved)
        self._moduli = [self._tree.leaf(i) for i in range(count)]
        if pending and count:
            # A crashed insert may have left stale rightmost-spine
            # records behind; recompute that spine from its (clean)
            # children before replaying.
            self._tree.recompute_spine(count - 1)
        self._load_hits(count)
        self.replayed_inserts = self._replay(pending)
        if pending:
            self._journal.clear()

    def _load_levels(
        self, count: int, backend: BigIntBackend
    ) -> tuple[list[list[int]], list[int]]:
        sizes = IncrementalProductTree.level_sizes(count)
        levels: list[list[int]] = []
        records: list[int] = []
        rebuild = False
        for level, size in enumerate(sizes):
            values: dict[int, int] = {}
            seen = 0
            try:
                text = self._level_path(level).read_text()
            except OSError:
                text = ""
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    i, hexval = json.loads(line)
                    i = int(i)
                    value = int(hexval, 16)
                except (ValueError, TypeError):
                    break  # torn tail
                seen += 1
                if i < size:
                    values[i] = value
            if len(values) != size:
                if level == 0:
                    raise StoreCorruptError(
                        f"store at {self.directory} is missing "
                        f"{size - len(values)} of {size} leaf records"
                    )
                rebuild = True
                break
            levels.append(backend.wrap_all([values[i] for i in range(size)]))
            records.append(seen)
        if rebuild:
            # Internal levels are derivable: rebuild them from the
            # (authoritative) leaves and rewrite the files.
            leaves = backend.unwrap_all(levels[0])
            tree = product_tree(leaves, backend=backend)
            self._tree = IncrementalProductTree.from_levels(tree, backend=backend)
            self._level_records = [0] * len(tree)
            self._write_all_levels()
            return self._tree.levels, self._level_records
        if count == 0:
            return [[]], records or [0]
        return levels, records

    def _load_hits(self, count: int) -> None:
        try:
            payload = json.loads((self.directory / _HITS).read_text())
        except (OSError, ValueError):
            self._hits = {}
            return
        hits: dict[int, int] = {}
        for entry in payload.get("divisors", []):
            try:
                index, hexval = int(entry[0]), int(entry[1], 16)
            except (ValueError, TypeError, IndexError):
                continue
            if 0 <= index < count and hexval > 1:
                hits[index] = math.gcd(hexval, self._moduli[index])
        self._hits = hits

    def _replay(self, pending: list[dict[str, Any]]) -> int:
        """Redo journalled inserts the manifest never committed."""
        replayed = 0
        for record in pending:
            index = int(record["index"])
            if index != self.count:
                continue  # duplicate/stale record; the manifest won
            modulus = int(record["m"], 16)
            outcome = self.probe(modulus)
            self._apply_insert(modulus, outcome, record.get("job"))
            replayed += 1
        return replayed


