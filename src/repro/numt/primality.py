"""Miller–Rabin primality testing and prime search.

Deterministic witness sets are used for inputs below 3.3 * 10**24 (Sorenson &
Webster), and random witnesses above that, giving an error probability below
4**-rounds.  This is the primality backend for all prime generation in
:mod:`repro.crypto.primes`.
"""

from __future__ import annotations

import math
import random

from repro.numt.sieve import first_n_primes

__all__ = ["is_probable_prime", "next_prime", "random_prime"]

# Deterministic Miller-Rabin witness set valid for all n < 3,317,044,064,679,887,385,961,981.
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES = first_n_primes(256)
_SMALL_PRIME_SET = frozenset(_SMALL_PRIMES)
_MAX_SMALL_PRIME = _SMALL_PRIMES[-1]

# One gcd against the primorial of the small primes replaces 256 trial
# divisions; candidates from random prime search are overwhelmingly rejected
# here, which dominates bulk key-generation throughput.
_PRIMORIAL = math.prod(_SMALL_PRIMES)


def _miller_rabin_round(n: int, d: int, r: int, a: int) -> bool:
    """Return True if ``n`` passes one Miller-Rabin round with witness ``a``."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 32, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test.

    Deterministic (no false positives) for ``n`` below ~3.3e24; otherwise
    probabilistic with error below ``4**-rounds``.

    Args:
        n: integer to test.
        rounds: number of random witnesses for large ``n``.
        rng: randomness source for witness selection.  When omitted,
            witnesses are drawn from ``random.Random(n)`` — deterministic
            per input across runs and processes, so the whole pipeline
            stays bit-identical for a given seed even above the
            deterministic-witness bound.
    """
    if n < 2:
        return False
    if n <= _MAX_SMALL_PRIME:
        return n in _SMALL_PRIME_SET
    if math.gcd(n, _PRIMORIAL) != 1:
        return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # A lone base-2 round rejects nearly all remaining composites cheaply;
    # only its survivors pay for the full witness set.
    if not _miller_rabin_round(n, d, r, 2):
        return False
    if n < _DETERMINISTIC_BOUND:
        witnesses: tuple[int, ...] | list[int] = _DETERMINISTIC_WITNESSES[1:]
    else:
        # Seeding on n keeps witness selection reproducible run-to-run
        # while still varying witnesses between candidates.
        rng = rng or random.Random(n)
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin_round(n, d, r, a) for a in witnesses)


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = max(n + 1, 2)
    if candidate == 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


def random_prime(bits: int, rng: random.Random) -> int:
    """Return a uniformly-sampled prime of exactly ``bits`` bits.

    Candidates are drawn with the top bit forced (so the bit length is exact)
    and the bottom bit forced (odd), then Miller–Rabin tested.

    Raises:
        ValueError: if ``bits < 2`` (no primes of that size exist).
    """
    if bits < 2:
        raise ValueError(f"no primes with {bits} bits")
    if bits == 2:
        return rng.choice((2, 3))
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate
