"""Corpus sharding and cross-shard product exchange (Pelofske all-to-all).

The all-to-all GCD algorithm (Pelofske, arXiv 2405.03166) partitions a
key corpus across nodes, has every node build one *compact product* of
its shard, exchanges those products all-to-all, and settles most
cross-shard pairs with a **single GCD of two products**: when
``gcd(P_s, P_j) == 1`` no modulus of shard ``s`` shares anything with
shard ``j`` and the whole pair is pruned.  Only the rare non-coprime
pair pays a drill-down, which descends shard ``s``'s product tree
carrying the (small) shared content and prunes every coprime subtree.

This module is the pure substrate for that deployment shape — the
partition rule, the exchange record/accounting, and the pruned descent —
shared by the :class:`repro.core.alltoall.AllToAllBatchGcd` engine and
reusable by a real multi-node runner later.  Everything here follows the
``numt`` package rule: plain values, no I/O, no telemetry.

Correctness of the descent (the reason the all-to-all engine is provably
byte-identical to the clustered engine at equal shard count): with
``g = gcd(node, P_j)`` at any tree node, a child ``c`` of that node
satisfies ``gcd(c, g) == gcd(c, P_j)`` — every prime's multiplicity in
``c`` is at most its multiplicity in the parent — so by induction each
reached leaf ``N_i`` yields exactly ``gcd(N_i, P_j)``, the clustered
engine's foreign-pass contribution, while unreached (pruned) leaves are
exactly those with ``gcd(N_i, P_j) == 1``.

The partition is the clustered engine's round-robin rule: shard ``s``
holds ``corpus[s::shards]``, so shard membership of corpus index ``i``
is ``i % shards`` and the global index of the shard's ``pos``-th modulus
is ``s + pos * shards`` — a pure function of ``(len(corpus), shards)``,
which makes the partition deterministic and every modulus land in
exactly one shard by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = [
    "Shard",
    "ShardProduct",
    "exchange_all_to_all",
    "gcd_descent_hits",
    "partition_round_robin",
    "shard_of",
]


@dataclass(frozen=True, slots=True)
class Shard:
    """One logical node's slice of the corpus.

    Attributes:
        index: shard id in ``range(stride)``.
        stride: total shard count (the round-robin stride).
        moduli: the shard's corpus slice, ``corpus[index::stride]``.
    """

    index: int
    stride: int
    moduli: tuple[int, ...]

    def global_index(self, pos: int) -> int:
        """Corpus index of the shard's ``pos``-th modulus."""
        return self.index + pos * self.stride


@dataclass(frozen=True, slots=True)
class ShardProduct:
    """The compact record one shard broadcasts to every other shard.

    Attributes:
        shard: originating shard id.
        count: number of moduli folded into the product.
        product: the shard's full modulus product (its tree root).
    """

    shard: int
    count: int
    product: int

    @property
    def wire_bytes(self) -> int:
        """Serialized size of the product on the exchange wire."""
        return (int(self.product).bit_length() + 7) // 8


def shard_of(index: int, shards: int) -> int:
    """Shard id owning corpus index ``index`` under round-robin partition."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    return index % shards


def partition_round_robin(
    corpus: Sequence[int], shards: int
) -> list[Shard]:
    """Partition a corpus round-robin across ``shards`` logical nodes.

    The shard count is capped at the corpus size (matching the clustered
    engine's ``k = min(k, n)`` rule) so no shard is ever empty; with an
    empty corpus a single empty shard is returned.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    stride = max(1, min(shards, len(corpus)))
    return [
        Shard(index=s, stride=stride, moduli=tuple(corpus[s::stride]))
        for s in range(stride)
    ]


def exchange_all_to_all(
    products: Sequence[ShardProduct],
) -> tuple[dict[int, list[ShardProduct]], int]:
    """Simulate the all-to-all product exchange between shards.

    Every shard sends its compact product to every *other* shard.

    Returns:
        ``(inboxes, total_bytes)`` — per-shard inbox of foreign products
        (sorted by originating shard) and the total bytes crossing the
        simulated interconnect (each product is re-sent once per
        recipient, which is how a real deployment would pay for it).
    """
    ordered = sorted(products, key=lambda record: record.shard)
    inboxes: dict[int, list[ShardProduct]] = {
        record.shard: [] for record in ordered
    }
    total_bytes = 0
    for record in ordered:
        for receiver in inboxes:
            if receiver == record.shard:
                continue
            inboxes[receiver].append(record)
            total_bytes += record.wire_bytes
    return inboxes, total_bytes


def gcd_descent_hits(
    levels: list[list[int]],
    foreign: int,
    gcd: Callable[[int, int], int] = math.gcd,
) -> list[tuple[int, int]]:
    """Leaves of a product tree sharing content with a foreign product.

    Computes ``gcd(leaf, foreign)`` for every leaf of ``levels`` (a tree
    from :func:`repro.numt.trees.product_tree`) by descending from the
    root with the running shared content, pruning every subtree coprime
    with it.  One root GCD settles the common case — two shards sharing
    nothing — without touching a single leaf.

    Returns:
        Sorted ``(position, divisor)`` pairs for leaves with divisor > 1.
    """
    root = levels[-1][0]
    shared = gcd(root, foreign)
    if shared <= 1:
        return []
    frontier = {0: shared}
    for level in reversed(levels[:-1]):
        descended: dict[int, int] = {}
        for parent, content in frontier.items():
            for child in (2 * parent, 2 * parent + 1):
                if child >= len(level):
                    continue
                g = gcd(level[child], content)
                if g > 1:
                    descended[child] = g
        frontier = descended
        if not frontier:
            return []
    return sorted(frontier.items())
