"""Small-prime sieves.

The OpenSSL prime fingerprint (paper Section 3.3.4) requires the first 2048
odd primes: OpenSSL rejects candidate primes ``p`` when ``p - 1`` is divisible
by any of them.  Prime generation in :mod:`repro.crypto.primes` uses the same
tables for trial division before Miller–Rabin.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

__all__ = [
    "primes_below",
    "first_n_primes",
    "smallest_factor_below",
    "OPENSSL_TRIAL_PRIME_COUNT",
]

# Number of small primes OpenSSL's BN_generate_prime checks a candidate
# against; the paper's fingerprint tests p - 1 against the same table.
OPENSSL_TRIAL_PRIME_COUNT = 2048


def primes_below(limit: int) -> list[int]:
    """Return all primes strictly below ``limit`` (sieve of Eratosthenes)."""
    if limit <= 2:
        return []
    sieve = bytearray([1]) * limit
    sieve[0] = sieve[1] = 0
    for p in range(2, int(limit**0.5) + 1):
        if sieve[p]:
            sieve[p * p :: p] = bytearray(len(range(p * p, limit, p)))
    return [i for i, flag in enumerate(sieve) if flag]


@lru_cache(maxsize=8)
def first_n_primes(n: int) -> tuple[int, ...]:
    """Return the first ``n`` primes as a tuple (cached).

    Uses a doubling upper bound so callers never need to guess sieve limits.
    """
    if n <= 0:
        return ()
    # p_n < n (ln n + ln ln n) for n >= 6; start from a safe overestimate.
    limit = 16
    while True:
        primes = primes_below(limit)
        if len(primes) >= n:
            return tuple(primes[:n])
        limit *= 2


def smallest_factor_below(n: int, limit: int) -> int | None:
    """Return the smallest prime factor of ``n`` below ``limit``, or None.

    Only primes below ``limit`` are tried; a ``None`` result does not imply
    primality.
    """
    if n < 2:
        return None
    for p in primes_below(limit):
        if p * p > n:
            break
        if n % p == 0:
            return p
    # n itself may be a small prime below the limit.
    if n < limit:
        return n
    return None


def prime_stream() -> Iterator[int]:
    """Yield primes indefinitely (simple incremental wheel over the sieve)."""
    chunk = 1 << 12
    low = 0
    while True:
        for p in primes_below(low + chunk):
            if p >= low:
                yield p
        low += chunk
        chunk *= 2
