"""Smooth-part extraction and trial factoring.

Bit-flip artifacts (paper Section 3.3.5) show up in batch-GCD output as
divisors that are products of many small primes: a corrupted modulus behaves
like a random integer, divisible by each small prime ``q`` with probability
``1/q``.  The fingerprinting layer uses :func:`smooth_part` to recognise such
divisors and set the records aside rather than flag a flawed implementation.
"""

from __future__ import annotations

from repro.numt.sieve import primes_below

__all__ = ["smooth_part", "trial_factor"]


def trial_factor(n: int, limit: int = 10_000) -> tuple[dict[int, int], int]:
    """Trial-divide ``n`` by all primes below ``limit``.

    Returns:
        ``(factors, cofactor)`` where ``factors`` maps prime -> exponent and
        ``cofactor`` is the unfactored remainder (1 if fully factored).
    """
    if n <= 0:
        raise ValueError("trial_factor requires n >= 1")
    factors: dict[int, int] = {}
    remaining = n
    for p in primes_below(limit):
        if p * p > remaining:
            break
        while remaining % p == 0:
            factors[p] = factors.get(p, 0) + 1
            remaining //= p
    if 1 < remaining < limit:
        factors[remaining] = factors.get(remaining, 0) + 1
        remaining = 1
    return factors, remaining


def smooth_part(n: int, limit: int = 10_000) -> int:
    """Return the ``limit``-smooth part of ``n`` (product of small-prime powers)."""
    factors, _ = trial_factor(n, limit)
    result = 1
    for p, e in factors.items():
        result *= p**e
    return result
