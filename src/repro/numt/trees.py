"""Product and remainder trees (Bernstein, "How to find smooth parts of integers").

These are the two phases of the batch-GCD algorithm described in Section 3.2
of the paper:

1. A *product tree* multiplies ``n`` moduli pairwise in a binary tree,
   yielding the product of all inputs at the root in ``O(M(total bits) log n)``
   time instead of the ``O(n)`` sequential multiplications of a naive loop.
2. A *remainder tree* pushes a value (here the root product ``P``) down the
   same tree, reducing modulo each internal node, so that ``P mod Ni**2`` is
   obtained for every leaf in quasilinear total time.

The trees are represented level-by-level, leaves first, matching the diagram
in Figure 2 of the paper.

Remainder-tree reduction is the hot path of the whole system, and on
CPython it is division-bound: ``%`` is schoolbook, O(quotient limbs ×
divisor limbs), while multiplication goes Karatsuba above ~2100 bits.  A
task that reduces one value down the *same* tree many times can therefore
trade each large division for two large multiplications: precompute a
truncated reciprocal ``mu ~= floor(4**t / m)`` per node once
(:func:`prepare_reciprocals`, Newton precision-doubling) and reduce with
Barrett's method (:func:`barrett_reduce`, unconditionally exact thanks to
a correction step).  :func:`remainder_tree_prepared` is the drop-in
remainder tree over such a prepared tree; the clustered batch-GCD engine
amortises one preparation over its k passes per subset.  Reciprocals only
pay off where multiplication is genuinely subquadratic, so nodes below
``BARRETT_MIN_BITS`` keep plain ``%``.

All functions accept an optional big-int ``backend``
(:mod:`repro.numt.backend`): the tree algorithms are identical, only the
operand type changes.  The default is the active backend — plain ``int``.
"""

from __future__ import annotations

from typing import Sequence

from repro.numt.backend import BigIntBackend, resolve_backend

__all__ = [
    "BARRETT_MIN_BITS",
    "barrett_reduce",
    "newton_reciprocal",
    "prepare_reciprocals",
    "product_tree",
    "remainder_tree",
    "remainder_tree_prepared",
    "remainder_tree_squared",
    "remainders_mod_squares",
    "tree_product",
]

#: Below this many bits, ``floor(4**t / m)`` is computed by one direct
#: division; above it, Newton precision-doubling (all multiplications).
NEWTON_DIRECT_BITS = 2048

#: Nodes smaller than this keep plain ``%``: near the Karatsuba threshold
#: (~2100 bits) Barrett's two multiplications cost as much as the one
#: schoolbook division they replace, so a reciprocal would be pure loss.
BARRETT_MIN_BITS = 6000


def product_tree(
    values: Sequence[int], backend: BigIntBackend | None = None
) -> list[list[int]]:
    """Build a product tree over ``values``.

    Args:
        values: the leaf values (moduli).
        backend: big-int backend for the tree's operands (default: the
            active backend, plain ``int``).

    Returns:
        A list of levels; ``levels[0]`` is ``list(values)`` and each
        subsequent level holds pairwise products of the previous one.  The
        last level has a single element, the product of all inputs.  An empty
        input yields ``[[1]]`` so the root is always well-defined.
    """
    backend = resolve_backend(backend)
    level = backend.wrap_all(values) if values else [backend.wrap(1)]
    levels = [level]
    while len(level) > 1:
        nxt = [
            level[i] * level[i + 1] if i + 1 < len(level) else level[i]
            for i in range(0, len(level), 2)
        ]
        levels.append(nxt)
        level = nxt
    return levels


def tree_product(
    values: Sequence[int], backend: BigIntBackend | None = None
) -> int:
    """Return the product of ``values`` using a product tree (1 when empty)."""
    return product_tree(values, backend=backend)[-1][0]


def remainder_tree(x: int, levels: list[list[int]]) -> list[int]:
    """Reduce ``x`` down a product tree, returning ``x mod leaf`` per leaf.

    Args:
        x: the value to reduce (typically a product of moduli).
        levels: a tree produced by :func:`product_tree`.
    """
    remainders = [x % levels[-1][0]]
    # Walk from the level below the root back down to the leaves.
    for level in reversed(levels[:-1]):
        remainders = [remainders[i // 2] % node for i, node in enumerate(level)]
    return remainders


def remainder_tree_squared(
    levels: list[list[int]], value: int | None = None
) -> list[int]:
    """Return ``value mod N_i**2`` per leaf of a product tree over moduli.

    Uses the fastgcd trick: instead of building a second tree over the
    squares, the value is pushed down the *moduli* tree, reducing the
    running remainder modulo the **square** of each node.  Correct because
    ``N_i**2`` divides ``node**2`` for every ancestor node of leaf ``i``.

    Args:
        levels: a tree produced by :func:`product_tree`.
        value: the value to reduce.  ``None`` (the batch-GCD case) means
            the tree's own root product ``P``, which is already smaller
            than ``root**2``, so the initial reduction is skipped.
    """
    root = levels[-1][0]
    remainder = root if value is None else value % (root * root)
    remainders = [remainder]
    for level in reversed(levels[:-1]):
        remainders = [
            remainders[i // 2] % (node * node) for i, node in enumerate(level)
        ]
    return remainders


def remainders_mod_squares(
    x: int, moduli: Sequence[int], backend: BigIntBackend | None = None
) -> list[int]:
    """Return ``x mod Ni**2`` for each modulus, via one shared tree.

    The batch-GCD algorithm needs ``P mod Ni**2`` (not ``P mod Ni``) so that
    ``(P mod Ni**2) / Ni`` retains the cofactor information required by the
    final ``gcd(Ni, z_i / Ni)`` step.  This is a thin wrapper over
    :func:`remainder_tree_squared`, which reduces modulo squared *nodes* of
    the moduli tree rather than building a second tree whose every operand
    is twice as long.
    """
    if not moduli:
        return []
    return remainder_tree_squared(product_tree(moduli, backend=backend), value=x)


def newton_reciprocal(m: int) -> int:
    """An under-approximation of ``floor(4**t / m)`` for ``t = m.bit_length()``.

    Small operands use one direct division.  Large operands seed from a
    ``NEWTON_DIRECT_BITS``-bit division and double the precision per
    iteration (``y += y * (1 - m*y) >> ...``, all multiplications), with an
    8-bit guard margin per step.  The result may be short of the exact
    floor by a few units — :func:`barrett_reduce` corrects for that, so
    exactness of the reduction never depends on exactness of ``mu``.
    """
    t = m.bit_length()
    if t <= NEWTON_DIRECT_BITS:
        return (1 << (2 * t)) // m
    precision = NEWTON_DIRECT_BITS // 2
    y = (1 << (2 * precision)) // ((m >> (t - precision)) + 1)
    while precision < t:
        doubled = min(t, 2 * precision - 8)
        m_high = m >> (t - doubled)
        y <<= doubled - precision
        residual = (1 << (2 * doubled)) - m_high * y
        y += (y * residual) >> (2 * doubled)
        precision = doubled
    return y


def barrett_reduce(x: int, m: int, mu: int, t: int) -> int:
    """Exact ``x % m`` using a precomputed reciprocal ``mu ~ floor(4**t/m)``.

    Requires ``x < 4**t`` (callers check ``x.bit_length() <= 2*t``).  The
    quotient estimate uses a truncated multiply — top half of ``x`` times
    ``mu`` — so both multiplications stay ~t bits wide.  A short correction
    loop absorbs the (at most a few units) estimation error; a degenerate
    estimate falls back to plain ``%``, making the function unconditionally
    exact for any ``mu`` no larger than the true reciprocal.
    """
    q = ((x >> (t - 1)) * mu) >> (t + 1)
    r = x - q * m
    if r < 0 or (r >> 3) >= m:
        return x % m
    while r >= m:
        r -= m
    return r


def prepare_reciprocals(
    levels: list[list[int]], min_bits: int = BARRETT_MIN_BITS
) -> list[list[tuple[int, int] | None]]:
    """Precompute Barrett reciprocals for every large-enough tree node.

    Returns a structure congruent with ``levels``: entry ``[li][i]`` is
    ``(mu, t)`` for node ``levels[li][i]`` when the node has at least
    ``min_bits`` bits, else ``None`` (plain ``%`` is cheaper there).  One
    preparation is worth roughly one plain remainder pass; it pays for
    itself when the same tree absorbs several passes (the clustered
    engine's k passes per subset).
    """
    return [
        [
            (newton_reciprocal(node), node.bit_length())
            if node.bit_length() >= min_bits
            else None
            for node in level
        ]
        for level in levels
    ]


def remainder_tree_prepared(
    x: int,
    levels: list[list[int]],
    reciprocals: list[list[tuple[int, int] | None]] | None = None,
) -> list[int]:
    """:func:`remainder_tree`, using prepared Barrett reciprocals where held.

    With ``reciprocals=None`` this is exactly :func:`remainder_tree`.  A
    node's reciprocal is used only when the incoming remainder fits the
    Barrett precondition (``< 4**t``); otherwise that node falls back to
    plain ``%``, so results are identical either way.
    """
    if reciprocals is None:
        return remainder_tree(x, levels)
    root = levels[-1][0]
    root_recip = reciprocals[-1][0]
    if root_recip is not None and x.bit_length() <= 2 * root_recip[1]:
        remainders = [barrett_reduce(x, root, *root_recip)]
    else:
        remainders = [x % root]
    for level_index in range(len(levels) - 2, -1, -1):
        level = levels[level_index]
        level_recips = reciprocals[level_index]
        remainders = [
            remainders[i // 2] % node
            if (recip := level_recips[i]) is None
            or remainders[i // 2].bit_length() > 2 * recip[1]
            else barrett_reduce(remainders[i // 2], node, *recip)
            for i, node in enumerate(level)
        ]
    return remainders
