"""Product and remainder trees (Bernstein, "How to find smooth parts of integers").

These are the two phases of the batch-GCD algorithm described in Section 3.2
of the paper:

1. A *product tree* multiplies ``n`` moduli pairwise in a binary tree,
   yielding the product of all inputs at the root in ``O(M(total bits) log n)``
   time instead of the ``O(n)`` sequential multiplications of a naive loop.
2. A *remainder tree* pushes a value (here the root product ``P``) down the
   same tree, reducing modulo each internal node, so that ``P mod Ni**2`` is
   obtained for every leaf in quasilinear total time.

The trees are represented level-by-level, leaves first, matching the diagram
in Figure 2 of the paper.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "product_tree",
    "tree_product",
    "remainder_tree",
    "remainder_tree_squared",
    "remainders_mod_squares",
]


def product_tree(values: Sequence[int]) -> list[list[int]]:
    """Build a product tree over ``values``.

    Returns:
        A list of levels; ``levels[0]`` is ``list(values)`` and each
        subsequent level holds pairwise products of the previous one.  The
        last level has a single element, the product of all inputs.  An empty
        input yields ``[[1]]`` so the root is always well-defined.
    """
    level = list(values) if values else [1]
    levels = [level]
    while len(level) > 1:
        nxt = [
            level[i] * level[i + 1] if i + 1 < len(level) else level[i]
            for i in range(0, len(level), 2)
        ]
        levels.append(nxt)
        level = nxt
    return levels


def tree_product(values: Sequence[int]) -> int:
    """Return the product of ``values`` using a product tree (1 when empty)."""
    return product_tree(values)[-1][0]


def remainder_tree(x: int, levels: list[list[int]]) -> list[int]:
    """Reduce ``x`` down a product tree, returning ``x mod leaf`` per leaf.

    Args:
        x: the value to reduce (typically a product of moduli).
        levels: a tree produced by :func:`product_tree`.
    """
    remainders = [x % levels[-1][0]]
    # Walk from the level below the root back down to the leaves.
    for level in reversed(levels[:-1]):
        remainders = [remainders[i // 2] % node for i, node in enumerate(level)]
    return remainders


def remainder_tree_squared(levels: list[list[int]]) -> list[int]:
    """Given a product tree over moduli, return ``P mod N_i**2`` per leaf.

    Uses the fastgcd trick: instead of building a second tree over the
    squares, the root product ``P`` is pushed down the *moduli* tree, reducing
    the running remainder modulo the **square** of each node.  Correct because
    ``N_i**2`` divides ``node**2`` for every ancestor node of leaf ``i``.
    """
    root = levels[-1][0]
    remainders = [root]
    for level in reversed(levels[:-1]):
        remainders = [
            remainders[i // 2] % (node * node) for i, node in enumerate(level)
        ]
    return remainders


def remainders_mod_squares(x: int, moduli: Sequence[int]) -> list[int]:
    """Return ``x mod Ni**2`` for each modulus, sharing one tree of squares.

    The batch-GCD algorithm needs ``P mod Ni**2`` (not ``P mod Ni``) so that
    ``(P mod Ni**2) / Ni`` retains the cofactor information required by the
    final ``gcd(Ni, z_i / Ni)`` step.
    """
    if not moduli:
        return []
    squares = [n * n for n in moduli]
    return remainder_tree(x, product_tree(squares))
