"""End-to-end study pipeline: world -> scans -> batch GCD -> analysis.

:func:`run_study` reproduces the paper's entire methodology at simulation
scale:

1. build the ground-truth world (device fleets, background web, CA pool,
   the Rimon interceptor);
2. walk the monthly timeline, stepping every population and collecting one
   representative scan per month with the era-appropriate scanner;
3. assemble the distinct-moduli corpus (HTTPS plus SSH/mail protocols) and
   factor it with the clustered batch GCD;
4. fingerprint implementations and triage artifacts;
5. build every table and figure series of the evaluation.
"""

from __future__ import annotations

import logging
import random
import time
from dataclasses import dataclass, field

from repro.analysis.eol import ModelEolAnalysis, analyze_eol
from repro.analysis.exposure import ExposureStats, analyze_exposure
from repro.analysis.heartbleed import HeartbleedImpact, analyze_heartbleed
from repro.analysis.tables import (
    Table1DatasetSummary,
    Table2VendorResponses,
    Table3ScanComparison,
    Table4ProtocolRow,
    Table5OpensslTable,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
)
from repro.analysis.timeseries import GlobalSeries, build_series
from repro.analysis.transitions import (
    IpReuseStats,
    TransitionStats,
    analyze_ip_reuse,
    analyze_transitions,
)
from repro.core.clustered import ClusterRunStats
from repro.core.results import BatchGcdResult
from repro.core.select import select_engine
from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.models import (
    DeviceModel,
    KeygenKind,
    KeygenSpec,
    PopulationSchedule,
    SubjectStyle,
)
from repro.devices.population import (
    IpAllocator,
    ModelPopulation,
    resolve_divisor,
)
from repro.devices.vendors import VENDORS
from repro.entropy.keygen import WeakKeyFactory
from repro.fingerprint.engine import FingerprintReport, fingerprint_study
from repro.scans.background import build_background_population, build_ca_pool
from repro.scans.protocols import ProtocolCorpus, build_protocol_corpora
from repro.scans.records import CertificateStore, ScanSnapshot
from repro.scans.rimon import RimonInterceptor
from repro.scans.scanner import HttpsScanner, reconstruct_chains
from repro.scans.sources import source_for_month
from repro.studyconfig import StudyConfig
from repro.telemetry import RunReport, Telemetry, get_telemetry, use_telemetry
from repro.timeline import Month

__all__ = ["STAGE_SPANS", "StudyWorld", "StudyResult", "build_world", "run_study"]

logger = logging.getLogger(__name__)

#: Paper-scale size of the Internet-Rimon customer fleet (922 distinct IPs).
RIMON_PAPER_IPS = 922


@dataclass(slots=True)
class StudyWorld:
    """The simulated ground truth, before any scanning.

    Attributes:
        config: the study configuration.
        populations: every fleet, flagged True when Rimon-intercepted.
        ca_pool: intermediate CAs signing background certificates.
        interceptor: the Rimon man in the middle.
        device_factory: prime factory for device keys.
        background_factory: prime factory for background/protocol keys.
        divisors: model id -> resolved population divisor.
    """

    config: StudyConfig
    populations: list[tuple[ModelPopulation, bool]]
    ca_pool: list
    interceptor: RimonInterceptor
    device_factory: WeakKeyFactory
    background_factory: WeakKeyFactory
    divisors: dict[str, int]

    def step(self, month: Month) -> None:
        """Advance every population one month."""
        for population, _intercepted in self.populations:
            population.step(month)

    def weak_moduli_truth(self) -> set[int]:
        """Ground-truth weak moduli ever emitted by any fleet."""
        truth: set[int] = set()
        for population, _intercepted in self.populations:
            truth |= population.weak_moduli_emitted
        return truth


def _rimon_customer_model(config: StudyConfig) -> DeviceModel:
    """The intercepted customer fleet (consumer gateways, healthy keys)."""
    return DeviceModel(
        model_id="rimon-customers",
        vendor="(rimon-intercepted)",
        subject_style=SubjectStyle.IP_ONLY,
        keygen=KeygenSpec(kind=KeygenKind.HEALTHY, profile_id="rimon-customers"),
        schedule=PopulationSchedule(
            points=((config.start, RIMON_PAPER_IPS), (config.end, RIMON_PAPER_IPS)),
            churn_rate=0.0,
            ip_churn_rate=0.0,
            cert_regen_rate=0.0,
        ),
    )


def _model_rng(seed: int, tag: str) -> random.Random:
    return random.Random(f"repro-study|{seed}|{tag}")


def build_world(config: StudyConfig) -> StudyWorld:
    """Construct the ground-truth world for a configuration."""
    table = config.openssl_table()
    device_factory = WeakKeyFactory(
        seed=config.seed, prime_bits=config.device_prime_bits, openssl_table=table
    )
    background_factory = WeakKeyFactory(
        seed=config.seed ^ 0x5CA1AB1E,
        prime_bits=config.background_prime_bits,
        openssl_table=table,
    )
    allocator = IpAllocator(_model_rng(config.seed, "ip-allocator"))
    ca_pool = build_ca_pool(
        _model_rng(config.seed, "ca-pool"),
        key_bits=max(64, config.background_prime_bits * 2),
    )
    populations: list[tuple[ModelPopulation, bool]] = []
    divisors: dict[str, int] = {}
    for model in DEVICE_CATALOG:
        divisor = resolve_divisor(model, config.device_limits)
        divisors[model.model_id] = divisor
        vendor = VENDORS.get(model.vendor)
        populations.append(
            (
                ModelPopulation(
                    model=model,
                    divisor=divisor,
                    factory=device_factory,
                    allocator=allocator,
                    rng=_model_rng(config.seed, model.model_id),
                    advisory=vendor.advisory if vendor else None,
                ),
                False,
            )
        )
    background = build_background_population(
        scale=config.scale,
        factory=background_factory,
        allocator=allocator,
        rng=_model_rng(config.seed, "background"),
        ca_pool=ca_pool,
    )
    divisors[background.model.model_id] = config.scale
    populations.append((background, False))

    rimon_model = _rimon_customer_model(config)
    rimon_divisor = max(1, round(RIMON_PAPER_IPS / max(1, config.rimon_hosts)))
    divisors[rimon_model.model_id] = rimon_divisor
    populations.append(
        (
            ModelPopulation(
                model=rimon_model,
                divisor=rimon_divisor,
                factory=device_factory,
                allocator=allocator,
                rng=_model_rng(config.seed, "rimon-customers"),
            ),
            True,
        )
    )
    interceptor = RimonInterceptor(
        _model_rng(config.seed, "rimon-key"), key_bits=config.device_prime_bits * 2
    )
    return StudyWorld(
        config=config,
        populations=populations,
        ca_pool=ca_pool,
        interceptor=interceptor,
        device_factory=device_factory,
        background_factory=background_factory,
        divisors=divisors,
    )


@dataclass(slots=True)
class StudyResult:
    """Everything the reproduced study produces."""

    config: StudyConfig
    store: CertificateStore
    snapshots: list[ScanSnapshot]
    protocol_corpora: list[ProtocolCorpus]
    batch_result: BatchGcdResult
    cluster_stats: ClusterRunStats | None
    fingerprints: FingerprintReport
    series: GlobalSeries
    transitions: dict[str, TransitionStats]
    table1: Table1DatasetSummary
    table2: Table2VendorResponses
    table3: tuple[Table3ScanComparison, Table3ScanComparison]
    table4: list[Table4ProtocolRow]
    table5: Table5OpensslTable
    heartbleed: HeartbleedImpact
    eol: list[ModelEolAnalysis]
    exposure: ExposureStats | None
    ibm_ip_reuse: IpReuseStats
    weak_moduli_truth: set[int]
    divisors: dict[str, int]
    timings: dict[str, float] = field(default_factory=dict)
    telemetry: RunReport | None = None

    def vulnerable_moduli(self) -> set[int]:
        """Factored, artifact-free moduli."""
        return self.fingerprints.vulnerable_moduli()


#: The six top-level stage spans every instrumented run emits, in order
#: (see ``docs/TELEMETRY.md``).
STAGE_SPANS = (
    "world_build",
    "timeline_walk",
    "corpus",
    "batch_gcd",
    "fingerprint",
    "analysis",
)


def run_study(
    config: StudyConfig | None = None,
    *,
    telemetry: Telemetry | None = None,
) -> StudyResult:
    """Run the full reproduction pipeline.

    Args:
        config: study configuration (defaults to :meth:`StudyConfig.full`).
        telemetry: registry to record into for the duration of the run
            (activated via :func:`repro.telemetry.use_telemetry`, so every
            instrumented layer lands in it).  Defaults to the currently
            active registry — a disabled no-op unless a caller opted in.
            When recording, the snapshot is attached as
            :attr:`StudyResult.telemetry`.
    """
    config = config or StudyConfig.full()
    with use_telemetry(telemetry if telemetry is not None else get_telemetry()) as tel:
        result = _run_study_instrumented(config, tel)
    if tel.enabled:
        result.telemetry = tel.report()
    return result


def _run_study_instrumented(config: StudyConfig, tel: Telemetry) -> StudyResult:
    """The pipeline body, recording one span per stage into ``tel``."""
    timings: dict[str, float] = {}

    started = time.perf_counter()
    with tel.span("world_build", seed=config.seed, scale=config.scale):
        world = build_world(config)
        store = CertificateStore()
        scanner = HttpsScanner(
            store=store,
            rng=_model_rng(config.seed, "scanner"),
            bit_error_rate=config.bit_error_rate,
            ca_pool=world.ca_pool,
            interceptor=world.interceptor,
        )

    snapshots: list[ScanSnapshot] = []
    with tel.span("timeline_walk"):
        for month in Month.range(config.start, config.end):
            world.step(month)
            source = source_for_month(month)
            if source is None:
                continue
            snapshot = scanner.scan(month, source, world.populations)
            if source.includes_unchained_intermediates:
                reconstruct_chains(snapshot, store)
            snapshots.append(snapshot)
            logger.info(
                "scan %s (%s): %d records", month, source.name, snapshot.host_count
            )
        tel.annotate(snapshots=len(snapshots))
    timings["world_and_scans"] = time.perf_counter() - started

    started = time.perf_counter()
    with tel.span("corpus"):
        protocol_corpora = build_protocol_corpora(
            scale=config.scale,
            factory=world.background_factory,
            rng=_model_rng(config.seed, "protocols"),
        )
        timings["protocols"] = time.perf_counter() - started
        corpus: dict[int, None] = {}
        for n in store.moduli_with_weights():
            corpus[n] = None
        for protocol_corpus in protocol_corpora:
            for n in protocol_corpus.all_moduli():
                corpus[n] = None
        moduli = list(corpus)
        tel.annotate(distinct_moduli=len(moduli))
    logger.info("batch GCD over %d distinct moduli", len(moduli))

    started = time.perf_counter()
    with tel.span(
        "batch_gcd",
        k=config.batchgcd_k,
        processes=config.batchgcd_processes,
        scheduler=config.batchgcd_scheduler,
    ):
        choice = select_engine(
            len(moduli),
            engine=config.batchgcd_engine,
            k=config.batchgcd_k,
            processes=config.batchgcd_processes,
            scheduler=config.batchgcd_scheduler,
            backend=config.batchgcd_backend,
            max_inflight=config.batchgcd_inflight,
            max_retries=config.batchgcd_max_retries,
            chunk_timeout=config.batchgcd_chunk_timeout,
            checkpoint_dir=config.batchgcd_checkpoint_dir,
            fault_plan=config.batchgcd_fault_plan,
            store_dir=config.batchgcd_store_dir,
            shards=config.batchgcd_shards,
        )
        engine = choice.engine
        tel.annotate(
            engine=choice.name,
            engine_processes=choice.processes,
            engine_reason=choice.reason,
        )
        logger.info("batch-GCD engine: %s (%s)", choice.name, choice.reason)
        batch_result = engine.run(moduli)
    timings["batch_gcd"] = time.perf_counter() - started

    started = time.perf_counter()
    with tel.span("fingerprint"):
        fingerprints = fingerprint_study(
            store,
            batch_result,
            openssl_table=config.openssl_table(),
            check_safe_primes=False,
        )
    timings["fingerprint"] = time.perf_counter() - started

    started = time.perf_counter()
    with tel.span("analysis"):
        vulnerable = fingerprints.vulnerable_moduli()
        series = build_series(
            snapshots, store, fingerprints.vendor_by_cert, vulnerable
        )
        transitions = analyze_transitions(
            snapshots, store, fingerprints.vendor_by_cert, vulnerable
        )
        eol_dates = {
            model.display_model: (model.eol, model.end_of_sale)
            for model in DEVICE_CATALOG
            if model.display_model and model.eol is not None
        }
        result = StudyResult(
            config=config,
            store=store,
            snapshots=snapshots,
            protocol_corpora=protocol_corpora,
            batch_result=batch_result,
            cluster_stats=engine.last_stats,
            fingerprints=fingerprints,
            series=series,
            transitions=transitions,
            table1=build_table1(snapshots, store, protocol_corpora, vulnerable),
            table2=build_table2(),
            table3=build_table3(snapshots, store),
            table4=build_table4(snapshots, store, protocol_corpora, vulnerable),
            table5=build_table5(fingerprints),
            heartbleed=analyze_heartbleed(series),
            eol=analyze_eol(
                snapshots, store, fingerprints.model_by_cert, eol_dates
            ),
            exposure=(
                analyze_exposure(snapshots[-1], store, vulnerable)
                if snapshots
                else None
            ),
            ibm_ip_reuse=analyze_ip_reuse(
                snapshots, store, fingerprints.vendor_by_cert, vulnerable, "IBM"
            ),
            weak_moduli_truth=world.weak_moduli_truth()
            | {
                n
                for protocol_corpus in protocol_corpora
                for n in protocol_corpus.weak_moduli_truth
            },
            divisors=world.divisors,
            timings=timings,
        )
    timings["analysis"] = time.perf_counter() - started
    return result
