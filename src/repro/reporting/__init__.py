"""Presentation layer: every way a finished study leaves the pipeline.

Three modules, three audiences:

- :mod:`repro.reporting.text` — low-level formatting primitives: aligned
  text tables (:func:`render_table`), ASCII time-series charts
  (:func:`render_series_chart`), and human-scale count formatting
  (:func:`format_count`, "313,330" style).  These know nothing about the
  study; they render rows and series.
- :mod:`repro.reporting.study` — the paper-facing renderers: one function
  per table (:func:`render_table1` .. :func:`render_table5`) and figure
  (:func:`render_figure1`, :func:`render_vendor_figure`,
  :func:`render_figure7`), each taking a
  :class:`~repro.pipeline.StudyResult` and returning the text the
  benchmark harness writes to ``benchmarks/output/``.
- :mod:`repro.reporting.export` — machine-readable exits: per-vendor CSV
  (:func:`series_to_csv`, :func:`global_series_to_csv`) and the JSON
  bundle (:func:`study_to_json`), which embeds the run's telemetry
  RunReport when one was recorded.

Rule of thumb: if a human reads it, it lives in ``study``/``text``; if a
plotting script reads it, it lives in ``export``; per-run performance
accounting lives in :mod:`repro.telemetry` and rides along in the export.
"""

from repro.reporting.export import (
    global_series_to_csv,
    series_to_csv,
    study_to_json,
)
from repro.reporting.study import (
    render_figure1,
    render_figure7,
    render_summary,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_vendor_figure,
)
from repro.reporting.text import format_count, render_series_chart, render_table

__all__ = [
    "format_count",
    "global_series_to_csv",
    "render_figure1",
    "render_figure7",
    "render_series_chart",
    "render_summary",
    "render_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_vendor_figure",
    "series_to_csv",
    "study_to_json",
]
