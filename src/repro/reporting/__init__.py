"""Text reporting: tables, ASCII charts, study renderers, CSV/JSON export."""

from repro.reporting.export import (
    global_series_to_csv,
    series_to_csv,
    study_to_json,
)
from repro.reporting.study import (
    render_figure1,
    render_figure7,
    render_summary,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_vendor_figure,
)
from repro.reporting.text import format_count, render_series_chart, render_table

__all__ = [
    "format_count",
    "global_series_to_csv",
    "render_figure1",
    "render_figure7",
    "render_series_chart",
    "render_summary",
    "render_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_vendor_figure",
    "series_to_csv",
    "study_to_json",
]
