"""Machine-readable exports: CSV and JSON for series and tables.

These are what a downstream user plots with their own tooling; the text
renderers in :mod:`repro.reporting.study` are for eyeballing.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from repro.analysis.timeseries import GlobalSeries, VendorSeries
from repro.pipeline import StudyResult

__all__ = [
    "series_to_csv",
    "global_series_to_csv",
    "study_to_json",
]


def series_to_csv(series: VendorSeries) -> str:
    """One vendor's series as CSV (month, source, totals, vulnerable)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["month", "source", "total", "vulnerable", "total_raw", "vulnerable_raw"]
    )
    for point in series.points:
        writer.writerow(
            [
                str(point.month),
                point.source,
                f"{point.total:.1f}",
                f"{point.vulnerable:.1f}",
                point.total_raw,
                point.vulnerable_raw,
            ]
        )
    return buffer.getvalue()


def global_series_to_csv(series: GlobalSeries) -> str:
    """All series (overall plus per vendor) as long-format CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["vendor", "month", "source", "total", "vulnerable"])
    for name, vendor_series in [("(all)", series.overall)] + sorted(
        series.by_vendor.items()
    ):
        for point in vendor_series.points:
            writer.writerow(
                [
                    name,
                    str(point.month),
                    point.source,
                    f"{point.total:.1f}",
                    f"{point.vulnerable:.1f}",
                ]
            )
    return buffer.getvalue()


def _table1_dict(result: StudyResult) -> dict[str, Any]:
    t = result.table1
    return {
        "https_host_records": t.https_host_records,
        "distinct_https_certificates": t.distinct_https_certificates,
        "distinct_https_moduli": t.distinct_https_moduli,
        "total_distinct_moduli": t.total_distinct_moduli,
        "vulnerable_moduli": t.vulnerable_moduli,
        "vulnerable_https_host_records": t.vulnerable_https_host_records,
        "vulnerable_https_certificates": t.vulnerable_https_certificates,
        "vulnerable_moduli_fraction": t.vulnerable_moduli_fraction,
    }


def study_to_json(result: StudyResult, indent: int | None = 2) -> str:
    """The study's headline results as a JSON document.

    Includes Table 1, Table 4, the Table 5 partition, the Heartbleed
    impact, transitions, exposure, and per-vendor series.  When the run
    recorded telemetry (``run_study(..., telemetry=Telemetry())``), the
    full RunReport is embedded under ``"telemetry"`` using the schema
    documented in ``docs/TELEMETRY.md``.
    """
    payload: dict[str, Any] = {
        "config": {
            "seed": result.config.seed,
            "scale": result.config.scale,
            "start": str(result.config.start),
            "end": str(result.config.end),
        },
        "table1": _table1_dict(result),
        "table4": [
            {
                "protocol": row.protocol,
                "scan_month": str(row.scan_month),
                "total_hosts": row.total_hosts,
                "rsa_hosts": row.rsa_hosts,
                "vulnerable_hosts": row.vulnerable_hosts,
            }
            for row in result.table4
        ],
        "table5": {
            "satisfy": list(result.table5.satisfy),
            "do_not_satisfy": list(result.table5.do_not_satisfy),
            "inconclusive": list(result.table5.inconclusive),
        },
        "heartbleed": {
            "largest_vulnerable_drop_month": str(
                result.heartbleed.global_largest_vulnerable_drop_month
            ),
            "global_vulnerable_drop": result.heartbleed.global_vulnerable_drop,
        },
        "transitions": {
            vendor: {
                "ips_observed": stats.ips_observed,
                "ips_ever_vulnerable": stats.ips_ever_vulnerable,
                "to_nonvulnerable": stats.to_nonvulnerable,
                "to_vulnerable": stats.to_vulnerable,
                "multiple": stats.multiple,
            }
            for vendor, stats in sorted(result.transitions.items())
        },
        "series": {
            vendor: {
                "months": [str(p.month) for p in series.points],
                "total": [p.total for p in series.points],
                "vulnerable": [p.vulnerable for p in series.points],
            }
            for vendor, series in sorted(result.series.by_vendor.items())
        },
    }
    if result.exposure is not None:
        payload["exposure"] = {
            "month": str(result.exposure.month),
            "vulnerable_hosts": result.exposure.vulnerable_hosts,
            "passively_decryptable": result.exposure.passively_decryptable,
            "passive_fraction": result.exposure.passive_fraction,
        }
    if result.telemetry is not None:
        payload["telemetry"] = result.telemetry.to_dict()
    return json.dumps(payload, indent=indent)
