"""Renderers that turn a :class:`StudyResult` into the paper's tables/figures."""

from __future__ import annotations

from repro.analysis.timeseries import VendorSeries
from repro.devices.vendors import ResponseCategory
from repro.pipeline import StudyResult
from repro.reporting.text import format_count, render_series_chart, render_table

__all__ = [
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_figure1",
    "render_vendor_figure",
    "render_figure7",
    "render_summary",
]

#: Published values, for side-by-side display.
PAPER_TABLE1 = {
    "HTTPS host records": 1_526_222_329,
    "Distinct HTTPS certificates": 65_285_795,
    "Distinct HTTPS moduli": 50_677_278,
    "Total distinct RSA moduli": 81_228_736,
    "Vulnerable RSA moduli": 313_330,
    "Vulnerable HTTPS host records": 2_964_447,
    "Vulnerable HTTPS certificates": 1_441_437,
}


def render_table1(result: StudyResult) -> str:
    """Table 1: dataset summary, measured vs paper."""
    t = result.table1
    rows = [
        ("HTTPS host records", t.https_host_records, t.https_host_records_raw),
        (
            "Distinct HTTPS certificates",
            t.distinct_https_certificates,
            t.distinct_https_certificates_raw,
        ),
        ("Distinct HTTPS moduli", t.distinct_https_moduli, t.distinct_https_moduli_raw),
        (
            "Total distinct RSA moduli",
            t.total_distinct_moduli,
            t.total_distinct_moduli_raw,
        ),
        ("Vulnerable RSA moduli", t.vulnerable_moduli, t.vulnerable_moduli_raw),
        (
            "Vulnerable HTTPS host records",
            t.vulnerable_https_host_records,
            t.vulnerable_https_host_records_raw,
        ),
        (
            "Vulnerable HTTPS certificates",
            t.vulnerable_https_certificates,
            t.vulnerable_https_certificates_raw,
        ),
    ]
    table_rows = [
        (
            name,
            format_count(weighted),
            format_count(PAPER_TABLE1[name]),
            f"{raw:,}",
        )
        for name, weighted, raw in rows
    ]
    table_rows.append(
        (
            "Vulnerable moduli fraction",
            f"{t.vulnerable_moduli_fraction:.2%}",
            "0.39%",
            "",
        )
    )
    return render_table(
        ["Quantity", "Measured (est.)", "Paper", "Simulated (raw)"],
        table_rows,
        title="Table 1: dataset summary",
    )


def render_table2(result: StudyResult) -> str:
    """Table 2: 2012 notification responses."""
    t = result.table2
    rows = []
    order = (
        ResponseCategory.PUBLIC_ADVISORY,
        ResponseCategory.PRIVATE_RESPONSE,
        ResponseCategory.AUTO_RESPONSE,
        ResponseCategory.NO_RESPONSE,
    )
    for category in order:
        vendors = t.by_category.get(category, ())
        rows.append((category.value, len(vendors), ", ".join(vendors)))
    return render_table(
        ["Response", "Count", "Vendors"],
        rows,
        title=f"Table 2: vendor responses ({t.notified_count} vendors notified 2012)",
    )


def render_table3(result: StudyResult) -> str:
    """Table 3: earliest vs latest scan."""
    earliest, latest = result.table3
    rows = [
        (
            "TLS handshakes",
            format_count(earliest.tls_handshakes),
            format_count(latest.tls_handshakes),
        ),
        (
            "Distinct certificates",
            format_count(earliest.distinct_certificates),
            format_count(latest.distinct_certificates),
        ),
        (
            "Distinct RSA keys",
            format_count(earliest.distinct_rsa_keys),
            format_count(latest.distinct_rsa_keys),
        ),
    ]
    return render_table(
        [
            "Quantity",
            f"{earliest.month} ({earliest.source})",
            f"{latest.month} ({latest.source})",
        ],
        rows,
        title="Table 3: earliest vs latest scan (paper: 11.26M -> 38.01M handshakes)",
    )


def render_table4(result: StudyResult) -> str:
    """Table 4: per-protocol vulnerable hosts."""
    rows = [
        (
            row.protocol,
            str(row.scan_month),
            format_count(row.total_hosts),
            format_count(row.rsa_hosts),
            format_count(row.vulnerable_hosts),
        )
        for row in result.table4
    ]
    return render_table(
        ["Protocol", "Scanned", "Total hosts", "RSA hosts", "Vulnerable"],
        rows,
        title="Table 4: protocols (paper: HTTPS 59,628 / SSH 723 / mail 0)",
    )


def render_table5(result: StudyResult) -> str:
    """Table 5: OpenSSL fingerprint classification."""
    t = result.table5
    rows = [
        (v.vendor, v.primes_examined, f"{v.satisfying_fraction:.0%}", v.verdict)
        for v in t.verdicts
    ]
    return render_table(
        ["Vendor", "Primes", "Satisfying", "Verdict"],
        rows,
        title=(
            "Table 5: OpenSSL prime fingerprint "
            f"({len(t.satisfy)} satisfy / {len(t.do_not_satisfy)} do not)"
        ),
    )


def _series_charts(series: VendorSeries, title: str) -> str:
    labels = [str(p.month) for p in series.points]
    total_chart = render_series_chart(
        labels, series.totals(), title=f"{title} — total hosts"
    )
    vuln_chart = render_series_chart(
        labels, series.vulnerable(), title=f"{title} — vulnerable hosts"
    )
    return total_chart + "\n\n" + vuln_chart


def render_figure1(result: StudyResult) -> str:
    """Figure 1: all HTTPS hosts / vulnerable hosts over the study."""
    return _series_charts(result.series.overall, "Figure 1: HTTPS hosts")


def render_vendor_figure(result: StudyResult, vendor: str, figure: str) -> str:
    """Figures 3–6, 8–10: one vendor's total/vulnerable series."""
    series = result.series.vendor(vendor)
    if not series.points:
        return f"{figure}: no observations for {vendor}"
    return _series_charts(series, f"{figure}: {vendor}")


def render_figure7(result: StudyResult) -> str:
    """Figure 7: Cisco end-of-life timeline."""
    rows = []
    for analysis in result.eol:
        rows.append(
            (
                analysis.model,
                str(analysis.eol) if analysis.eol else "-",
                str(analysis.end_of_sale) if analysis.end_of_sale else "-",
                str(analysis.peak_month) if analysis.peak_month else "-",
                format_count(analysis.population_at_eol),
                format_count(analysis.population_at_end),
                "yes" if analysis.declining_after_eol else "no",
            )
        )
    return render_table(
        ["Model", "EOL", "End of sale", "Peak", "Pop@EOL", "Pop@end", "Declining"],
        rows,
        title="Figure 7: Cisco end-of-life vs population decline",
    )


def render_summary(result: StudyResult) -> str:
    """A one-screen study summary."""
    lines = [
        f"Study seed={result.config.seed} scale=1:{result.config.scale}",
        f"Scans: {len(result.snapshots)}  "
        f"certificates: {len(result.store):,}  "
        f"corpus moduli: {len(result.batch_result.moduli):,}",
        f"Batch GCD flagged {result.batch_result.vulnerable_count():,} moduli; "
        f"{len(result.fingerprints.factored_clean):,} factored cleanly "
        f"({len(result.fingerprints.bit_errors)} bit errors, "
        f"{len(result.fingerprints.substitutions)} key substitutions set aside)",
        f"Ground truth weak moduli: {len(result.weak_moduli_truth):,} "
        f"(recall {_recall(result):.0%})",
        f"Largest vulnerable drop: "
        f"{result.heartbleed.global_largest_vulnerable_drop_month} "
        f"(Heartbleed was {result.config and '2014-04'})",
    ]
    if result.cluster_stats:
        stats = result.cluster_stats
        lines.append(
            f"Clustered batch GCD: k={stats.k}, {stats.tasks} tasks, "
            f"wall {stats.wall_seconds:.1f}s, cpu {stats.cpu_seconds:.1f}s"
        )
    if result.exposure is not None and result.exposure.vulnerable_hosts:
        lines.append(
            f"Final scan: {format_count(result.exposure.vulnerable_hosts)} "
            f"vulnerable hosts, {result.exposure.passive_fraction:.0%} "
            "passively decryptable (RSA-kex only; paper: 74%)"
        )
    return "\n".join(lines)


def _recall(result: StudyResult) -> float:
    truth = result.weak_moduli_truth
    if not truth:
        return 1.0
    observed_truth = truth & {
        e.certificate.public_key.n for e in result.store.entries()
    }
    observed_truth |= truth & set(result.batch_result.moduli)
    if not observed_truth:
        return 1.0
    found = len(observed_truth & set(result.fingerprints.factored_clean))
    return found / len(observed_truth)
