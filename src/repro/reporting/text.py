"""Plain-text rendering: aligned tables and ASCII time-series charts.

The benchmark harness prints every reproduced table and figure through
these helpers, so the output can be eyeballed against the paper.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series_chart", "format_count"]


def format_count(value: float) -> str:
    """Humanise a (possibly weighted) count: 12,345 or 1.23M."""
    if value >= 10_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 1_000_000:
        return f"{value / 1_000_000:.2f}M"
    if value >= 100_000:
        return f"{value / 1000:.0f}K"
    if value != int(value):
        return f"{value:,.1f}"
    return f"{int(value):,}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 60,
    height: int = 12,
    marker: str = "*",
) -> str:
    """Render one series as an ASCII scatter/line chart.

    Labels are thinned to fit; the y-axis is annotated with min/max.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must be aligned")
    lines = []
    if title:
        lines.append(title)
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    vmax = max(values)
    vmin = min(0.0, min(values))
    span = vmax - vmin or 1.0
    columns = min(width, len(values))
    # Downsample to the chart width.
    indices = [round(i * (len(values) - 1) / max(1, columns - 1)) for i in range(columns)]
    sampled = [values[i] for i in indices]
    grid = [[" "] * columns for _ in range(height)]
    for col, value in enumerate(sampled):
        row = round((value - vmin) / span * (height - 1))
        grid[height - 1 - row][col] = marker
    axis_width = max(len(format_count(vmax)), len(format_count(vmin)))
    for r, row_cells in enumerate(grid):
        if r == 0:
            label = format_count(vmax)
        elif r == height - 1:
            label = format_count(vmin)
        else:
            label = ""
        lines.append(f"{label.rjust(axis_width)} |{''.join(row_cells)}")
    lines.append(" " * axis_width + " +" + "-" * columns)
    first, last = labels[indices[0]], labels[indices[-1]]
    gap = max(1, columns - len(first) - len(last))
    lines.append(" " * (axis_width + 2) + first + " " * gap + last)
    return "\n".join(lines)
