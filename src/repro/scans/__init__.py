"""Internet-wide scan simulation: sources, scanner, records, artifacts.

- :mod:`repro.scans.sources` — the five scan eras (EFF, P&Q, Ecosystem,
  Rapid7, Censys) and the one-representative-scan-per-month schedule.
- :mod:`repro.scans.records` — compact host records and certificate
  interning.
- :mod:`repro.scans.scanner` — the HTTPS scanner, with coverage artifacts,
  bit errors, Rapid7 unchained intermediates, and chain reconstruction.
- :mod:`repro.scans.background` — the healthy web ecosystem and CA pool.
- :mod:`repro.scans.rimon` — the ISP man-in-the-middle key substitution.
- :mod:`repro.scans.protocols` — SSH/IMAPS/POP3S/SMTPS corpora (Table 4).
"""

from repro.scans.background import (
    BACKGROUND_MODEL,
    build_background_population,
    build_ca_pool,
)
from repro.scans.protocols import PROTOCOL_SPECS, ProtocolCorpus, build_protocol_corpora
from repro.scans.records import CertificateStore, ScanSnapshot, StoredCertificate
from repro.scans.rimon import RimonInterceptor
from repro.scans.scanner import HttpsScanner, reconstruct_chains
from repro.scans.sources import SCAN_SOURCES, ScanSource, scan_months, source_for_month

__all__ = [
    "BACKGROUND_MODEL",
    "CertificateStore",
    "HttpsScanner",
    "PROTOCOL_SPECS",
    "ProtocolCorpus",
    "RimonInterceptor",
    "SCAN_SOURCES",
    "ScanSnapshot",
    "ScanSource",
    "StoredCertificate",
    "build_background_population",
    "build_ca_pool",
    "build_protocol_corpora",
    "reconstruct_chains",
    "scan_months",
    "source_for_month",
]
