"""The background HTTPS ecosystem: ordinary web servers and the web PKI.

The weak-key phenomenon lives in a vast, healthy ocean: the paper's corpus
holds 50.7 M distinct HTTPS moduli, of which only 0.37 % factored, nearly
all on network devices.  This module supplies that ocean — a large, growing
population of correctly-keyed web servers (mostly CA-signed) whose totals
track Figure 1 — plus the simulated certificate-authority pool whose
intermediates produce the Rapid7 chain artifact.
"""

from __future__ import annotations

import random
from datetime import date

from repro.crypto.certs import Certificate, DistinguishedName, self_signed_certificate
from repro.crypto.rsa import RsaPrivateKey, generate_rsa_keypair
from repro.devices.models import (
    DeviceModel,
    KeygenKind,
    KeygenSpec,
    PopulationSchedule,
    SubjectStyle,
)
from repro.devices.population import IpAllocator, ModelPopulation
from repro.entropy.keygen import WeakKeyFactory
from repro.timeline import STUDY_END, STUDY_START, Month

__all__ = [
    "BACKGROUND_MODEL",
    "build_ca_pool",
    "build_background_population",
]

#: Total-HTTPS-hosts trajectory at paper scale, read off Figure 1 / Table 3
#: (11.26 M handshakes in the July 2010 EFF scan; 38.01 M in the April 2016
#: Censys scan).  The background is the ecosystem minus the device fleets.
BACKGROUND_MODEL = DeviceModel(
    model_id="background-web",
    vendor="(background)",
    subject_style=SubjectStyle.WEB_SERVER,
    keygen=KeygenSpec(kind=KeygenKind.HEALTHY, profile_id="background-web"),
    schedule=PopulationSchedule(
        points=(
            (STUDY_START, 9_800_000),
            (Month(2010, 12), 10_600_000),
            (Month(2011, 10), 11_800_000),
            (Month(2012, 6), 17_500_000),
            (Month(2014, 1), 26_500_000),
            (Month(2015, 6), 31_500_000),
            (Month(2016, 4), 36_300_000),
            (STUDY_END, 36_500_000),
        ),
        churn_rate=0.006,
        ip_churn_rate=0.003,
        cert_regen_rate=0.004,
    ),
)

#: Share of background certificates issued by a CA rather than self-signed.
CA_SIGNED_FRACTION = 0.6


def build_ca_pool(
    rng: random.Random, count: int = 24, key_bits: int = 128
) -> list[tuple[Certificate, RsaPrivateKey]]:
    """Create the intermediate-CA pool used to sign background certificates.

    These intermediates are what Rapid7-era scans surface as unchained extra
    records (Section 3.1): each one can appear alongside the host certificate
    it signed, and chain reconstruction must drop it.
    """
    pool: list[tuple[Certificate, RsaPrivateKey]] = []
    for index in range(count):
        keypair = generate_rsa_keypair(key_bits, rng)
        subject = DistinguishedName(
            C="US",
            O=f"TrustCo {index:02d}",
            OU="Intermediate CA",
            CN=f"TrustCo Issuing CA {index:02d}",
        )
        certificate = self_signed_certificate(
            subject=subject,
            keypair=keypair,
            serial=rng.getrandbits(64),
            not_before=date(2005, 1, 1),
            not_after=date(2030, 1, 1),
            is_ca=True,
        )
        pool.append((certificate, keypair.private))
    return pool


def build_background_population(
    scale: int,
    factory: WeakKeyFactory,
    allocator: IpAllocator,
    rng: random.Random,
    ca_pool: list[tuple[Certificate, RsaPrivateKey]],
) -> ModelPopulation:
    """Assemble the background ecosystem at ``1/scale`` of paper scale."""
    return ModelPopulation(
        model=BACKGROUND_MODEL,
        divisor=scale,
        factory=factory,
        allocator=allocator,
        rng=rng,
        ca_pool=ca_pool,
        ca_fraction=CA_SIGNED_FRACTION,
    )
