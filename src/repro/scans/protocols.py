"""Non-HTTPS key corpora: SSH, IMAPS, POP3S, SMTPS (Table 4).

The paper fed RSA keys from Censys SSH and mail-protocol scans into the
batch GCD alongside HTTPS, then excluded those protocols from the
longitudinal analysis after finding that virtually all vulnerable keys were
HTTPS: 723 vulnerable SSH hosts and zero vulnerable mail hosts.

These corpora are simulated once, at the protocol scan dates of Table 4:
mail servers are general-purpose machines with healthy entropy, so their
keys never factor; a small population of network devices exposes SSH with
the same boot-time entropy hole as their HTTPS siblings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.entropy.keygen import HealthyProfile, SharedPrimeProfile, WeakKeyFactory
from repro.timeline import Month

__all__ = ["ProtocolCorpus", "build_protocol_corpora", "PROTOCOL_SPECS"]


@dataclass(frozen=True, slots=True)
class _ProtocolSpec:
    """Paper-scale parameters for one protocol scan (Table 4)."""

    name: str
    scan_month: Month
    total_hosts: int
    rsa_hosts: int
    weak_hosts: int
    weak_boot_states: int = 60


#: Table 4's scan rows at paper scale.
PROTOCOL_SPECS: tuple[_ProtocolSpec, ...] = (
    _ProtocolSpec("SSH", Month(2015, 10), 10_730_527, 6_257_106, 723),
    _ProtocolSpec("POP3S", Month(2016, 4), 4_533_094, 4_533_094, 0),
    _ProtocolSpec("IMAPS", Month(2016, 4), 4_544_158, 4_544_158, 0),
    _ProtocolSpec("SMTPS", Month(2016, 4), 3_292_031, 3_292_031, 0),
)

#: Extra historical keys (prior scans, key rollovers) folded into the batch
#: GCD corpus per protocol, as a fraction of the current scan's keys.  This
#: accounts for Table 1's total of 81.2 M distinct moduli exceeding the sum
#: of single-scan counts.
HISTORICAL_KEY_FRACTION = 0.6


@dataclass(slots=True)
class ProtocolCorpus:
    """One protocol's simulated key corpus.

    Attributes:
        protocol: protocol name ("SSH", ...).
        scan_month: when the representative scan ran.
        total_hosts_sim: simulated host count (all key types).
        weight: paper-scale hosts per simulated host.
        rsa_moduli: moduli of hosts serving RSA keys in the scan.
        historical_moduli: additional distinct moduli from earlier scans,
            included in the batch GCD corpus but not in Table 4 host counts.
        weak_moduli_truth: ground-truth weak moduli (for validation only).
    """

    protocol: str
    scan_month: Month
    total_hosts_sim: int
    weight: int
    rsa_moduli: list[int] = field(default_factory=list)
    historical_moduli: list[int] = field(default_factory=list)
    weak_moduli_truth: set[int] = field(default_factory=set)

    @property
    def rsa_host_count_sim(self) -> int:
        """Simulated hosts serving RSA keys."""
        return len(self.rsa_moduli)

    def all_moduli(self) -> list[int]:
        """Every modulus this corpus contributes to the batch GCD."""
        return self.rsa_moduli + self.historical_moduli


def _weak_divisor(spec: _ProtocolSpec, scale: int, min_weak_sim: int = 20) -> int:
    """Divisor for the weak sub-population (kept small enough to be visible)."""
    if spec.weak_hosts == 0:
        return scale
    return max(1, min(scale, spec.weak_hosts // min_weak_sim))


def build_protocol_corpora(
    scale: int,
    factory: WeakKeyFactory,
    rng: random.Random,
) -> list[ProtocolCorpus]:
    """Build all four non-HTTPS corpora at ``1/scale``.

    The weak SSH sub-population is simulated at its own (smaller) divisor so
    that the ~723 paper-scale vulnerable hosts do not round away; its records
    carry that divisor as weight through the pipeline.
    """
    corpora: list[ProtocolCorpus] = []
    for spec in PROTOCOL_SPECS:
        healthy_profile = HealthyProfile(profile_id=f"proto-{spec.name.lower()}")
        healthy_count = max(0, round((spec.rsa_hosts - spec.weak_hosts) / scale))
        corpus = ProtocolCorpus(
            protocol=spec.name,
            scan_month=spec.scan_month,
            total_hosts_sim=round(spec.total_hosts / scale),
            weight=scale,
        )
        for _ in range(healthy_count):
            key = healthy_profile.generate(rng, factory)
            corpus.rsa_moduli.append(key.keypair.public.n)
        historical = round(healthy_count * HISTORICAL_KEY_FRACTION)
        for _ in range(historical):
            key = healthy_profile.generate(rng, factory)
            corpus.historical_moduli.append(key.keypair.public.n)
        if spec.weak_hosts:
            divisor = _weak_divisor(spec, scale)
            weak_profile = SharedPrimeProfile(
                profile_id=f"proto-{spec.name.lower()}-weak",
                boot_states=max(2, spec.weak_boot_states // divisor),
                openssl_style=False,
            )
            weak_count = max(1, round(spec.weak_hosts / divisor))
            # The weak hosts ride along in the same corpus with their own
            # weight; a parallel corpus entry keeps weights unambiguous.
            weak_corpus = ProtocolCorpus(
                protocol=spec.name,
                scan_month=spec.scan_month,
                total_hosts_sim=weak_count,
                weight=divisor,
            )
            for _ in range(weak_count):
                key = weak_profile.generate(rng, factory)
                n = key.keypair.public.n
                weak_corpus.rsa_moduli.append(n)
                weak_corpus.weak_moduli_truth.add(n)
            corpora.append(weak_corpus)
        corpora.append(corpus)
    return corpora
