"""Compact host records and the interning certificate store.

A six-year scan corpus is large even at 1:1000 scale, so records are plain
tuples ``(ip, cert_id)`` and certificates are interned once in a
:class:`CertificateStore`.  Each stored certificate carries the *weight* of
the population it came from (its population divisor), which the analysis
layer uses to report estimates in paper-scale units.
"""

from __future__ import annotations

import array
from dataclasses import dataclass
from typing import Iterator

from repro.crypto.certs import Certificate
from repro.timeline import Month

__all__ = ["CertificateStore", "HostRecord", "ScanSnapshot", "StoredCertificate"]

#: One observed (IP address, certificate) pair in one scan.
HostRecord = tuple[int, int]  # (ip, cert_id)


@dataclass(frozen=True, slots=True)
class StoredCertificate:
    """A certificate plus scan-side observables and simulation weight.

    Attributes:
        certificate: the certificate as collected.
        weight: paper-scale hosts represented by one simulated host serving
            this certificate (the originating population's divisor).
        banner: identifying text served over HTTPS by hosts presenting this
            certificate (e.g. the SnapGear management-console page the paper
            used to attribute McAfee's all-default certificates).
        only_rsa_kex: whether hosts presenting this certificate negotiate
            only RSA key exchange (observable from the TLS handshake); such
            hosts are passively decryptable once their key is factored.
    """

    certificate: Certificate
    weight: int
    banner: str = ""
    only_rsa_kex: bool = False


class CertificateStore:
    """Interns certificates and assigns stable integer ids."""

    def __init__(self) -> None:
        self._by_fingerprint: dict[str, int] = {}
        self._entries: list[StoredCertificate] = []

    def intern(
        self,
        certificate: Certificate,
        weight: int,
        banner: str = "",
        only_rsa_kex: bool = False,
    ) -> int:
        """Store a certificate (once) and return its id.

        The first-seen observables win; in practice a certificate only ever
        belongs to one simulated population.
        """
        fingerprint = certificate.fingerprint()
        cert_id = self._by_fingerprint.get(fingerprint)
        if cert_id is None:
            cert_id = len(self._entries)
            self._by_fingerprint[fingerprint] = cert_id
            self._entries.append(
                StoredCertificate(certificate, weight, banner, only_rsa_kex)
            )
        return cert_id

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, cert_id: int) -> StoredCertificate:
        return self._entries[cert_id]

    def entries(self) -> list[StoredCertificate]:
        """All stored certificates in id order."""
        return list(self._entries)

    def moduli_with_weights(self) -> dict[int, int]:
        """Distinct moduli -> maximum weight over certificates serving them."""
        out: dict[int, int] = {}
        for entry in self._entries:
            n = entry.certificate.public_key.n
            if n not in out or entry.weight > out[n]:
                out[n] = entry.weight
        return out


class ScanSnapshot:
    """One scan of one protocol in one month.

    Records are stored in parallel ``array`` columns — a full-scale study
    holds millions of host records, and tuples-of-ints would cost an order
    of magnitude more memory.

    Attributes:
        source: scan-source name ("EFF", "P&Q", "Ecosystem", "Rapid7",
            "Censys").
        month: the month the scan represents.
    """

    __slots__ = ("source", "month", "_ips", "_cert_ids")

    def __init__(self, source: str, month: Month) -> None:
        self.source = source
        self.month = month
        self._ips = array.array("Q")
        self._cert_ids = array.array("Q")

    def append(self, ip: int, cert_id: int) -> None:
        """Record one observed (IP, certificate) pair."""
        self._ips.append(ip)
        self._cert_ids.append(cert_id)

    @property
    def host_count(self) -> int:
        """Number of host records in the snapshot."""
        return len(self._ips)

    def records(self) -> Iterator[HostRecord]:
        """Iterate (ip, cert_id) pairs."""
        return zip(self._ips, self._cert_ids)

    def cert_ids(self) -> array.array:
        """The certificate-id column (shared, do not mutate)."""
        return self._cert_ids

    def ips(self) -> array.array:
        """The IP column (shared, do not mutate)."""
        return self._ips

    def remove_indices(self, indices: set[int]) -> int:
        """Drop records by positional index; returns how many were removed.

        Used by chain reconstruction to strip unchained intermediates.
        """
        if not indices:
            return 0
        keep_ips = array.array("Q")
        keep_certs = array.array("Q")
        for position, (ip, cert_id) in enumerate(zip(self._ips, self._cert_ids)):
            if position not in indices:
                keep_ips.append(ip)
                keep_certs.append(cert_id)
        removed = len(self._ips) - len(keep_ips)
        self._ips = keep_ips
        self._cert_ids = keep_certs
        return removed
