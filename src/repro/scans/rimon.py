"""The Internet-Rimon man-in-the-middle artifact (Section 3.3.3).

The paper discovered an Israeli ISP substituting a single fixed RSA modulus
into the self-signed certificates served by its customers' devices — only
the public key, signature and signature hash changed; everything else in the
certificate stayed intact.  922 distinct IPs served that key across the
whole study.

:class:`RimonInterceptor` reproduces the artifact: it owns one fixed key and
rewrites any certificate passing through it, caching substitutions so the
same original always maps to the same intercepted certificate.
"""

from __future__ import annotations

import random

from repro.crypto.certs import Certificate, substitute_public_key
from repro.crypto.rsa import RsaKeyPair, generate_rsa_keypair

__all__ = ["RimonInterceptor"]


class RimonInterceptor:
    """An ISP-grade key-substituting man in the middle.

    Args:
        rng: randomness for the interceptor's own key generation.
        key_bits: modulus size of the fixed key (the real one was 1024-bit;
            the paper did not factor it, and neither will the pipeline —
            the key is healthy).
    """

    def __init__(self, rng: random.Random, key_bits: int = 128) -> None:
        self.keypair: RsaKeyPair = generate_rsa_keypair(key_bits, rng)
        self._cache: dict[str, Certificate] = {}

    @property
    def modulus(self) -> int:
        """The fixed substituted modulus (one modulus, many IPs)."""
        return self.keypair.public.n

    def intercept(self, certificate: Certificate) -> Certificate:
        """Return the substituted version of a customer's certificate.

        Only the public key, signature, and hash choice change; subject,
        issuer, serial, validity and SANs are untouched — the exact artifact
        signature the detection layer looks for.
        """
        fingerprint = certificate.fingerprint()
        cached = self._cache.get(fingerprint)
        if cached is None:
            cached = substitute_public_key(
                certificate, self.keypair.public, signature_hash="sha1"
            )
            self._cache[fingerprint] = cached
        return cached
