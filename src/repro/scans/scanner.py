"""The HTTPS scan simulator: sampling the world into host records.

Models what each scanning team would have collected in a given month:

- per-source coverage (slow Nmap eras miss more hosts than ZMap eras);
- the Rapid7 artifact of emitting unchained intermediate CA certificates
  alongside host certificates (and the chain-reconstruction pass that
  removes them again, Section 3.1);
- the Internet Rimon key substitution for intercepted customers;
- rare per-record bit errors that corrupt the collected modulus
  (Section 3.3.5) — each corrupted certificate is typically seen exactly
  once, mirroring the paper's observation.
"""

from __future__ import annotations

import dataclasses
import random

from repro.crypto.certs import Certificate
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.devices.population import ModelPopulation
from repro.scans.records import CertificateStore, ScanSnapshot
from repro.scans.rimon import RimonInterceptor
from repro.scans.sources import ScanSource
from repro.telemetry import get_telemetry
from repro.timeline import Month

__all__ = ["HttpsScanner", "reconstruct_chains"]

#: Probability that a Rapid7-era record for a CA-signed host also surfaces
#: the unchained intermediate certificate.
INTERMEDIATE_EMISSION_PROBABILITY = 0.5


class HttpsScanner:
    """Samples online populations into :class:`ScanSnapshot` records.

    Args:
        store: the certificate interning store shared across the study.
        rng: scan-level randomness (coverage sampling, bit errors).
        bit_error_rate: per-record probability of a corrupted modulus.
        ca_pool: the background CA pool, needed to emit Rapid7
            intermediates.
        interceptor: optional Rimon-style man in the middle.
    """

    def __init__(
        self,
        store: CertificateStore,
        rng: random.Random,
        bit_error_rate: float = 0.0,
        ca_pool: list[tuple[Certificate, RsaPrivateKey]] | None = None,
        interceptor: RimonInterceptor | None = None,
    ) -> None:
        self.store = store
        self.rng = rng
        self.bit_error_rate = bit_error_rate
        self.interceptor = interceptor
        self._ca_by_subject: dict[str, Certificate] = {
            cert.subject.rfc4514(): cert for cert, _key in (ca_pool or [])
        }
        self.bit_error_records = 0
        self.intercepted_records = 0

    def scan(
        self,
        month: Month,
        source: ScanSource,
        populations: list[tuple[ModelPopulation, bool]],
    ) -> ScanSnapshot:
        """Scan all populations; the bool flags Rimon-intercepted fleets."""
        snapshot = ScanSnapshot(source=source.name, month=month)
        rng = self.rng
        bit_errors_before = self.bit_error_records
        intercepted_before = self.intercepted_records
        hosts_online = 0
        for population, intercepted in populations:
            hosts_online += len(population.online)
            weight = population.divisor
            for device in population.online:
                if rng.random() >= source.coverage:
                    continue
                certificate = device.certificate
                if intercepted and self.interceptor is not None:
                    certificate = self.interceptor.intercept(certificate)
                    self.intercepted_records += 1
                if self.bit_error_rate and rng.random() < self.bit_error_rate:
                    certificate = self._corrupt(certificate)
                    self.bit_error_records += 1
                cert_id = self.store.intern(
                    certificate,
                    weight,
                    banner=population.model.http_content,
                    only_rsa_kex=population.model.supports_only_rsa_kex,
                )
                snapshot.append(device.ip, cert_id)
                if (
                    source.includes_unchained_intermediates
                    and not certificate.is_self_signed
                    and rng.random() < INTERMEDIATE_EMISSION_PROBABILITY
                ):
                    issuer = self._ca_by_subject.get(certificate.issuer.rfc4514())
                    if issuer is not None:
                        ca_id = self.store.intern(issuer, weight)
                        snapshot.append(device.ip, ca_id)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("scans.snapshots")
            telemetry.counter("scans.records", snapshot.host_count)
            telemetry.counter(f"scans.era.{source.name}.records", snapshot.host_count)
            telemetry.counter(
                "scans.bit_errors", self.bit_error_records - bit_errors_before
            )
            telemetry.counter(
                "scans.intercepted",
                self.intercepted_records - intercepted_before,
            )
            telemetry.gauge("scans.coverage", source.coverage)
            telemetry.gauge("scans.hosts_online", hosts_online)
        return snapshot

    def _corrupt(self, certificate: Certificate) -> Certificate:
        """Flip one random bit of the certificate's modulus in transit.

        The signature is left as collected, so the corrupted certificate
        fails verification — as the paper notes for the bit-error cases.
        """
        n = certificate.public_key.n
        bit = self.rng.randrange(max(1, n.bit_length() - 1))
        corrupted = n ^ (1 << bit)
        if corrupted < 2:
            corrupted = n ^ (1 << (n.bit_length() - 2))
        return dataclasses.replace(
            certificate,
            public_key=RsaPublicKey(corrupted, certificate.public_key.e),
        )


def reconstruct_chains(snapshot: ScanSnapshot, store: CertificateStore) -> int:
    """Strip unchained intermediates from a snapshot (Section 3.1).

    Groups records by IP and removes any CA certificate that issued another
    certificate served at the same address — "reconstructing the chains ...
    and including only the lowest certificate in the chain".

    Returns:
        Number of records removed.
    """
    by_ip: dict[int, list[tuple[int, int]]] = {}
    for position, (ip, cert_id) in enumerate(snapshot.records()):
        by_ip.setdefault(ip, []).append((position, cert_id))
    to_remove: set[int] = set()
    for _ip, entries in by_ip.items():
        if len(entries) < 2:
            continue
        issuers = {
            store[cert_id].certificate.issuer.rfc4514()
            for _pos, cert_id in entries
        }
        for position, cert_id in entries:
            certificate = store[cert_id].certificate
            if certificate.is_ca and certificate.subject.rfc4514() in issuers:
                to_remove.add(position)
    removed = snapshot.remove_indices(to_remove)
    get_telemetry().counter("scans.chain_reconstruction.removed", removed)
    return removed
