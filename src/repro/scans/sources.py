"""Scan-source eras and their methodology artifacts (Section 3.1).

Five teams scanned HTTPS over the study window, with visibly different
methodologies (the paper: "Artifacts from the different scan methodologies
used by each team are clearly visible").  Each :class:`ScanSource` models
one era's coverage and quirks; :func:`source_for_month` implements the
paper's "one representative scan per month" selection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.timeline import Month

__all__ = ["ScanSource", "SCAN_SOURCES", "source_for_month", "scan_months"]


@dataclass(frozen=True, slots=True)
class ScanSource:
    """One scanning team/methodology.

    Attributes:
        name: dataset name used throughout the paper's figures.
        first, last: months this source provides the representative scan.
        coverage: fraction of truly-online HTTPS hosts a scan observes
            (slow Nmap-based scans miss more; ZMap-era scans miss little).
        months: explicit scan months for sparse sources (None = monthly).
        includes_unchained_intermediates: Rapid7's artifact — intermediate
            CA certificates appear as standalone records and must be
            excluded by chain reconstruction (Section 3.1).
    """

    name: str
    first: Month
    last: Month
    coverage: float
    months: tuple[Month, ...] | None = None
    includes_unchained_intermediates: bool = False

    def active_in(self, month: Month) -> bool:
        """Whether this source has a scan in the given month."""
        if self.months is not None:
            return month in self.months
        return self.first <= month <= self.last


#: The five eras, in priority order for the representative-scan choice.
SCAN_SOURCES: tuple[ScanSource, ...] = (
    ScanSource(
        name="EFF",
        first=Month(2010, 7),
        last=Month(2010, 12),
        coverage=0.82,  # Nmap over 2-3 months; slow and lossy
        months=(Month(2010, 7), Month(2010, 12)),
    ),
    ScanSource(
        name="P&Q",
        first=Month(2011, 10),
        last=Month(2011, 10),
        coverage=0.90,  # five-day Nmap + custom fetcher
        months=(Month(2011, 10),),
    ),
    ScanSource(
        name="Ecosystem",
        first=Month(2012, 6),
        last=Month(2014, 1),
        coverage=0.955,  # ZMap, 18-hour scans
    ),
    ScanSource(
        name="Rapid7",
        first=Month(2014, 2),
        last=Month(2015, 6),
        coverage=0.93,
        includes_unchained_intermediates=True,
    ),
    ScanSource(
        name="Censys",
        first=Month(2015, 7),
        last=Month(2016, 5),
        coverage=0.985,  # daily ZMap with integrated toolchain
    ),
)


def source_for_month(month: Month) -> ScanSource | None:
    """The representative scan source for a month (None = no scan data)."""
    for source in SCAN_SOURCES:
        if source.active_in(month):
            return source
    return None


def scan_months(start: Month, end: Month) -> list[tuple[Month, ScanSource]]:
    """All (month, source) pairs with scan data in the window, in order."""
    out = []
    for month in Month.range(start, end):
        source = source_for_month(month)
        if source is not None:
            out.append((month, source))
    return out
