"""The key-checking service: async submission API + persistent job queue.

The paper's core finding — vulnerable keys persist in deployed devices
for *years* — implies the real-world need is **continuous** checking of
newly observed keys, not one-shot batch runs (Corrigan-Gibbs et al.
propose exactly this submission-time vetting as an online CA protocol).
This package is that serving layer, the architectural pivot from batch
CLI to traffic:

- :mod:`repro.service.server` — hand-rolled async HTTP/1.1 API on
  ``asyncio.start_server`` (submit moduli/certificates, poll status,
  fetch results, pause/resume/cancel, health, metrics);
- :mod:`repro.service.queue` — the durable FIFO job queue: every state
  transition is journalled to ``<state_dir>/journal.jsonl`` before it
  happens in memory, so SIGKILL-and-restart resumes the exact queue
  (crash-mid-claim recovery, bounded retry, idempotent re-submission);
- :mod:`repro.service.worker` — the claim/run/notify thread driving
  jobs through :class:`~repro.core.clustered.ClusteredBatchGcd` on the
  fault-tolerant substrate of :mod:`repro.faults`, with per-job
  telemetry :class:`~repro.telemetry.RunReport`\\ s and webhook
  completion callbacks (bounded retry, redelivery after restart);
- :mod:`repro.service.models` — job records, wire schemas, validation;
- :mod:`repro.service.auth` — optional static API-key gate.

Run it: ``python -m repro.service --state-dir /var/lib/repro`` (see
``docs/SERVICE.md`` for the full API reference and ops notes).
"""

from repro.service.app import ServiceApp
from repro.service.auth import ApiKeyAuth, keys_from_env
from repro.service.models import (
    JobRecord,
    JobResult,
    JobStatus,
    ServiceConfig,
    SubmissionError,
    parse_submission,
    submission_digest,
)
from repro.service.queue import InvalidTransition, JobQueue
from repro.service.server import Request, Response, ServiceServer, route
from repro.service.worker import KeyCheckRunner, ServiceWorker, WebhookNotifier

__all__ = [
    "ApiKeyAuth",
    "InvalidTransition",
    "JobQueue",
    "JobRecord",
    "JobResult",
    "JobStatus",
    "KeyCheckRunner",
    "Request",
    "Response",
    "ServiceApp",
    "ServiceConfig",
    "ServiceServer",
    "ServiceWorker",
    "SubmissionError",
    "WebhookNotifier",
    "keys_from_env",
    "parse_submission",
    "route",
    "submission_digest",
]
