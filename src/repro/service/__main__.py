"""``python -m repro.service`` — run the key-checking service.

Examples::

    # local development, open (no auth), ephemeral port published in
    # <state-dir>/endpoint.json
    python -m repro.service --state-dir /tmp/repro-svc --port 0

    # production-ish: fixed port, API keys, pooled engine
    REPRO_SERVICE_API_KEYS=s3cret python -m repro.service \\
        --state-dir /var/lib/repro --port 8080 --processes 2 --k 16

Engine flags mirror ``repro.batchgcd_cli`` (same vocabulary, same
defaults via :meth:`repro.studyconfig.StudyConfig.service`).  See
``docs/SERVICE.md`` for the API reference and operational notes.
"""

from __future__ import annotations

import argparse
import sys

from repro.service.app import ServiceApp
from repro.service.auth import keys_from_env
from repro.service.models import ServiceConfig
from repro.studyconfig import StudyConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Async weak-key checking service with a persistent job queue.",
    )
    parser.add_argument(
        "--state-dir", required=True,
        help="journal, checkpoints, and endpoint file live here",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind host")
    parser.add_argument(
        "--port", type=int, default=0,
        help="bind port (0 = ephemeral; bound port lands in endpoint.json)",
    )
    parser.add_argument(
        "--api-key", action="append", default=[],
        help="accepted X-Api-Key value (repeatable; also "
        "$REPRO_SERVICE_API_KEYS, comma-separated)",
    )
    parser.add_argument(
        "--engine-mode", choices=("clustered", "incremental"), default=None,
        help="job execution mode: independent per-job clustered runs "
        "(default) or one persistent incremental product-tree store "
        "checking every modulus against all previously ingested ones",
    )
    parser.add_argument(
        "--incremental-max-batch", type=int, default=None,
        help="incremental mode: largest job served by per-modulus store "
        "inserts; bigger jobs re-bootstrap via a clustered run",
    )
    parser.add_argument(
        "--k", type=int, default=None, help="clustered-engine subset count"
    )
    parser.add_argument(
        "--processes", type=int, default=None,
        help="engine worker processes per job (default in-process)",
    )
    parser.add_argument(
        "--scheduler", choices=("streaming", "fanout"), default=None,
        help="clustered task-graph driver",
    )
    parser.add_argument(
        "--backend", default=None, help="big-int backend (python/gmpy2)"
    )
    parser.add_argument(
        "--max-retries", type=int, default=None,
        help="engine chunk re-submissions per run",
    )
    parser.add_argument(
        "--chunk-timeout", type=float, default=None,
        help="engine per-chunk timeout, seconds",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=None,
        help="job run attempts before terminal failure",
    )
    parser.add_argument(
        "--webhook-retries", type=int, default=None,
        help="webhook delivery attempts per job",
    )
    parser.add_argument(
        "--fault-plan", default=None,
        help="deterministic fault-injection spec (chaos drills)",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    study = StudyConfig.service()
    overrides = {
        "host": args.host,
        "port": args.port,
        "api_keys": tuple(args.api_key) + keys_from_env(),
    }
    if args.engine_mode is not None:
        overrides["engine_mode"] = args.engine_mode
    if args.incremental_max_batch is not None:
        overrides["incremental_max_batch"] = args.incremental_max_batch
    if args.k is not None:
        overrides["engine_k"] = args.k
    if args.processes is not None:
        overrides["engine_processes"] = args.processes
    if args.scheduler is not None:
        overrides["engine_scheduler"] = args.scheduler
    if args.backend is not None:
        overrides["engine_backend"] = args.backend
    if args.max_retries is not None:
        overrides["engine_max_retries"] = args.max_retries
    if args.chunk_timeout is not None:
        overrides["engine_chunk_timeout"] = args.chunk_timeout
    if args.max_attempts is not None:
        overrides["max_attempts"] = args.max_attempts
    if args.webhook_retries is not None:
        overrides["webhook_max_attempts"] = args.webhook_retries
    if args.fault_plan is not None:
        overrides["fault_plan"] = args.fault_plan
    return ServiceConfig.from_study(
        study, state_dir=args.state_dir, **overrides
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = config_from_args(args)
    app = ServiceApp(config)
    print(
        f"repro.service: state_dir={config.state_dir} "
        f"engine(mode={config.engine_mode}, k={config.engine_k}, "
        f"scheduler={config.engine_scheduler}, "
        f"processes={config.engine_processes})",
        file=sys.stderr,
    )
    app.run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
