"""Process assembly: queue + worker + server as one unit.

:class:`ServiceApp` wires the three moving parts together around one
shared :class:`~repro.telemetry.Telemetry` registry and one state
directory, and offers two run modes:

- :meth:`ServiceApp.run` — the production foreground mode used by
  ``python -m repro.service``: serve until SIGTERM/SIGINT, then drain.
- :meth:`ServiceApp.start_background` / :meth:`ServiceApp.shutdown` —
  the embedded mode used by tests and the load-test benchmark: the
  asyncio loop runs on a daemon thread and the caller's thread stays
  free to act as an HTTP client.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable

from repro.service.models import JobRecord, JobResult, ServiceConfig
from repro.service.queue import JobQueue
from repro.service.server import ServiceServer
from repro.service.worker import ServiceWorker, WebhookNotifier
from repro.telemetry import Telemetry

__all__ = ["ServiceApp"]


class ServiceApp:
    """One service process: durable queue, worker thread, HTTP server.

    Args:
        config: all knobs (see :class:`~repro.service.models.ServiceConfig`).
        telemetry: service-level registry; defaults to an enabled one so
            ``GET /v1/metrics`` is never empty.
        runner: test seam — replaces the engine-backed job runner.
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        telemetry: Telemetry | None = None,
        runner: Callable[[JobRecord], tuple[JobResult, dict[str, Any]]] | None = None,
    ) -> None:
        self.config = config
        self.telemetry = telemetry or Telemetry()
        self.queue = JobQueue(
            config.state_dir,
            max_attempts=config.max_attempts,
            telemetry=self.telemetry,
        )
        self.worker = ServiceWorker(
            self.queue,
            config=config,
            runner=runner,
            notifier=WebhookNotifier(
                max_attempts=config.webhook_max_attempts,
                backoff_base=config.webhook_backoff_base,
            ),
            telemetry=self.telemetry,
        )
        self.server = ServiceServer(self.queue, config, telemetry=self.telemetry)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._shutdown_event: asyncio.Event | None = None

    @property
    def bound_port(self) -> int | None:
        return self.server.bound_port

    # -- foreground mode -------------------------------------------------

    def run(self, install_signal_handlers: bool = True) -> None:
        """Serve in the calling thread until a stop signal arrives."""
        asyncio.run(self._run_async(install_signal_handlers))

    async def _run_async(self, install_signal_handlers: bool) -> None:
        import signal

        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, stop.set)
                except (NotImplementedError, RuntimeError):
                    pass  # platform without loop signal support
        await self.server.start()
        self.worker.start()
        serving = asyncio.ensure_future(self.server.serve_forever())
        try:
            await stop.wait()
        finally:
            serving.cancel()
            await self.server.stop()
            self.worker.stop()
            self.queue.close()

    # -- embedded mode ---------------------------------------------------

    def start_background(self, timeout: float = 10.0) -> int:
        """Start serving on a daemon thread; returns the bound port."""

        def runner() -> None:
            asyncio.run(self._background_main())

        self._thread = threading.Thread(
            target=runner, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("service failed to start within timeout")
        assert self.server.bound_port is not None
        return self.server.bound_port

    async def _background_main(self) -> None:
        await self.server.start()
        self.worker.start()
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._started.set()
        serving = asyncio.ensure_future(self.server.serve_forever())
        await self._shutdown_event.wait()
        serving.cancel()
        await self.server.stop()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop the background loop, the worker, and the journal."""
        if self._loop is not None and self._shutdown_event is not None:
            self._loop.call_soon_threadsafe(self._shutdown_event.set)
        if self._thread is not None:
            self._thread.join(timeout)
        self.worker.stop()
        self.queue.close()
