"""API-key authentication for the key-checking service.

Deliberately minimal: a static key set checked with constant-time
comparison.  No keys configured means an **open** service (the local
development default); any configured key gates every ``/v1/*`` endpoint
behind the ``X-Api-Key`` request header, while the unauthenticated
``GET /healthz`` liveness probe stays open for load balancers.

Keys come from ``--api-key`` CLI flags (repeatable) or the
``REPRO_SERVICE_API_KEYS`` environment variable (comma-separated); see
:func:`keys_from_env`.
"""

from __future__ import annotations

import hmac
import os
from typing import Sequence

__all__ = ["ApiKeyAuth", "keys_from_env"]

ENV_VAR = "REPRO_SERVICE_API_KEYS"
HEADER = "x-api-key"


def keys_from_env(environ: dict[str, str] | None = None) -> tuple[str, ...]:
    """Parse ``REPRO_SERVICE_API_KEYS`` (comma-separated, blanks dropped)."""
    raw = (environ if environ is not None else os.environ).get(ENV_VAR, "")
    return tuple(key.strip() for key in raw.split(",") if key.strip())


class ApiKeyAuth:
    """Static API-key check with constant-time comparison.

    Args:
        keys: accepted key values; empty disables authentication.
    """

    def __init__(self, keys: Sequence[str] = ()) -> None:
        self._keys = tuple(key for key in keys if key)

    @property
    def enabled(self) -> bool:
        return bool(self._keys)

    def allows(self, presented: str | None) -> bool:
        """True when the request may proceed.

        Every configured key is compared (no early exit on the match) so
        the check's timing does not leak which key prefix matched.
        """
        if not self._keys:
            return True
        if presented is None:
            return False
        candidate = presented.encode("utf-8")
        allowed = False
        for key in self._keys:
            if hmac.compare_digest(candidate, key.encode("utf-8")):
                allowed = True
        return allowed
