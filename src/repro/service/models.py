"""Job model and wire schemas for the key-checking service.

The service's unit of work is the **job**: one client submission of RSA
moduli (hex strings, or certificate objects carrying a ``modulus`` field)
to be checked against each other for shared prime factors.  A
:class:`JobRecord` is the durable state of one job as it moves through
the queue lifecycle::

    queued -> running -> succeeded
       |         |          |
     paused    (retry)    failed / cancelled

Identity is content-addressed: :func:`submission_digest` hashes the exact
modulus sequence plus the webhook target, so re-submitting the same
payload is idempotent — the queue hands back the existing job instead of
enqueueing a duplicate (see :meth:`repro.service.queue.JobQueue.submit`).

Everything here is plain data: validation (:func:`parse_submission`),
JSON round-trips, and the :class:`ServiceConfig` knob set.  No I/O, no
clocks, no threads — those live in :mod:`repro.service.queue`,
:mod:`repro.service.worker`, and :mod:`repro.service.server`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, Mapping, Sequence

from repro.studyconfig import StudyConfig

__all__ = [
    "JobRecord",
    "JobResult",
    "JobStatus",
    "ServiceConfig",
    "SubmissionError",
    "parse_submission",
    "submission_digest",
]

#: Submission bounds: enough for serious batches, small enough that one
#: request cannot wedge the journal or the parser.
MAX_MODULI_PER_JOB = 10_000
MAX_MODULUS_HEX_CHARS = 4_096  # 16384-bit moduli


class JobStatus(str, Enum):
    """Lifecycle states of a job (see the state diagram in docs/SERVICE.md)."""

    QUEUED = "queued"
    PAUSED = "paused"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.CANCELLED)


class SubmissionError(ValueError):
    """A client payload failed validation (maps to HTTP 400)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True, slots=True)
class JobResult:
    """The outcome of one completed weak-key check.

    Attributes:
        divisors: sparse ``(index, divisor)`` pairs — only moduli with a
            nontrivial shared divisor appear; indices refer to the
            submitted modulus order.
        factored: recovered splits as ``(modulus, p, q)`` triples.
        moduli_checked: corpus size of the job.
    """

    divisors: tuple[tuple[int, int], ...]
    factored: tuple[tuple[int, int, int], ...]
    moduli_checked: int

    @property
    def vulnerable_count(self) -> int:
        return len(self.divisors)

    def to_dict(self) -> dict[str, Any]:
        return {
            "moduli_checked": self.moduli_checked,
            "vulnerable_count": self.vulnerable_count,
            "divisors": [[i, f"{d:x}"] for i, d in self.divisors],
            "factored": [
                {"modulus": f"{n:x}", "p": f"{p:x}", "q": f"{q:x}"}
                for n, p, q in self.factored
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobResult":
        return cls(
            divisors=tuple(
                (int(i), int(d, 16)) for i, d in payload.get("divisors", [])
            ),
            factored=tuple(
                (int(f["modulus"], 16), int(f["p"], 16), int(f["q"], 16))
                for f in payload.get("factored", [])
            ),
            moduli_checked=int(payload.get("moduli_checked", 0)),
        )


#: Webhook delivery states carried on the record (journal-replayable).
WEBHOOK_NONE = "none"  #: no webhook requested
WEBHOOK_PENDING = "pending"  #: completion recorded, delivery outstanding
WEBHOOK_DELIVERED = "delivered"
WEBHOOK_GAVE_UP = "gave_up"


@dataclass(slots=True)
class JobRecord:
    """Durable state of one job; everything the journal can reconstruct.

    Attributes:
        job_id: stable public identifier (``job-<seq>-<digest12>``).
        seq: submission order, the FIFO key (monotonic per state dir).
        digest: content identity from :func:`submission_digest`.
        moduli: the submitted corpus, in order.
        webhook_url: completion callback target (None = poll only).
        status: current lifecycle state.
        attempts: run attempts consumed (claims, including crashed ones).
        error: terminal failure description (``status == failed`` only).
        result: outcome (``status == succeeded`` only).
        report: per-job telemetry RunReport dict (succeeded jobs).
        webhook_state: one of the ``WEBHOOK_*`` constants.
        webhook_attempts: delivery attempts consumed.
    """

    job_id: str
    seq: int
    digest: str
    moduli: list[int]
    webhook_url: str | None = None
    status: JobStatus = JobStatus.QUEUED
    attempts: int = 0
    error: str | None = None
    result: JobResult | None = None
    report: dict[str, Any] | None = None
    webhook_state: str = WEBHOOK_NONE
    webhook_attempts: int = 0

    def summary(self) -> dict[str, Any]:
        """The compact listing row (``GET /v1/jobs``)."""
        return {
            "job_id": self.job_id,
            "status": self.status.value,
            "moduli": len(self.moduli),
            "attempts": self.attempts,
            "webhook": self.webhook_state,
        }

    def to_public_dict(self, include_report: bool = False) -> dict[str, Any]:
        """The full job view (``GET /v1/jobs/<job_id>``)."""
        payload: dict[str, Any] = {
            "job_id": self.job_id,
            "digest": self.digest,
            "status": self.status.value,
            "moduli": len(self.moduli),
            "attempts": self.attempts,
            "webhook_url": self.webhook_url,
            "webhook_state": self.webhook_state,
            "webhook_attempts": self.webhook_attempts,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.result is not None:
            payload["result"] = self.result.to_dict()
        if include_report and self.report is not None:
            payload["report"] = self.report
        return payload


def submission_digest(moduli: Sequence[int], webhook_url: str | None) -> str:
    """Content identity of a submission: exact modulus order + callback.

    Order matters (divisor indices align to it) and so does the webhook
    target (the same corpus notified elsewhere is a distinct job).
    """
    h = hashlib.sha256()
    for n in moduli:
        h.update(f"{n:x}\n".encode("ascii"))
    h.update(b"webhook:")
    h.update((webhook_url or "").encode("utf-8"))
    return h.hexdigest()


def job_id_for(seq: int, digest: str) -> str:
    """Public job identifier: ordering prefix + content suffix."""
    return f"job-{seq:08d}-{digest[:12]}"


def _parse_modulus(raw: Any, position: int) -> int:
    if not isinstance(raw, str):
        raise SubmissionError(
            "bad_modulus", f"moduli[{position}] must be a hex string"
        )
    text = raw.strip().lower().removeprefix("0x")
    if not text or len(text) > MAX_MODULUS_HEX_CHARS:
        raise SubmissionError(
            "bad_modulus",
            f"moduli[{position}] empty or longer than "
            f"{MAX_MODULUS_HEX_CHARS} hex chars",
        )
    try:
        value = int(text, 16)
    except ValueError:
        raise SubmissionError(
            "bad_modulus", f"moduli[{position}] is not valid hex"
        ) from None
    if value < 2:
        raise SubmissionError(
            "bad_modulus", f"moduli[{position}] must be >= 2"
        )
    return value


def parse_submission(payload: Any) -> tuple[list[int], str | None]:
    """Validate a ``POST /v1/jobs`` body into ``(moduli, webhook_url)``.

    Accepted shapes (combinable; at least one modulus required):

    - ``{"moduli": ["c0ffee...", ...]}`` — hex modulus strings;
    - ``{"certificates": [{"modulus": "c0ffee..."}, ...]}`` — certificate
      objects as exported by :mod:`repro.crypto.certs` (any mapping with
      a hex ``modulus`` field is accepted);
    - ``"webhook_url": "http://..."`` — optional completion callback.

    Raises:
        SubmissionError: with a stable ``code`` for the HTTP error body.
    """
    if not isinstance(payload, Mapping):
        raise SubmissionError("bad_request", "body must be a JSON object")
    moduli: list[int] = []
    raw_moduli = payload.get("moduli", [])
    if not isinstance(raw_moduli, list):
        raise SubmissionError("bad_request", "'moduli' must be a list")
    for position, raw in enumerate(raw_moduli):
        moduli.append(_parse_modulus(raw, position))
    raw_certs = payload.get("certificates", [])
    if not isinstance(raw_certs, list):
        raise SubmissionError("bad_request", "'certificates' must be a list")
    for position, cert in enumerate(raw_certs):
        if not isinstance(cert, Mapping) or "modulus" not in cert:
            raise SubmissionError(
                "bad_certificate",
                f"certificates[{position}] must be an object with a "
                "'modulus' hex field",
            )
        moduli.append(_parse_modulus(cert["modulus"], len(moduli)))
    if not moduli:
        raise SubmissionError(
            "empty_submission", "submission carries no moduli or certificates"
        )
    if len(moduli) > MAX_MODULI_PER_JOB:
        raise SubmissionError(
            "too_many_moduli",
            f"submission exceeds {MAX_MODULI_PER_JOB} moduli",
        )
    webhook_url = payload.get("webhook_url")
    if webhook_url is not None:
        if not isinstance(webhook_url, str) or not webhook_url.startswith(
            ("http://", "https://")
        ):
            raise SubmissionError(
                "bad_webhook", "'webhook_url' must be an http(s) URL"
            )
    return moduli, webhook_url


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Every knob of one service process.

    Engine fields default from :meth:`repro.studyconfig.StudyConfig.service`
    so the serving layer and the batch CLIs share one tuning vocabulary.

    Attributes:
        state_dir: journal + checkpoints + endpoint file live here.
        host, port: bind address (``port=0`` picks a free port; the bound
            port is published in ``<state_dir>/endpoint.json``).
        api_keys: accepted ``X-Api-Key`` values (empty = open service).
        max_body_bytes: request body bound (HTTP 413 above it).
        engine_mode: job execution mode — ``"clustered"`` (the default:
            each job is an independent full engine run over its own
            corpus) or ``"incremental"`` (jobs accumulate into one
            persistent product-tree store under
            ``<state_dir>/incremental-store`` and every modulus is also
            checked against all previously ingested moduli; small jobs
            are served by per-modulus store inserts, bulk jobs by a
            clustered run that re-bootstraps the store).
        incremental_max_batch: under ``engine_mode="incremental"``, the
            largest job served by per-modulus inserts; bigger jobs take
            the bulk-rebootstrap path.
        engine_k: subset count for the clustered engine (capped at the
            job's corpus size).
        engine_processes: worker processes per job (None = in-process).
        engine_scheduler: clustered task-graph driver.
        engine_backend: big-int backend name (None = active default).
        engine_max_retries: chunk re-submissions inside one engine run.
        engine_chunk_timeout: per-chunk timeout inside one engine run.
        max_attempts: job run attempts (claims) before the job fails —
            this is the *outer* retry loop around whole engine runs.
        webhook_max_attempts: completion callback delivery attempts.
        webhook_backoff_base: first webhook retry delay, seconds.
        fault_plan: deterministic fault-injection spec forwarded to the
            engine (tests and chaos drills only).
    """

    state_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    api_keys: tuple[str, ...] = ()
    max_body_bytes: int = 8 * 1024 * 1024
    engine_mode: str = "clustered"
    incremental_max_batch: int = 64
    engine_k: int = 4
    engine_processes: int | None = None
    engine_scheduler: str = "streaming"
    engine_backend: str | None = None
    engine_max_retries: int = 2
    engine_chunk_timeout: float | None = None
    max_attempts: int = 3
    webhook_max_attempts: int = 3
    webhook_backoff_base: float = 0.05
    fault_plan: str | None = None

    @classmethod
    def from_study(cls, study: StudyConfig, *, state_dir: str, **overrides: Any) -> "ServiceConfig":
        """Engine knobs from a :class:`StudyConfig`, service knobs on top."""
        config = cls(
            state_dir=state_dir,
            engine_mode=(
                "incremental"
                if study.batchgcd_engine == "incremental"
                else "clustered"
            ),
            engine_k=study.batchgcd_k,
            engine_processes=study.batchgcd_processes,
            engine_scheduler=study.batchgcd_scheduler,
            engine_backend=study.batchgcd_backend,
            engine_max_retries=study.batchgcd_max_retries,
            engine_chunk_timeout=study.batchgcd_chunk_timeout,
            fault_plan=study.batchgcd_fault_plan,
        )
        return replace(config, **overrides) if overrides else config
