"""Persistent job queue: an append-only journal plus in-memory indexes.

Durability model.  Every state transition of every job is one JSON line
appended to ``<state_dir>/journal.jsonl`` *before* the in-memory state
changes.  Restart replays the journal in order and reconstructs the
exact queue — so a SIGKILL at any instant loses at most the work of the
in-flight engine run (which the engine's own
:class:`~repro.faults.checkpoint.CheckpointStore` checkpoints
separately).  A torn final line (kill mid-append) is detected and
ignored.

Crash-mid-claim recovery.  A ``claimed`` event with no later terminal
event means the process died while running the job.  Replay counts that
claim as a consumed attempt and re-queues the job; a job whose claims
already reached ``max_attempts`` is declared failed instead of
crash-looping forever.

Idempotent submission.  Jobs are content-addressed by
:func:`~repro.service.models.submission_digest`; re-submitting an
identical payload returns the existing live job instead of appending a
duplicate.  A *cancelled* or *failed* duplicate re-enqueues (clients may
legitimately retry).

Ordering.  ``claim`` hands out runnable jobs strictly by submission
sequence (FIFO).  Per-job ``pause`` removes a job from the runnable set
without losing its place: on ``resume`` it re-enters at its original
sequence, ahead of anything submitted after it.  ``pause_all`` /
``resume_all`` gate the whole queue without touching per-job state.

Telemetry: replay records a ``service.journal.replay`` span annotated
with events and jobs restored; mutations keep the
``service.queue.depth`` gauge current.  All public methods are
thread-safe (the HTTP loop and the worker thread share one instance);
:meth:`wait_for_work` lets the worker block on the internal condition
instead of polling.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Iterator

from repro.faults.fsio import fsync_file
from repro.service.models import (
    WEBHOOK_DELIVERED,
    WEBHOOK_GAVE_UP,
    WEBHOOK_NONE,
    WEBHOOK_PENDING,
    JobRecord,
    JobResult,
    JobStatus,
    SubmissionError,
    job_id_for,
    submission_digest,
)
from repro.telemetry import Telemetry

__all__ = ["InvalidTransition", "JobQueue"]

_JOURNAL = "journal.jsonl"
_SCHEMA_VERSION = 1


class InvalidTransition(RuntimeError):
    """A lifecycle operation does not apply to the job's current state."""

    def __init__(self, job_id: str, operation: str, status: JobStatus) -> None:
        super().__init__(
            f"cannot {operation} job {job_id} in state {status.value!r}"
        )
        self.job_id = job_id
        self.operation = operation
        self.status = status


class JobQueue:
    """The durable queue (see module doc for semantics).

    Args:
        state_dir: directory holding ``journal.jsonl`` (created eagerly).
        max_attempts: run attempts (claims) per job before terminal failure.
        telemetry: metrics sink; defaults to a disabled registry so the
            queue costs nothing when unobserved.
    """

    def __init__(
        self,
        state_dir: str | Path,
        *,
        max_attempts: int = 3,
        telemetry: Telemetry | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.state_dir = Path(state_dir)
        self.max_attempts = max_attempts
        self._telemetry = telemetry or Telemetry(enabled=False)
        self._lock = threading.Condition()
        self._jobs: dict[str, JobRecord] = {}
        self._by_digest: dict[str, str] = {}
        self._next_seq = 0
        self._queue_paused = False
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._journal_path = self.state_dir / _JOURNAL
        self._replay()
        self._journal_file = self._journal_path.open("a", encoding="utf-8")
        self._terminate_torn_tail()

    def _terminate_torn_tail(self) -> None:
        """Newline-terminate a torn final line so new appends stay parseable.

        A kill mid-append can leave the journal without a trailing
        newline; appending straight after it would fuse the next event
        onto the torn fragment and lose *that* event too.  Replay
        already skips the unparseable fragment either way.
        """
        try:
            with self._journal_path.open("rb") as fh:
                fh.seek(0, 2)
                if fh.tell() == 0:
                    return
                fh.seek(-1, 2)
                torn = fh.read(1) != b"\n"
        except OSError:
            return
        if torn:
            self._journal_file.write("\n")
            fsync_file(self._journal_file)

    # -- journal ---------------------------------------------------------

    def _append(self, event: str, **payload: Any) -> None:
        """Write one event line; callers hold the lock."""
        record = {"v": _SCHEMA_VERSION, "event": event, **payload}
        self._journal_file.write(json.dumps(record, sort_keys=True) + "\n")
        # flush alone only survives SIGKILL; the fsync makes the journal
        # the write-ahead authority across power loss too.
        fsync_file(self._journal_file)

    def _read_journal(self) -> Iterator[dict[str, Any]]:
        try:
            text = self._journal_path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail from a kill mid-append
            if isinstance(record, dict) and "event" in record:
                yield record

    def _replay(self) -> None:
        events = 0
        claimed_open: dict[str, int] = {}  # job_id -> open claim count
        with self._telemetry.span("service.journal.replay"):
            for record in self._read_journal():
                events += 1
                self._apply(record, claimed_open)
            # Jobs claimed but never terminated died with the process.
            for job_id in claimed_open:
                job = self._jobs.get(job_id)
                if job is None or job.status is not JobStatus.RUNNING:
                    continue
                if job.attempts >= self.max_attempts:
                    job.status = JobStatus.FAILED
                    job.error = (
                        f"crashed {job.attempts} time(s) mid-run; "
                        "attempts exhausted"
                    )
                else:
                    job.status = JobStatus.QUEUED
            self._telemetry.annotate(events=events, jobs=len(self._jobs))
        self._update_depth_gauge()

    def _apply(self, record: dict[str, Any], claimed_open: dict[str, int]) -> None:
        event = record["event"]
        job_id = record.get("job")
        if event == "submitted":
            moduli = [int(m, 16) for m in record["moduli"]]
            job = JobRecord(
                job_id=record["job"],
                seq=int(record["seq"]),
                digest=record["digest"],
                moduli=moduli,
                webhook_url=record.get("webhook_url"),
                webhook_state=(
                    WEBHOOK_NONE if record.get("webhook_url") is None else WEBHOOK_PENDING
                ),
            )
            self._jobs[job.job_id] = job
            self._by_digest[job.digest] = job.job_id
            self._next_seq = max(self._next_seq, job.seq + 1)
            return
        if event == "queue_paused":
            self._queue_paused = True
            return
        if event == "queue_resumed":
            self._queue_paused = False
            return
        job = self._jobs.get(job_id)
        if job is None:
            return  # journal references a job whose submission line tore
        if event == "claimed":
            job.status = JobStatus.RUNNING
            job.attempts = int(record["attempt"])
            claimed_open[job.job_id] = claimed_open.get(job.job_id, 0) + 1
        elif event == "completed":
            job.status = JobStatus.SUCCEEDED
            job.result = JobResult.from_dict(record["result"])
            job.report = record.get("report")
            claimed_open.pop(job.job_id, None)
        elif event == "failed_attempt":
            job.status = JobStatus.QUEUED
            job.error = record.get("error")
            claimed_open.pop(job.job_id, None)
        elif event == "failed":
            job.status = JobStatus.FAILED
            job.error = record.get("error")
            claimed_open.pop(job.job_id, None)
        elif event == "cancelled":
            job.status = JobStatus.CANCELLED
            claimed_open.pop(job.job_id, None)
        elif event == "paused":
            job.status = JobStatus.PAUSED
        elif event == "resumed":
            job.status = JobStatus.QUEUED
        elif event == "webhook_attempt":
            job.webhook_attempts = int(record["attempt"])
        elif event == "webhook_delivered":
            job.webhook_state = WEBHOOK_DELIVERED
        elif event == "webhook_gave_up":
            job.webhook_state = WEBHOOK_GAVE_UP

    # -- submission ------------------------------------------------------

    def submit(
        self, moduli: list[int], webhook_url: str | None = None
    ) -> tuple[JobRecord, bool]:
        """Enqueue a submission; returns ``(job, created)``.

        ``created`` is False when an identical live submission already
        exists (idempotent replay); terminal-failed or cancelled
        duplicates re-enqueue as a fresh job.
        """
        if not moduli:
            raise SubmissionError("empty_submission", "no moduli to check")
        digest = submission_digest(moduli, webhook_url)
        with self._lock:
            existing_id = self._by_digest.get(digest)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if existing.status not in (JobStatus.FAILED, JobStatus.CANCELLED):
                    return existing, False
            seq = self._next_seq
            self._next_seq += 1
            job_id = job_id_for(seq, digest)
            self._append(
                "submitted",
                job=job_id,
                seq=seq,
                digest=digest,
                moduli=[f"{n:x}" for n in moduli],
                webhook_url=webhook_url,
            )
            job = JobRecord(
                job_id=job_id,
                seq=seq,
                digest=digest,
                moduli=list(moduli),
                webhook_url=webhook_url,
                webhook_state=WEBHOOK_NONE if webhook_url is None else WEBHOOK_PENDING,
            )
            self._jobs[job_id] = job
            self._by_digest[digest] = job_id
            self._telemetry.counter("service.jobs.submitted")
            self._update_depth_gauge()
            self._lock.notify_all()
            return job, True

    # -- worker side -----------------------------------------------------

    def claim(self) -> JobRecord | None:
        """Hand out the oldest runnable job, consuming one attempt."""
        with self._lock:
            job = self._next_runnable()
            if job is None:
                return None
            self._append("claimed", job=job.job_id, attempt=job.attempts + 1)
            job.status = JobStatus.RUNNING
            job.attempts += 1
            self._update_depth_gauge()
            return job

    def _next_runnable(self) -> JobRecord | None:
        if self._queue_paused:
            return None
        runnable = [
            job for job in self._jobs.values() if job.status is JobStatus.QUEUED
        ]
        if not runnable:
            return None
        return min(runnable, key=lambda job: job.seq)

    def wait_for_work(self, timeout: float) -> bool:
        """Block until a job may be runnable (or ``timeout`` elapses)."""
        with self._lock:
            if self._next_runnable() is not None:
                return True
            return self._lock.wait(timeout)

    def complete(
        self,
        job_id: str,
        result: JobResult,
        report: dict[str, Any] | None = None,
    ) -> JobRecord:
        """Record a successful run (worker only; job must be running)."""
        with self._lock:
            job = self._require(job_id)
            if job.status is not JobStatus.RUNNING:
                raise InvalidTransition(job_id, "complete", job.status)
            self._append(
                "completed", job=job_id, result=result.to_dict(), report=report
            )
            job.status = JobStatus.SUCCEEDED
            job.result = result
            job.report = report
            job.error = None
            self._telemetry.counter("service.jobs.completed")
            self._update_depth_gauge()
            return job

    def fail(self, job_id: str, error: str) -> tuple[JobRecord, bool]:
        """Record a failed run; returns ``(job, requeued)``.

        Requeues while attempts remain, otherwise the job fails
        terminally (and its webhook, if any, reports the failure).
        """
        with self._lock:
            job = self._require(job_id)
            if job.status is not JobStatus.RUNNING:
                raise InvalidTransition(job_id, "fail", job.status)
            if job.attempts < self.max_attempts:
                self._append("failed_attempt", job=job_id, error=error)
                job.status = JobStatus.QUEUED
                job.error = error
                self._telemetry.counter("service.jobs.retried")
                self._update_depth_gauge()
                self._lock.notify_all()
                return job, True
            self._append("failed", job=job_id, error=error)
            job.status = JobStatus.FAILED
            job.error = error
            self._telemetry.counter("service.jobs.failed")
            self._update_depth_gauge()
            return job, False

    # -- lifecycle controls ---------------------------------------------

    def pause(self, job_id: str) -> JobRecord:
        """Remove a queued job from the runnable set (keeps its seq)."""
        with self._lock:
            job = self._require(job_id)
            if job.status is not JobStatus.QUEUED:
                raise InvalidTransition(job_id, "pause", job.status)
            self._append("paused", job=job_id)
            job.status = JobStatus.PAUSED
            self._update_depth_gauge()
            return job

    def resume(self, job_id: str) -> JobRecord:
        """Return a paused job to the runnable set at its original seq."""
        with self._lock:
            job = self._require(job_id)
            if job.status is not JobStatus.PAUSED:
                raise InvalidTransition(job_id, "resume", job.status)
            self._append("resumed", job=job_id)
            job.status = JobStatus.QUEUED
            self._update_depth_gauge()
            self._lock.notify_all()
            return job

    def cancel(self, job_id: str) -> JobRecord:
        """Terminally cancel a job that has not started (or is paused)."""
        with self._lock:
            job = self._require(job_id)
            if job.status not in (JobStatus.QUEUED, JobStatus.PAUSED):
                raise InvalidTransition(job_id, "cancel", job.status)
            self._append("cancelled", job=job_id)
            job.status = JobStatus.CANCELLED
            self._telemetry.counter("service.jobs.cancelled")
            self._update_depth_gauge()
            return job

    def pause_all(self) -> None:
        """Stop handing out jobs; running jobs finish, nothing new starts."""
        with self._lock:
            if not self._queue_paused:
                self._append("queue_paused")
                self._queue_paused = True

    def resume_all(self) -> None:
        with self._lock:
            if self._queue_paused:
                self._append("queue_resumed")
                self._queue_paused = False
                self._lock.notify_all()

    # -- webhook bookkeeping --------------------------------------------

    def record_webhook_attempt(self, job_id: str, ok: bool) -> JobRecord:
        """Count one delivery attempt; marks delivered/gave-up terminally."""
        with self._lock:
            job = self._require(job_id)
            attempt = job.webhook_attempts + 1
            self._append("webhook_attempt", job=job_id, attempt=attempt, ok=ok)
            job.webhook_attempts = attempt
            self._telemetry.counter("service.webhook.attempts")
            if ok:
                self._append("webhook_delivered", job=job_id)
                job.webhook_state = WEBHOOK_DELIVERED
            else:
                self._telemetry.counter("service.webhook.failures")
            return job

    def record_webhook_gave_up(self, job_id: str) -> JobRecord:
        with self._lock:
            job = self._require(job_id)
            self._append("webhook_gave_up", job=job_id)
            job.webhook_state = WEBHOOK_GAVE_UP
            return job

    def pending_webhooks(self) -> list[JobRecord]:
        """Terminal jobs whose completion callback is still undelivered."""
        with self._lock:
            return [
                job
                for job in sorted(self._jobs.values(), key=lambda j: j.seq)
                if job.webhook_state == WEBHOOK_PENDING and job.status.is_terminal
            ]

    # -- queries ---------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> list[JobRecord]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.seq)

    def stats(self) -> dict[str, Any]:
        """Counts by status plus the queue-level pause flag."""
        with self._lock:
            by_status = {status.value: 0 for status in JobStatus}
            for job in self._jobs.values():
                by_status[job.status.value] += 1
            return {
                "jobs": len(self._jobs),
                "by_status": by_status,
                "paused": self._queue_paused,
            }

    @property
    def paused(self) -> bool:
        with self._lock:
            return self._queue_paused

    def close(self) -> None:
        with self._lock:
            self._journal_file.close()

    # -- internals -------------------------------------------------------

    def _require(self, job_id: str) -> JobRecord:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        return job

    def _update_depth_gauge(self) -> None:
        depth = sum(
            1 for job in self._jobs.values() if job.status is JobStatus.QUEUED
        )
        self._telemetry.gauge("service.queue.depth", depth)
