"""The async HTTP front end: hand-rolled HTTP/1.1 on ``asyncio.start_server``.

No framework, no ``http.server`` — one coroutine per connection parses
requests (request line, headers, ``Content-Length`` body; keep-alive
supported), dispatches through a declarative route table, and writes
JSON responses.  Read-only queue queries are lock-guarded in-memory
lookups and run inline on the event loop; every *mutating* queue call
appends to the journal (a synchronous ``write``+``flush``), so handlers
offload those through :func:`asyncio.to_thread` — reprolint's ASY001
colors the call graph from every ``async def`` and fails CI if journal
I/O ever becomes reachable from the loop again.  The *engine* work
happens on the :class:`~repro.service.worker.ServiceWorker` thread,
never on the loop.

Routes are registered with the :func:`route` decorator; the table is the
single source of truth for dispatch **and** for the documentation
contract — reprolint's XSVC001 rule cross-checks every registration here
against the endpoint catalog in ``docs/SERVICE.md`` (both directions),
the same way XTEL001 polices the metric catalog.

Error model: every non-2xx body is ``{"error": <stable code>,
"message": <human text>}`` — codes are part of the API (documented in
docs/SERVICE.md): ``unauthorized`` 401, ``not_found`` 404,
``method_not_allowed`` 405, ``conflict``/``result_not_ready`` 409,
``payload_too_large`` 413, and the submission validation codes from
:mod:`repro.service.models` at 400.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Awaitable, Callable
from urllib.parse import urlsplit

from repro.faults.fsio import atomic_write_text
from repro.service.auth import HEADER, ApiKeyAuth
from repro.service.models import ServiceConfig, SubmissionError, parse_submission
from repro.service.queue import InvalidTransition, JobQueue
from repro.telemetry import Telemetry

__all__ = ["Request", "Response", "ServiceServer", "route"]

_MAX_HEADER_BYTES = 32 * 1024
_PLACEHOLDER = re.compile(r"<([a-z_]+)>")


@dataclass(frozen=True, slots=True)
class Route:
    """One registered endpoint: method + pattern + handler method name."""

    method: str
    pattern: str
    handler: str
    regex: re.Pattern[str]


_ROUTES: list[Route] = []


def route(method: str, pattern: str):
    """Register a :class:`ServiceServer` method as an endpoint handler.

    ``pattern`` segments like ``<job_id>`` capture path parameters (no
    slashes) and are handed to the handler as keyword arguments.
    """

    regex = re.compile(
        "^" + _PLACEHOLDER.sub(r"(?P<\1>[^/]+)", pattern) + "$"
    )

    def wrap(fn):
        _ROUTES.append(Route(method.upper(), pattern, fn.__name__, regex))
        return fn

    return wrap


def registered_routes() -> tuple[Route, ...]:
    """The route table (dispatch order = registration order)."""
    return tuple(_ROUTES)


@dataclass(slots=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: str
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        """Decode the body as JSON (:class:`SubmissionError` on garbage)."""
        if not self.body:
            raise SubmissionError("bad_request", "request body is empty")
        try:
            return json.loads(self.body)
        except ValueError:
            raise SubmissionError(
                "bad_request", "request body is not valid JSON"
            ) from None


@dataclass(slots=True)
class Response:
    """One JSON response ready for the wire."""

    status: int
    payload: Any

    _REASONS = {
        200: "OK", 201: "Created", 202: "Accepted", 400: "Bad Request",
        401: "Unauthorized", 404: "Not Found", 405: "Method Not Allowed",
        409: "Conflict", 413: "Payload Too Large",
        500: "Internal Server Error",
    }

    def encode(self, keep_alive: bool) -> bytes:
        body = json.dumps(self.payload, sort_keys=True).encode("utf-8")
        reason = self._REASONS.get(self.status, "Unknown")
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        return head.encode("ascii") + body


def _error(status: int, code: str, message: str) -> Response:
    return Response(status, {"error": code, "message": message})


class _BadRequestLine(Exception):
    """The connection sent something that is not parseable HTTP/1.1."""


class ServiceServer:
    """The serving layer: queue + auth + telemetry behind asyncio sockets.

    Args:
        queue: the shared durable job queue.
        config: bind address, body bounds, API keys.
        telemetry: service-level metrics sink (requests, errors,
            latency); per-job engine telemetry is separate (worker).
    """

    def __init__(
        self,
        queue: JobQueue,
        config: ServiceConfig,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._queue = queue
        self._config = config
        self._auth = ApiKeyAuth(config.api_keys)
        self._telemetry = telemetry or Telemetry(enabled=False)
        self._server: asyncio.AbstractServer | None = None
        self.bound_port: int | None = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind, publish ``endpoint.json``, and begin accepting."""
        self._server = await asyncio.start_server(
            self._serve_connection, self._config.host, self._config.port
        )
        sockets = self._server.sockets or []
        self.bound_port = sockets[0].getsockname()[1] if sockets else None
        await asyncio.to_thread(self._write_endpoint_file)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        # Claim the server in one synchronous swap so two concurrent
        # stop() calls cannot interleave across the await below.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    def _write_endpoint_file(self) -> None:
        """Atomically publish the bound address for drills and clients."""
        state_dir = Path(self._config.state_dir)
        state_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            state_dir / "endpoint.json",
            json.dumps(
                {
                    "host": self._config.host,
                    "port": self.bound_port,
                    "pid": os.getpid(),
                },
                sort_keys=True,
            ),
        )

    # -- connection handling --------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequestLine:
                    break
                if request is None:
                    break  # clean EOF between requests
                keep_alive = (
                    request.headers.get("connection", "keep-alive").lower()
                    != "close"
                    # An oversized body is never read off the socket, so the
                    # stream is unparseable past this request: force close.
                    and "x-repro-body-overflow" not in request.headers
                )
                response = await self._dispatch(request)
                writer.write(response.encode(keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished mid-exchange; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Request | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close before the next request
            raise _BadRequestLine() from None
        except asyncio.LimitOverrunError:
            raise _BadRequestLine() from None
        if len(head) > _MAX_HEADER_BYTES:
            raise _BadRequestLine()
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequestLine()
        method, target, _ = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadRequestLine() from None
        if length < 0 or length > self._config.max_body_bytes:
            # Read nothing further; the dispatch layer answers 413.
            body = b""
            headers["x-repro-body-overflow"] = str(length)
        else:
            body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        return Request(
            method=method.upper(),
            path=split.path,
            query=split.query,
            headers=headers,
            body=body,
        )

    # -- dispatch --------------------------------------------------------

    async def _dispatch(self, request: Request) -> Response:
        telemetry = self._telemetry
        clock = telemetry.clock
        started = clock.wall()
        telemetry.counter("service.http.requests")
        try:
            response = await self._route(request)
        except SubmissionError as exc:
            response = _error(400, exc.code, exc.message)
        except InvalidTransition as exc:
            response = _error(409, "conflict", str(exc))
        except KeyError:
            response = _error(404, "not_found", "no such job")
        except Exception as exc:  # noqa: BLE001 — the loop must not die
            response = _error(
                500, "internal_error", f"{type(exc).__name__}: {exc}"
            )
        if response.status >= 400:
            telemetry.counter("service.http.errors")
        telemetry.observe("service.http.request_seconds", clock.wall() - started)
        return response

    async def _route(self, request: Request) -> Response:
        if "x-repro-body-overflow" in request.headers:
            return _error(
                413,
                "payload_too_large",
                f"body exceeds {self._config.max_body_bytes} bytes",
            )
        matched_path = False
        for entry in registered_routes():
            match = entry.regex.match(request.path)
            if match is None:
                continue
            matched_path = True
            if entry.method != request.method:
                continue
            if request.path.startswith("/v1/") and not self._auth.allows(
                request.headers.get(HEADER)
            ):
                return _error(
                    401, "unauthorized", f"missing or invalid {HEADER} header"
                )
            handler: Callable[..., Awaitable[Response]] = getattr(
                self, entry.handler
            )
            return await handler(request, **match.groupdict())
        if matched_path:
            return _error(
                405, "method_not_allowed", f"{request.method} not allowed here"
            )
        return _error(404, "not_found", f"no route for {request.path}")

    # -- handlers --------------------------------------------------------

    @route("GET", "/healthz")
    async def health(self, request: Request) -> Response:
        stats = self._queue.stats()
        return Response(200, {"ok": True, "queue": stats})

    @route("GET", "/v1/metrics")
    async def metrics(self, request: Request) -> Response:
        return Response(200, self._telemetry.report().to_dict())

    @route("POST", "/v1/jobs")
    async def submit_job(self, request: Request) -> Response:
        moduli, webhook_url = parse_submission(request.json())
        # Mutations append to the journal (synchronous write+flush), so
        # they run on a worker thread, never on the event loop (ASY001).
        job, created = await asyncio.to_thread(
            self._queue.submit, moduli, webhook_url
        )
        payload = job.to_public_dict()
        payload["created"] = created
        return Response(202 if created else 200, payload)

    @route("GET", "/v1/jobs")
    async def list_jobs(self, request: Request) -> Response:
        jobs = [job.summary() for job in self._queue.list_jobs()]
        return Response(200, {"jobs": jobs})

    @route("GET", "/v1/jobs/<job_id>")
    async def get_job(self, request: Request, job_id: str) -> Response:
        job = self._queue.get(job_id)
        if job is None:
            return _error(404, "not_found", f"no job {job_id}")
        return Response(200, job.to_public_dict())

    @route("GET", "/v1/jobs/<job_id>/status")
    async def get_status(self, request: Request, job_id: str) -> Response:
        job = self._queue.get(job_id)
        if job is None:
            return _error(404, "not_found", f"no job {job_id}")
        payload = job.to_public_dict(include_report=True)
        payload.pop("result", None)  # status stays light; result has its own endpoint
        return Response(200, payload)

    @route("GET", "/v1/jobs/<job_id>/result")
    async def get_result(self, request: Request, job_id: str) -> Response:
        job = self._queue.get(job_id)
        if job is None:
            return _error(404, "not_found", f"no job {job_id}")
        if job.result is None:
            return _error(
                409,
                "result_not_ready",
                f"job {job_id} is {job.status.value}; poll "
                "/v1/jobs/<job_id>/status until succeeded",
            )
        return Response(200, {"job_id": job.job_id, **job.result.to_dict()})

    @route("POST", "/v1/jobs/<job_id>/pause")
    async def pause_job(self, request: Request, job_id: str) -> Response:
        job = await asyncio.to_thread(self._queue.pause, job_id)
        return Response(200, job.to_public_dict())

    @route("POST", "/v1/jobs/<job_id>/resume")
    async def resume_job(self, request: Request, job_id: str) -> Response:
        job = await asyncio.to_thread(self._queue.resume, job_id)
        return Response(200, job.to_public_dict())

    @route("POST", "/v1/jobs/<job_id>/cancel")
    async def cancel_job(self, request: Request, job_id: str) -> Response:
        job = await asyncio.to_thread(self._queue.cancel, job_id)
        return Response(200, job.to_public_dict())

    @route("GET", "/v1/queue")
    async def queue_stats(self, request: Request) -> Response:
        return Response(200, self._queue.stats())

    @route("POST", "/v1/queue/pause")
    async def pause_queue(self, request: Request) -> Response:
        await asyncio.to_thread(self._queue.pause_all)
        return Response(200, self._queue.stats())

    @route("POST", "/v1/queue/resume")
    async def resume_queue(self, request: Request) -> Response:
        await asyncio.to_thread(self._queue.resume_all)
        return Response(200, self._queue.stats())
