"""The service's background worker: claim, run, notify — forever.

One :class:`ServiceWorker` thread drains the :class:`~repro.service.queue.JobQueue`:

1. **claim** the oldest runnable job (blocking on the queue's condition
   variable, not polling);
2. **run** it through the :class:`KeyCheckRunner` — a
   :class:`~repro.core.clustered.ClusteredBatchGcd` engine run whose
   worker substrate is the fault-tolerant machinery of
   :mod:`repro.faults` (bounded chunk retry, pool rebuild, graceful
   degradation) with a per-job
   :class:`~repro.faults.checkpoint.CheckpointStore` under
   ``<state_dir>/checkpoints/<job_id>/``, so a SIGKILL mid-run resumes
   the *same engine computation* on restart instead of recomputing;
3. **record** the outcome — the run executes under a private
   :class:`~repro.telemetry.Telemetry` registry whose
   :class:`~repro.telemetry.RunReport` is journalled with the job and
   served at ``GET /v1/jobs/<job_id>/status``;
4. **notify** the webhook, if the job carries one, with bounded retry
   and exponential backoff (:class:`WebhookNotifier`); delivery attempts
   are journalled, so undelivered callbacks survive a restart and are
   re-driven on startup.

A run that raises consumes one of the job's ``max_attempts`` and the job
re-queues (the queue's outer retry loop); exhausted attempts fail the
job terminally, which *also* triggers the webhook — clients learn about
permanent failures, not just successes.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Callable

from repro.core.clustered import ClusteredBatchGcd
from repro.service.models import JobRecord, JobResult, ServiceConfig
from repro.service.queue import JobQueue
from repro.telemetry import Telemetry, use_telemetry

__all__ = ["KeyCheckRunner", "ServiceWorker", "WebhookNotifier"]


class KeyCheckRunner:
    """Run one job's corpus through the clustered batch-GCD engine.

    Args:
        config: engine knobs (k, processes, scheduler, backend, chunk
            retry/timeout, fault plan).
        checkpoint_root: per-job checkpoint directories live under here;
            None disables engine checkpointing.
    """

    def __init__(
        self, config: ServiceConfig, checkpoint_root: str | Path | None = None
    ) -> None:
        self._config = config
        self._checkpoint_root = (
            Path(checkpoint_root) if checkpoint_root is not None else None
        )

    def __call__(self, job: JobRecord) -> tuple[JobResult, dict[str, Any]]:
        """Execute the check; returns ``(result, telemetry report dict)``."""
        config = self._config
        checkpoint_dir = (
            self._checkpoint_root / job.job_id
            if self._checkpoint_root is not None
            else None
        )
        engine = ClusteredBatchGcd(
            k=max(1, min(config.engine_k, len(job.moduli))),
            processes=config.engine_processes,
            scheduler=config.engine_scheduler,
            backend=config.engine_backend,
            max_retries=config.engine_max_retries,
            chunk_timeout=config.engine_chunk_timeout,
            checkpoint_dir=checkpoint_dir,
            fault_plan=config.fault_plan,
        )
        job_telemetry = Telemetry()
        with use_telemetry(job_telemetry):
            with job_telemetry.span(
                "service.job", job=job.job_id, moduli=len(job.moduli)
            ):
                outcome = engine.run(job.moduli)
        result = JobResult(
            divisors=tuple(
                (index, outcome.divisors[index])
                for index in outcome.vulnerable_indices
            ),
            factored=tuple(
                sorted(
                    (fact.modulus, fact.p, fact.q)
                    for fact in outcome.resolve().values()
                )
            ),
            moduli_checked=len(job.moduli),
        )
        return result, job_telemetry.report().to_dict()


class WebhookNotifier:
    """Deliver completion callbacks with bounded retry.

    The payload is the job's public dict (status, result, error) POSTed
    as JSON.  Any 2xx response counts as delivered; anything else —
    connection refusal, 5xx, timeout — consumes one attempt and backs
    off exponentially.  Exhausted attempts mark the job's webhook state
    ``gave_up`` (visible in the job record; the result itself is still
    pollable).

    Args:
        max_attempts: delivery attempts per job.
        backoff_base: first retry delay, seconds (doubles per attempt).
        timeout: per-request socket timeout, seconds.
        transport: ``(url, body_bytes) -> status_code`` override for
            tests; the default uses :mod:`urllib.request`.
        sleep: injectable delay function (tests pass a no-op).
    """

    def __init__(
        self,
        *,
        max_attempts: int = 3,
        backoff_base: float = 0.05,
        timeout: float = 5.0,
        transport: Callable[[str, bytes], int] | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.timeout = timeout
        self._transport = transport or self._http_post
        self._sleep = sleep if sleep is not None else _default_sleep

    def _http_post(self, url: str, body: bytes) -> int:
        request = urllib.request.Request(
            url,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.status

    def deliver(self, queue: JobQueue, job: JobRecord) -> bool:
        """Drive delivery for one job to a terminal webhook state."""
        if job.webhook_url is None:
            return True
        body = json.dumps(
            {"event": "job.finished", **job.to_public_dict()}, sort_keys=True
        ).encode("utf-8")
        attempt = job.webhook_attempts
        while attempt < self.max_attempts:
            ok = False
            try:
                status = self._transport(job.webhook_url, body)
                ok = 200 <= status < 300
            except (urllib.error.URLError, OSError, TimeoutError):
                ok = False
            attempt += 1
            queue.record_webhook_attempt(job.job_id, ok)
            if ok:
                return True
            if attempt < self.max_attempts:
                self._sleep(self.backoff_base * (2 ** (attempt - 1)))
        queue.record_webhook_gave_up(job.job_id)
        return False


def _default_sleep(seconds: float) -> None:
    # threading.Event-based sleep is interruptible-friendly and keeps the
    # module clear of direct time.sleep scattering.
    threading.Event().wait(seconds)


class ServiceWorker(threading.Thread):
    """The claim/run/notify loop as a daemon thread.

    Args:
        queue: the shared durable queue.
        runner: ``job -> (result, report_dict)``; defaults to a
            :class:`KeyCheckRunner` built from ``config``.
        notifier: webhook delivery driver (built from ``config`` when
            omitted).
        config: service knobs (used only for the defaults above).
        telemetry: service-level metrics sink.
        idle_wait: condition-wait timeout between claims, seconds.
    """

    def __init__(
        self,
        queue: JobQueue,
        *,
        config: ServiceConfig | None = None,
        runner: Callable[[JobRecord], tuple[JobResult, dict[str, Any]]] | None = None,
        notifier: WebhookNotifier | None = None,
        telemetry: Telemetry | None = None,
        idle_wait: float = 0.25,
    ) -> None:
        super().__init__(name="repro-service-worker", daemon=True)
        if runner is None:
            if config is None:
                raise ValueError("either a runner or a config is required")
            runner = KeyCheckRunner(
                config, checkpoint_root=Path(config.state_dir) / "checkpoints"
            )
        if notifier is None:
            notifier = WebhookNotifier(
                max_attempts=(config.webhook_max_attempts if config else 3),
                backoff_base=(config.webhook_backoff_base if config else 0.05),
            )
        self._queue = queue
        self._runner = runner
        self._notifier = notifier
        self._telemetry = telemetry or Telemetry(enabled=False)
        self._idle_wait = idle_wait
        self._stop_event = threading.Event()
        self.jobs_run = 0

    # -- lifecycle -------------------------------------------------------

    def stop(self, join_timeout: float = 10.0) -> None:
        """Ask the loop to exit and wait for the thread to finish."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=join_timeout)

    def run(self) -> None:
        self._redeliver_pending_webhooks()
        while not self._stop_event.is_set():
            job = self._queue.claim()
            if job is None:
                self._queue.wait_for_work(self._idle_wait)
                continue
            self._run_one(job)

    # -- the loop body ---------------------------------------------------

    def _run_one(self, job: JobRecord) -> None:
        clock = self._telemetry.clock
        started = clock.wall()
        try:
            result, report = self._runner(job)
        except Exception as exc:  # noqa: BLE001 — worker must survive any job
            _, requeued = self._queue.fail(job.job_id, f"{type(exc).__name__}: {exc}")
            if not requeued:
                self._notify(job.job_id)
            return
        finally:
            self.jobs_run += 1
            self._telemetry.observe(
                "service.job_seconds", clock.wall() - started
            )
        self._queue.complete(job.job_id, result, report)
        self._notify(job.job_id)

    def _notify(self, job_id: str) -> None:
        job = self._queue.get(job_id)
        if job is None or job.webhook_url is None:
            return
        self._notifier.deliver(self._queue, job)

    def _redeliver_pending_webhooks(self) -> None:
        """Startup pass: callbacks recorded as owed but never delivered."""
        for job in self._queue.pending_webhooks():
            if self._stop_event.is_set():
                return
            self._notifier.deliver(self._queue, job)
