"""The service's background worker: claim, run, notify — forever.

One :class:`ServiceWorker` thread drains the :class:`~repro.service.queue.JobQueue`:

1. **claim** the oldest runnable job (blocking on the queue's condition
   variable, not polling);
2. **run** it through the :class:`KeyCheckRunner` — by default a
   :class:`~repro.core.clustered.ClusteredBatchGcd` engine run whose
   worker substrate is the fault-tolerant machinery of
   :mod:`repro.faults` (bounded chunk retry, pool rebuild, graceful
   degradation) with a per-job
   :class:`~repro.faults.checkpoint.CheckpointStore` under
   ``<state_dir>/checkpoints/<job_id>/``, so a SIGKILL mid-run resumes
   the *same engine computation* on restart instead of recomputing;
   under ``engine_mode="incremental"`` small jobs are instead served by
   per-modulus inserts into the persistent
   :class:`~repro.numt.incremental.ProductTreeStore` (checked against
   every previously ingested modulus), with bulk jobs falling back to a
   clustered run that re-bootstraps the store;
3. **record** the outcome — the run executes under a private
   :class:`~repro.telemetry.Telemetry` registry whose
   :class:`~repro.telemetry.RunReport` is journalled with the job and
   served at ``GET /v1/jobs/<job_id>/status``;
4. **notify** the webhook, if the job carries one, with bounded retry
   and exponential backoff (:class:`WebhookNotifier`); delivery attempts
   are journalled, so undelivered callbacks survive a restart and are
   re-driven on startup.

A run that raises consumes one of the job's ``max_attempts`` and the job
re-queues (the queue's outer retry loop); exhausted attempts fail the
job terminally, which *also* triggers the webhook — clients learn about
permanent failures, not just successes.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Callable

from repro.core.clustered import ClusteredBatchGcd
from repro.core.results import BatchGcdResult
from repro.numt.incremental import ProductTreeStore
from repro.service.models import JobRecord, JobResult, ServiceConfig
from repro.service.queue import JobQueue
from repro.telemetry import Telemetry, use_telemetry

__all__ = ["KeyCheckRunner", "ServiceWorker", "WebhookNotifier"]

#: Store directory name under the service state dir (incremental mode).
INCREMENTAL_STORE_DIR = "incremental-store"


class KeyCheckRunner:
    """Run one job's corpus through the configured batch-GCD path.

    Under ``engine_mode="clustered"`` (the default) every job is an
    independent :class:`~repro.core.clustered.ClusteredBatchGcd` run over
    its own corpus.  Under ``engine_mode="incremental"`` jobs accumulate
    into one persistent
    :class:`~repro.numt.incremental.ProductTreeStore` under
    ``<state_dir>/incremental-store``, so each modulus is also checked
    against everything previously ingested: jobs of at most
    ``incremental_max_batch`` moduli are served by per-modulus store
    inserts (one O(log n) spine rebuild each instead of a full engine
    run), while bulk jobs run the clustered engine over the union corpus
    and re-bootstrap the store from its result.  Either way a job's
    result indexes only its *own* moduli — the store supplies the
    history they are checked against.  A SIGKILL mid-insert replays from
    the store's journal, and a re-delivered job resumes idempotently
    from its recorded per-job progress.

    Args:
        config: engine knobs (mode, k, processes, scheduler, backend,
            chunk retry/timeout, fault plan).
        checkpoint_root: per-job checkpoint directories live under here;
            None disables engine checkpointing (clustered runs only).
        telemetry: service-level metrics sink (the worker's registry);
            incremental-path jobs count into ``service.jobs_incremental``.
    """

    def __init__(
        self,
        config: ServiceConfig,
        checkpoint_root: str | Path | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._config = config
        self._checkpoint_root = (
            Path(checkpoint_root) if checkpoint_root is not None else None
        )
        self._telemetry = telemetry or Telemetry(enabled=False)

    def _engine(self, corpus_size: int, checkpoint_dir: Path | None) -> ClusteredBatchGcd:
        config = self._config
        return ClusteredBatchGcd(
            k=max(1, min(config.engine_k, corpus_size)),
            processes=config.engine_processes,
            scheduler=config.engine_scheduler,
            backend=config.engine_backend,
            max_retries=config.engine_max_retries,
            chunk_timeout=config.engine_chunk_timeout,
            checkpoint_dir=checkpoint_dir,
            fault_plan=config.fault_plan,
        )

    def open_store(self) -> ProductTreeStore:
        """The persistent corpus store (``engine_mode="incremental"``)."""
        return ProductTreeStore(
            Path(self._config.state_dir) / INCREMENTAL_STORE_DIR,
            backend=self._config.engine_backend,
        )

    def __call__(self, job: JobRecord) -> tuple[JobResult, dict[str, Any]]:
        """Execute the check; returns ``(result, telemetry report dict)``."""
        config = self._config
        checkpoint_dir = (
            self._checkpoint_root / job.job_id
            if self._checkpoint_root is not None
            else None
        )
        job_telemetry = Telemetry()
        with use_telemetry(job_telemetry):
            with job_telemetry.span(
                "service.job", job=job.job_id, moduli=len(job.moduli)
            ):
                if config.engine_mode == "incremental":
                    job_result = self._run_incremental(job, checkpoint_dir)
                else:
                    outcome = self._engine(len(job.moduli), checkpoint_dir).run(
                        job.moduli
                    )
                    job_result = self._result_for(job, outcome, range(len(job.moduli)))
        return job_result, job_telemetry.report().to_dict()

    def _run_incremental(
        self, job: JobRecord, checkpoint_dir: Path | None
    ) -> JobResult:
        store = self.open_store()
        base, applied = store.job_progress(job.job_id) or (store.count, 0)
        bulk = len(job.moduli) - applied > self._config.incremental_max_batch
        if bulk:
            # Bulk ingest: one clustered run over the union corpus, then
            # adopt its divisors wholesale (the store is append-only and
            # the already-applied part of this job is a corpus prefix).
            corpus = store.moduli + list(job.moduli[applied:])
            outcome = self._engine(len(corpus), checkpoint_dir).run(corpus)
            jobs = store.jobs
            jobs[job.job_id] = (base, len(job.moduli))
            store.bootstrap(corpus, outcome.divisors, jobs=jobs)
        else:
            base, _count = store.apply_job(job.job_id, job.moduli)
        self._telemetry.counter("service.jobs_incremental")
        full = BatchGcdResult(store.moduli, store.divisors())
        return self._result_for(
            job, full, range(base, base + len(job.moduli))
        )

    @staticmethod
    def _result_for(
        job: JobRecord, outcome: BatchGcdResult, indices: range
    ) -> JobResult:
        """Project an engine result onto the job's own modulus order."""
        job_moduli = set(job.moduli)
        return JobResult(
            divisors=tuple(
                (offset, outcome.divisors[index])
                for offset, index in enumerate(indices)
                if outcome.divisors[index] > 1
            ),
            factored=tuple(
                sorted(
                    (fact.modulus, fact.p, fact.q)
                    for fact in outcome.resolve().values()
                    if fact.modulus in job_moduli
                )
            ),
            moduli_checked=len(job.moduli),
        )


class WebhookNotifier:
    """Deliver completion callbacks with bounded retry.

    The payload is the job's public dict (status, result, error) POSTed
    as JSON.  Any 2xx response counts as delivered; anything else —
    connection refusal, 5xx, timeout — consumes one attempt and backs
    off exponentially.  Exhausted attempts mark the job's webhook state
    ``gave_up`` (visible in the job record; the result itself is still
    pollable).

    Args:
        max_attempts: delivery attempts per job.
        backoff_base: first retry delay, seconds (doubles per attempt).
        timeout: per-request socket timeout, seconds.
        transport: ``(url, body_bytes) -> status_code`` override for
            tests; the default uses :mod:`urllib.request`.
        sleep: injectable delay function (tests pass a no-op).
    """

    def __init__(
        self,
        *,
        max_attempts: int = 3,
        backoff_base: float = 0.05,
        timeout: float = 5.0,
        transport: Callable[[str, bytes], int] | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.timeout = timeout
        self._transport = transport or self._http_post
        self._sleep = sleep if sleep is not None else _default_sleep

    def _http_post(self, url: str, body: bytes) -> int:
        request = urllib.request.Request(
            url,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.status

    def deliver(self, queue: JobQueue, job: JobRecord) -> bool:
        """Drive delivery for one job to a terminal webhook state."""
        if job.webhook_url is None:
            return True
        body = json.dumps(
            {"event": "job.finished", **job.to_public_dict()}, sort_keys=True
        ).encode("utf-8")
        attempt = job.webhook_attempts
        while attempt < self.max_attempts:
            ok = False
            try:
                status = self._transport(job.webhook_url, body)
                ok = 200 <= status < 300
            except (urllib.error.URLError, OSError, TimeoutError):
                ok = False
            attempt += 1
            queue.record_webhook_attempt(job.job_id, ok)
            if ok:
                return True
            if attempt < self.max_attempts:
                self._sleep(self.backoff_base * (2 ** (attempt - 1)))
        queue.record_webhook_gave_up(job.job_id)
        return False


def _default_sleep(seconds: float) -> None:
    # threading.Event-based sleep is interruptible-friendly and keeps the
    # module clear of direct time.sleep scattering.
    threading.Event().wait(seconds)


class ServiceWorker(threading.Thread):
    """The claim/run/notify loop as a daemon thread.

    Args:
        queue: the shared durable queue.
        runner: ``job -> (result, report_dict)``; defaults to a
            :class:`KeyCheckRunner` built from ``config``.
        notifier: webhook delivery driver (built from ``config`` when
            omitted).
        config: service knobs (used only for the defaults above).
        telemetry: service-level metrics sink.
        idle_wait: condition-wait timeout between claims, seconds.
    """

    def __init__(
        self,
        queue: JobQueue,
        *,
        config: ServiceConfig | None = None,
        runner: Callable[[JobRecord], tuple[JobResult, dict[str, Any]]] | None = None,
        notifier: WebhookNotifier | None = None,
        telemetry: Telemetry | None = None,
        idle_wait: float = 0.25,
    ) -> None:
        super().__init__(name="repro-service-worker", daemon=True)
        service_telemetry = telemetry or Telemetry(enabled=False)
        if runner is None:
            if config is None:
                raise ValueError("either a runner or a config is required")
            runner = KeyCheckRunner(
                config,
                checkpoint_root=Path(config.state_dir) / "checkpoints",
                telemetry=service_telemetry,
            )
        if notifier is None:
            notifier = WebhookNotifier(
                max_attempts=(config.webhook_max_attempts if config else 3),
                backoff_base=(config.webhook_backoff_base if config else 0.05),
            )
        self._queue = queue
        self._runner = runner
        self._notifier = notifier
        self._telemetry = service_telemetry
        self._idle_wait = idle_wait
        self._stop_event = threading.Event()
        self.jobs_run = 0

    # -- lifecycle -------------------------------------------------------

    def stop(self, join_timeout: float = 10.0) -> None:
        """Ask the loop to exit and wait for the thread to finish."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=join_timeout)

    def run(self) -> None:
        self._redeliver_pending_webhooks()
        while not self._stop_event.is_set():
            job = self._queue.claim()
            if job is None:
                self._queue.wait_for_work(self._idle_wait)
                continue
            self._run_one(job)

    # -- the loop body ---------------------------------------------------

    def _run_one(self, job: JobRecord) -> None:
        clock = self._telemetry.clock
        started = clock.wall()
        try:
            result, report = self._runner(job)
        except Exception as exc:  # noqa: BLE001 — worker must survive any job
            _, requeued = self._queue.fail(job.job_id, f"{type(exc).__name__}: {exc}")
            if not requeued:
                self._notify(job.job_id)
            return
        finally:
            self.jobs_run += 1
            self._telemetry.observe(
                "service.job_seconds", clock.wall() - started
            )
        self._queue.complete(job.job_id, result, report)
        self._notify(job.job_id)

    def _notify(self, job_id: str) -> None:
        job = self._queue.get(job_id)
        if job is None or job.webhook_url is None:
            return
        self._notifier.deliver(self._queue, job)

    def _redeliver_pending_webhooks(self) -> None:
        """Startup pass: callbacks recorded as owed but never delivered."""
        for job in self._queue.pending_webhooks():
            if self._stop_event.is_set():
                return
            self._notifier.deliver(self._queue, job)
