"""A miniature SSH substrate: host keys and their compromise.

Table 4 of the paper folds 6.26 M SSH RSA host keys into the batch-GCD
corpus (723 vulnerable), and the non-RSA half of the 2012 disclosures
concerned DSA host keys whose signatures leaked private keys through
nonce reuse.  This package models the host-authentication surface those
keys protect:

- :mod:`repro.ssh.hostkeys` — RSA and DSA host keys, the server's
  host-key proof over the session exchange hash, and client-side
  known-hosts verification.
- :mod:`repro.ssh.attacker` — host impersonation with a key recovered via
  batch GCD (RSA) or nonce reuse (DSA).
"""

from repro.ssh.attacker import HostImpersonator
from repro.ssh.hostkeys import (
    DsaHostKey,
    HostVerificationError,
    KnownHostsClient,
    RsaHostKey,
    SshServer,
)

__all__ = [
    "DsaHostKey",
    "HostImpersonator",
    "HostVerificationError",
    "KnownHostsClient",
    "RsaHostKey",
    "SshServer",
]
