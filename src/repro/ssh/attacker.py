"""Host impersonation with recovered SSH host keys.

The punchline of weak *host* keys: a client that has already pinned the
victim's key (known_hosts) reconnects to the impostor with **no warning at
all**, because the impostor serves the genuine public key and can produce
valid proofs with the recovered private half — whether that half came from
batch GCD (RSA) or from nonce-reuse algebra (DSA).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import dsa
from repro.crypto.rsa import RsaKeyPair, recover_private_key
from repro.ssh.hostkeys import DsaHostKey, RsaHostKey, SshServer

__all__ = ["HostImpersonator"]


@dataclass(slots=True)
class HostImpersonator:
    """Builds impostor SSH servers from recovered key material."""

    def impersonate_rsa(
        self, victim: SshServer, known_factor: int
    ) -> SshServer:
        """Impersonate an RSA-host-keyed victim given one prime factor.

        Raises:
            ValueError: if the factor does not divide the victim's modulus.
        """
        host_key = victim.host_key
        assert isinstance(host_key, RsaHostKey)
        public = host_key.keypair.public
        private = recover_private_key(public.n, public.e, known_factor)
        return SshServer(
            host=victim.host,
            host_key=RsaHostKey(RsaKeyPair(public=public, private=private)),
            version=victim.version,
        )

    def impersonate_dsa_from_signatures(
        self,
        victim: SshServer,
        message1: bytes,
        signature1: tuple[int, int],
        message2: bytes,
        signature2: tuple[int, int],
    ) -> SshServer:
        """Impersonate a DSA-host-keyed victim from two nonce-sharing proofs.

        The two (message, signature) pairs are exactly what two recorded
        key exchanges expose on the wire.

        Raises:
            ValueError: if the signatures do not share a nonce.
        """
        host_key = victim.host_key
        assert isinstance(host_key, DsaHostKey)
        params = host_key.keypair.parameters
        x = dsa.recover_private_key_from_nonce_reuse(
            params,
            message1,
            dsa.DsaSignature(*signature1),
            message2,
            dsa.DsaSignature(*signature2),
        )
        recovered = dsa.DsaKeyPair(parameters=params, x=x, y=host_key.keypair.y)
        return SshServer(
            host=victim.host,
            host_key=DsaHostKey(keypair=recovered),
            version=victim.version,
        )
