"""SSH host keys and host authentication.

Models the part of the SSH transport the weak keys protect: during key
exchange the server signs the session's *exchange hash* with its host key;
the client checks the signature and compares the key against its
known-hosts store (trust-on-first-use).  A recovered host key therefore
lets an attacker impersonate the host to every client that has already
pinned it — no warning is ever shown.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.crypto import dsa
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey

__all__ = [
    "RsaHostKey",
    "DsaHostKey",
    "SshServer",
    "KnownHostsClient",
    "HostVerificationError",
]


class HostVerificationError(Exception):
    """Host authentication failed (bad signature or key mismatch)."""


def exchange_hash(
    client_version: bytes, server_version: bytes, session_nonce: bytes
) -> bytes:
    """The session's exchange hash (the value the host key signs)."""
    return hashlib.sha256(
        client_version + b"|" + server_version + b"|" + session_nonce
    ).digest()


@dataclass(frozen=True, slots=True)
class RsaHostKey:
    """An ssh-rsa host key."""

    keypair: RsaKeyPair

    @property
    def algorithm(self) -> str:
        return "ssh-rsa"

    @property
    def public_blob(self) -> tuple[str, int, int]:
        """(algorithm, e, n) — what appears in known_hosts."""
        return (self.algorithm, self.keypair.public.e, self.keypair.public.n)

    def sign(self, data: bytes, rng: random.Random) -> tuple[int, ...]:
        return (self.keypair.private.sign(data),)

    @staticmethod
    def verify(public_blob, data: bytes, signature: tuple[int, ...]) -> bool:
        _alg, e, n = public_blob
        return RsaPublicKey(n, e).verify(data, signature[0])


@dataclass(frozen=True, slots=True)
class DsaHostKey:
    """An ssh-dss host key.

    ``nonce_source`` models the flaw: None draws a fresh random nonce per
    signature (healthy); a fixed integer reuses it (the entropy hole).
    """

    keypair: dsa.DsaKeyPair
    nonce_source: int | None = None

    @property
    def algorithm(self) -> str:
        return "ssh-dss"

    @property
    def public_blob(self):
        params = self.keypair.parameters
        return (self.algorithm, params.p, params.q, params.g, self.keypair.y)

    def sign(self, data: bytes, rng: random.Random) -> tuple[int, ...]:
        signature = dsa.sign(
            self.keypair, data, nonce=self.nonce_source, rng=rng
        )
        return (signature.r, signature.s)

    @staticmethod
    def verify(public_blob, data: bytes, signature: tuple[int, ...]) -> bool:
        _alg, p, q, g, y = public_blob
        return dsa.verify(
            dsa.DsaParameters(p=p, q=q, g=g),
            y,
            data,
            dsa.DsaSignature(r=signature[0], s=signature[1]),
        )


@dataclass(slots=True)
class SshServer:
    """An SSH endpoint with a host key."""

    host: str
    host_key: RsaHostKey | DsaHostKey
    version: bytes = b"SSH-2.0-device_1.0"

    def key_exchange(self, client_version: bytes, rng: random.Random):
        """One server-side key exchange: nonce, exchange hash, proof."""
        session_nonce = rng.getrandbits(128).to_bytes(16, "big")
        digest = exchange_hash(client_version, self.version, session_nonce)
        signature = self.host_key.sign(digest, rng)
        return session_nonce, digest, signature


@dataclass(slots=True)
class KnownHostsClient:
    """A trust-on-first-use SSH client.

    Attributes:
        known_hosts: host -> pinned public blob.
    """

    version: bytes = b"SSH-2.0-repro_client"
    known_hosts: dict[str, tuple] = field(default_factory=dict)

    def connect(self, server: SshServer, rng: random.Random) -> bytes:
        """Authenticate the host; returns the session's exchange hash.

        Raises:
            HostVerificationError: on a key mismatch (the scary warning) or
                an invalid host-key proof.
        """
        session_nonce, digest, signature = server.key_exchange(self.version, rng)
        expected = exchange_hash(self.version, server.version, session_nonce)
        if digest != expected:
            raise HostVerificationError("exchange hash mismatch")
        blob = server.host_key.public_blob
        pinned = self.known_hosts.get(server.host)
        if pinned is None:
            # Trust on first use: pin the key.
            self.known_hosts[server.host] = blob
        elif pinned != blob:
            raise HostVerificationError(
                f"host key for {server.host} changed (possible MITM)"
            )
        if not type(server.host_key).verify(blob, digest, signature):
            raise HostVerificationError("host-key proof invalid")
        return digest
