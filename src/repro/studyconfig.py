"""Study configuration: scale, seeds, key sizes, and simulation knobs.

One :class:`StudyConfig` object parameterises the entire pipeline.  The
presets trade fidelity for runtime:

- :meth:`StudyConfig.full` — the flagship 1:1000-scale run used by the
  benchmark harness (~80 k distinct moduli; minutes of wall time).
- :meth:`StudyConfig.medium` — 1:5000 scale for examples (tens of seconds).
- :meth:`StudyConfig.tiny` — unit-test scale (seconds).

All counts reported by the analysis layer are *scale-corrected*: every
simulated host carries the divisor of its population as a weight, so tables
and figures read in estimated paper-scale units regardless of preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.devices.population import DivisorLimits
from repro.numt.sieve import first_n_primes
from repro.timeline import STUDY_END, STUDY_START, Month

__all__ = ["StudyConfig"]


@dataclass(frozen=True, slots=True)
class StudyConfig:
    """All knobs for one simulated study.

    Attributes:
        seed: world seed; the whole pipeline is deterministic given it.
        scale: divisor applied to the background HTTPS ecosystem and to all
            corpus-level counts (1000 = the headline 1:1000 run).
        device_limits: per-model population divisor bounds (see
            :func:`repro.devices.population.resolve_divisor`).
        device_prime_bits: prime size for device keys.
        background_prime_bits: prime size for background/web keys (smaller,
            since the background exists only to give the batch GCD a
            realistic corpus).
        openssl_table_size: number of small primes in the OpenSSL
            fingerprint table (None = the authentic 2048; tests shrink it).
        bit_error_rate: per-host-record probability of recording a corrupted
            modulus.  Chosen far above the real-world rate so the Section
            3.3.5 artifact is visible at simulation scale; documented in
            DESIGN.md.
        rimon_hosts: number of simulated Internet-Rimon-intercepted hosts.
        start, end: study window.
        batchgcd_engine: batch-GCD engine — ``"classic"``,
            ``"clustered"``, ``"incremental"``, ``"alltoall"`` or
            ``"auto"`` (the default), which prefers the incremental
            engine when ``batchgcd_store_dir`` is set, the sharded
            all-to-all engine when ``batchgcd_shards`` is set, and
            otherwise derives in-process vs pooled clustered execution
            from corpus size and core count (see
            :mod:`repro.core.select`).
        batchgcd_store_dir: directory for the incremental engine's
            persistent product-tree store (None = in-memory only).
        batchgcd_k: subset count for the clustered batch GCD.
        batchgcd_shards: logical node count for the all-to-all engine's
            simulated sharded deployment (None = not configured; an
            explicit ``engine="alltoall"`` then uses
            :data:`repro.core.alltoall.DEFAULT_SHARDS`).  Setting it
            with an engine that has no shard axis is a configuration
            error — selection raises rather than ignoring it.
        batchgcd_processes: worker processes (None = in-process).
        batchgcd_scheduler: task-graph driver for the clustered engine
            (``"streaming"`` or ``"fanout"``; see
            :mod:`repro.core.clustered`).
        batchgcd_backend: big-int backend name (``"python"``/``"gmpy2"``,
            None = ``$REPRO_NUMT_BACKEND`` or the active default).
        batchgcd_inflight: bound on in-flight task chunks under the
            streaming scheduler (None = twice the worker count).
        batchgcd_max_retries: task-chunk re-submissions before a chunk
            degrades to fault-free in-process execution (see
            :mod:`repro.faults.recovery`).
        batchgcd_chunk_timeout: seconds before an in-flight chunk is
            abandoned and retried (None disables; pooled runs only).
        batchgcd_checkpoint_dir: directory for subset-pass checkpoints so
            a killed run resumes (None disables checkpointing).
        batchgcd_fault_plan: deterministic fault-injection plan — a spec
            string or plan-file path (see :mod:`repro.faults.plan`; None
            defers to ``$REPRO_FAULTS`` and stays off without it).
    """

    seed: int = 2016
    scale: int = 1000
    device_limits: DivisorLimits = field(
        default_factory=lambda: DivisorLimits(device_scale=1000)
    )
    device_prime_bits: int = 128
    background_prime_bits: int = 64
    openssl_table_size: int | None = None
    bit_error_rate: float = 4e-5
    rimon_hosts: int = 24
    start: Month = STUDY_START
    end: Month = STUDY_END
    batchgcd_engine: str = "auto"
    batchgcd_store_dir: str | None = None
    batchgcd_k: int = 16
    batchgcd_shards: int | None = None
    batchgcd_processes: int | None = None
    batchgcd_scheduler: str = "streaming"
    batchgcd_backend: str | None = None
    batchgcd_inflight: int | None = None
    batchgcd_max_retries: int = 2
    batchgcd_chunk_timeout: float | None = None
    batchgcd_checkpoint_dir: str | None = None
    batchgcd_fault_plan: str | None = None

    def openssl_table(self) -> tuple[int, ...] | None:
        """The odd-prime table for OpenSSL-style generation (None = default)."""
        if self.openssl_table_size is None:
            return None
        return first_n_primes(self.openssl_table_size + 1)[1:]

    @classmethod
    def full(cls, seed: int = 2016) -> "StudyConfig":
        """The flagship 1:1000 configuration."""
        return cls(seed=seed)

    @classmethod
    def bench(cls, seed: int = 2016) -> "StudyConfig":
        """Benchmark-harness configuration (~1:10000, ~1-2 minutes).

        Divisor limits are tuned so every figure's vulnerable fleet keeps
        ~14+ simulated units where the paper-scale counts permit (enough
        that e.g. the IP-only Fritz!Box shared-prime extrapolation path is
        exercised with near-certainty), while the whole study fits a single
        pytest session.
        """
        return cls(
            seed=seed,
            scale=10_000,
            device_limits=DivisorLimits(
                device_scale=10_000, min_total_sim=100, max_total_sim=600,
                min_weak_sim=14,
            ),
            device_prime_bits=96,
            background_prime_bits=56,
            openssl_table_size=512,
            bit_error_rate=4e-4,
            rimon_hosts=12,
        )

    @classmethod
    def service(cls, seed: int = 2016) -> "StudyConfig":
        """Engine tuning for the serving layer (:mod:`repro.service`).

        Service jobs are interactive-scale corpora (hundreds to a few
        thousand moduli per submission), so the subset count stays small
        — the engine caps ``k`` at the corpus size anyway — and the
        defaults favour latency over the batch run's throughput posture:
        in-process execution (no pool startup on small jobs; operators
        opt into ``--processes`` for large tenants), the streaming
        scheduler, and modest chunk retry bounds.
        """
        return cls(
            seed=seed,
            batchgcd_k=4,
            batchgcd_processes=None,
            batchgcd_scheduler="streaming",
            batchgcd_max_retries=2,
        )

    @classmethod
    def medium(cls, seed: int = 2016) -> "StudyConfig":
        """Example-sized configuration (~1:5000)."""
        return cls(
            seed=seed,
            scale=5000,
            device_limits=DivisorLimits(
                device_scale=5000, min_total_sim=80, max_total_sim=700,
                min_weak_sim=10,
            ),
            bit_error_rate=2e-4,
        )

    @classmethod
    def tiny(cls, seed: int = 2016) -> "StudyConfig":
        """Unit-test configuration: seconds, not minutes."""
        return cls(
            seed=seed,
            scale=25_000,
            device_limits=DivisorLimits(
                device_scale=25_000, min_total_sim=25, max_total_sim=120,
                min_weak_sim=5,
            ),
            device_prime_bits=64,
            background_prime_bits=48,
            openssl_table_size=64,
            bit_error_rate=1e-3,
            rimon_hosts=6,
            batchgcd_k=4,
        )

    def with_(self, **changes) -> "StudyConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
