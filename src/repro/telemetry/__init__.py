"""Observability for the measurement pipeline: counters, timers, spans, reports.

The paper's Section 3.2 reports detailed accounting — 1089 CPU-hours,
86-minute wall time at k=16 across 22 machines, per-stage corpus sizes.
This package is the reproduction's equivalent instrument panel: a
zero-dependency telemetry layer every stage of :func:`repro.pipeline.run_study`
records into, surfaced at the edges as a JSON :class:`RunReport`
(``--telemetry-json``) or a human-readable summary (``--timings``).

The pieces:

- :class:`Telemetry` — the recording registry: monotonic counters,
  last-value gauges, aggregate wall/CPU timers, and a hierarchical span
  tracer (``with telemetry.span("batch_gcd.products"): ...``).
- :class:`RunReport` / :class:`SpanNode` / :class:`TimerStats` — the
  serialisable snapshot; JSON round-trips and merges across processes
  (:meth:`Telemetry.merge_report` folds a worker's report into the
  parent's open span — see :mod:`repro.core.clustered`).
- :func:`get_telemetry` / :func:`use_telemetry` and the free functions
  :func:`span` / :func:`counter` / :func:`gauge` / :func:`timer` — the
  module-level *active registry*, disabled by default so instrumented
  library code costs almost nothing unless a run opts in.
- :class:`~repro.telemetry.clock.FakeClock` — injectable time for
  deterministic tests.
- :func:`~repro.telemetry.schema.validate_report` — structural validation
  of serialised reports (``python -m repro.telemetry report.json``).

Span names follow the dotted ``stage.substage`` convention documented in
``docs/TELEMETRY.md`` (e.g. ``batch_gcd.task.remainder_tree``).
"""

from repro.telemetry.clock import Clock, FakeClock, SystemClock
from repro.telemetry.registry import (
    Telemetry,
    counter,
    gauge,
    get_telemetry,
    set_telemetry,
    span,
    timer,
    use_telemetry,
)
from repro.telemetry.report import SCHEMA_VERSION, RunReport, SpanNode, TimerStats
from repro.telemetry.schema import validate_report

__all__ = [
    "Clock",
    "FakeClock",
    "RunReport",
    "SCHEMA_VERSION",
    "SpanNode",
    "SystemClock",
    "Telemetry",
    "TimerStats",
    "counter",
    "gauge",
    "get_telemetry",
    "set_telemetry",
    "span",
    "timer",
    "use_telemetry",
    "validate_report",
]
