"""``python -m repro.telemetry REPORT.json`` — validate RunReport files."""

from repro.telemetry.schema import main

if __name__ == "__main__":
    raise SystemExit(main())
