"""Clocks for the telemetry layer.

Every duration the telemetry layer records is taken from a :class:`Clock`,
so tests can inject a :class:`FakeClock` and get bit-identical reports.
The production :class:`SystemClock` pairs the two counters the paper's
accounting needs: ``perf_counter`` for wall time (the "86 minutes" axis)
and ``process_time`` for CPU time (the "1089 CPU hours" axis).
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "FakeClock", "SystemClock"]


@runtime_checkable
class Clock(Protocol):
    """Anything that can report wall and CPU seconds."""

    def wall(self) -> float:
        """Monotonic wall-clock seconds."""
        ...

    def cpu(self) -> float:
        """Process CPU seconds (user + system)."""
        ...


class SystemClock:
    """The real clocks: ``time.perf_counter`` / ``time.process_time``."""

    __slots__ = ()

    def wall(self) -> float:
        return time.perf_counter()

    def cpu(self) -> float:
        return time.process_time()


class FakeClock:
    """A deterministic clock for tests: time moves only via :meth:`advance`.

    Args:
        wall: initial wall reading.
        cpu: initial CPU reading.
    """

    __slots__ = ("_wall", "_cpu")

    def __init__(self, wall: float = 0.0, cpu: float = 0.0) -> None:
        self._wall = wall
        self._cpu = cpu

    def wall(self) -> float:
        return self._wall

    def cpu(self) -> float:
        return self._cpu

    def advance(self, wall: float, cpu: float | None = None) -> None:
        """Advance wall time by ``wall`` and CPU time by ``cpu`` (or ``wall``)."""
        if wall < 0:
            raise ValueError("time cannot move backwards")
        self._wall += wall
        self._cpu += wall if cpu is None else cpu
