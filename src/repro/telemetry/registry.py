"""The telemetry registry: counters, gauges, timers, and the span tracer.

One :class:`Telemetry` instance collects everything a run records and
snapshots it into a :class:`~repro.telemetry.report.RunReport`.  A single
module-level *active* registry (disabled by default) backs the free
functions :func:`span`, :func:`counter`, :func:`gauge` and :func:`timer`,
so instrumented library code never needs a registry threaded through its
signatures — the pipeline activates one around a run via
:func:`use_telemetry` and everything downstream lands in it.

Design constraints (see ``docs/TELEMETRY.md``):

- **near-zero overhead when disabled** — every recording method returns
  immediately after one attribute check, and ``span()``/``timer()`` hand
  back a shared no-op context manager, so the default (disabled) registry
  costs a function call per call site and allocates nothing;
- **process-safe by construction** — registries are per-process; worker
  code records into its own registry and ships the snapshot back to the
  parent, which folds it in with :meth:`Telemetry.merge_report` (see
  :mod:`repro.core.clustered` for the canonical use);
- **deterministic in tests** — durations come from an injectable
  :class:`~repro.telemetry.clock.Clock`.

Counters, gauges and timers are guarded by a lock and safe to record from
threads; the span *stack* belongs to the driving thread (spans opened on
other threads would interleave nonsensically and are not supported).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.telemetry.clock import Clock, SystemClock
from repro.telemetry.report import RunReport, SpanNode, TimerStats

__all__ = [
    "Telemetry",
    "counter",
    "gauge",
    "get_telemetry",
    "set_telemetry",
    "span",
    "timer",
    "use_telemetry",
]


class _NullContext:
    """A reusable no-op context manager for disabled spans and timers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class _SpanHandle:
    """Context manager for one open span."""

    __slots__ = ("_telemetry", "_node", "_start_wall", "_start_cpu")

    def __init__(self, telemetry: "Telemetry", node: SpanNode) -> None:
        self._telemetry = telemetry
        self._node = node

    def __enter__(self) -> SpanNode:
        clock = self._telemetry.clock
        self._telemetry._push(self._node)
        self._start_wall = clock.wall()
        self._start_cpu = clock.cpu()
        return self._node

    def __exit__(self, *exc_info: object) -> None:
        clock = self._telemetry.clock
        self._node.wall_seconds = clock.wall() - self._start_wall
        self._node.cpu_seconds = clock.cpu() - self._start_cpu
        self._telemetry._pop(self._node)


class Telemetry:
    """A recording registry for one run (or one worker process).

    Args:
        enabled: when False, every method is a no-op and :meth:`report`
            returns an empty report flagged ``enabled: false``.
        clock: duration source (defaults to the real clocks).
    """

    def __init__(self, enabled: bool = True, clock: Clock | None = None) -> None:
        self.enabled = enabled
        self.clock: Clock = clock if clock is not None else SystemClock()
        self._lock = threading.Lock()
        self._counters: dict[str, int | float] = {}
        self._gauges: dict[str, int | float] = {}
        self._timers: dict[str, TimerStats] = {}
        self._roots: list[SpanNode] = []
        self._stack: list[SpanNode] = []

    # -- scalar instruments ---------------------------------------------

    def counter(self, name: str, value: int | float = 1) -> None:
        """Add ``value`` to the named monotonic counter."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: int | float) -> None:
        """Set the named gauge to its latest value."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, wall: float, cpu: float = 0.0) -> None:
        """Record one pre-measured observation into the named timer."""
        if not self.enabled:
            return
        with self._lock:
            self._timers.setdefault(name, TimerStats()).observe(wall, cpu)

    def timer(self, name: str):
        """Context manager timing its body into the named aggregate timer."""
        if not self.enabled:
            return _NULL_CONTEXT
        return self._timer_context(name)

    @contextmanager
    def _timer_context(self, name: str) -> Iterator[None]:
        start_wall = self.clock.wall()
        start_cpu = self.clock.cpu()
        try:
            yield
        finally:
            self.observe(
                name, self.clock.wall() - start_wall, self.clock.cpu() - start_cpu
            )

    # -- spans -----------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span; nests under the innermost open span on this registry.

        Usage::

            with telemetry.span("batch_gcd.remainder_tree", bits=n.bit_length()):
                ...
        """
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanHandle(self, SpanNode(name=name, attrs=dict(attrs)))

    def current_span(self) -> SpanNode | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op if none)."""
        if not self.enabled or not self._stack:
            return
        self._stack[-1].attrs.update(attrs)

    def _push(self, node: SpanNode) -> None:
        self._stack.append(node)

    def _pop(self, node: SpanNode) -> None:
        popped = self._stack.pop()
        if popped is not node:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span stack corrupted: closed {node.name!r}, "
                f"expected {popped.name!r}"
            )
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self._roots.append(node)

    # -- reports ---------------------------------------------------------

    def report(self) -> RunReport:
        """Snapshot everything recorded so far (open spans excluded)."""
        with self._lock:
            return RunReport(
                enabled=self.enabled,
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                timers={
                    name: TimerStats.from_dict(t.to_dict())
                    for name, t in self._timers.items()
                },
                spans=list(self._roots),
            )

    def merge_report(self, other: RunReport) -> None:
        """Fold a worker's report in; its spans nest under the open span."""
        if not self.enabled:
            return
        parent = self.current_span()
        with self._lock:
            staging = RunReport(
                counters=self._counters,
                gauges=self._gauges,
                timers=self._timers,
                spans=self._roots,
            )
            staging.merge(other, under=parent)

    def reset(self) -> None:
        """Drop everything recorded (open spans included)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._roots.clear()
            self._stack.clear()


#: The always-disabled default registry; shared, stateless, and cheap.
_DISABLED = Telemetry(enabled=False)
_active: Telemetry = _DISABLED


def get_telemetry() -> Telemetry:
    """The currently active registry (a disabled no-op by default)."""
    return _active


# Workers swap in a private registry via use_telemetry() and merge the
# report back explicitly; the module global is the intended per-process
# context slot, not shared task state.
def set_telemetry(telemetry: Telemetry | None) -> Telemetry:  # reprolint: disable=XPAR001
    """Install a registry as active; returns the previous one."""
    global _active
    previous = _active
    _active = telemetry if telemetry is not None else _DISABLED
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry | None) -> Iterator[Telemetry]:
    """Activate a registry for the dynamic extent of a ``with`` block."""
    previous = set_telemetry(telemetry)
    try:
        yield get_telemetry()
    finally:
        set_telemetry(previous)


def span(name: str, **attrs: Any):
    """Open a span on the active registry."""
    return _active.span(name, **attrs)


def counter(name: str, value: int | float = 1) -> None:
    """Increment a counter on the active registry."""
    _active.counter(name, value)


def gauge(name: str, value: int | float) -> None:
    """Set a gauge on the active registry."""
    _active.gauge(name, value)


def timer(name: str):
    """Time a block into an aggregate timer on the active registry."""
    return _active.timer(name)
