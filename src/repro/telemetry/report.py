"""The :class:`RunReport` — one run's telemetry as a stable, serialisable tree.

A report is plain data: counters, gauges, aggregated timers, and a forest
of completed spans.  It is the unit of transport between processes (a
worker's report pickles/JSON-round-trips and merges into the parent's) and
the artifact the CLIs write with ``--telemetry-json``.  The JSON schema is
documented field-by-field in ``docs/TELEMETRY.md`` and validated by
:mod:`repro.telemetry.schema`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["RunReport", "SpanNode", "TimerStats", "SCHEMA_VERSION"]

#: Version stamped into every serialised report; bump on breaking changes.
SCHEMA_VERSION = 1


@dataclass(slots=True)
class TimerStats:
    """Aggregate statistics for one named timer.

    Attributes:
        count: number of observations.
        wall_seconds: summed wall time across observations.
        cpu_seconds: summed CPU time across observations.
        min_wall_seconds: fastest single observation.
        max_wall_seconds: slowest single observation.
    """

    count: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    min_wall_seconds: float = 0.0
    max_wall_seconds: float = 0.0

    def observe(self, wall: float, cpu: float = 0.0) -> None:
        """Fold in one observation."""
        if self.count == 0 or wall < self.min_wall_seconds:
            self.min_wall_seconds = wall
        if wall > self.max_wall_seconds:
            self.max_wall_seconds = wall
        self.count += 1
        self.wall_seconds += wall
        self.cpu_seconds += cpu

    def merge(self, other: "TimerStats") -> None:
        """Fold another timer's aggregate into this one."""
        if other.count == 0:
            return
        if self.count == 0 or other.min_wall_seconds < self.min_wall_seconds:
            self.min_wall_seconds = other.min_wall_seconds
        if other.max_wall_seconds > self.max_wall_seconds:
            self.max_wall_seconds = other.max_wall_seconds
        self.count += other.count
        self.wall_seconds += other.wall_seconds
        self.cpu_seconds += other.cpu_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "min_wall_seconds": self.min_wall_seconds,
            "max_wall_seconds": self.max_wall_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TimerStats":
        return cls(
            count=int(payload["count"]),
            wall_seconds=float(payload["wall_seconds"]),
            cpu_seconds=float(payload["cpu_seconds"]),
            min_wall_seconds=float(payload["min_wall_seconds"]),
            max_wall_seconds=float(payload["max_wall_seconds"]),
        )


@dataclass(slots=True)
class SpanNode:
    """One completed span in the trace tree.

    Attributes:
        name: dotted ``stage.substage`` name.
        wall_seconds: wall duration.
        cpu_seconds: CPU duration.
        attrs: small JSON-safe metadata (operand sizes, counts, flags).
        children: spans opened while this one was the innermost.
    """

    name: str
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)

    def walk(self) -> Iterator["SpanNode"]:
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "SpanNode | None":
        """First descendant (or self) with the given name."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SpanNode":
        return cls(
            name=str(payload["name"]),
            wall_seconds=float(payload["wall_seconds"]),
            cpu_seconds=float(payload["cpu_seconds"]),
            attrs=dict(payload.get("attrs", {})),
            children=[cls.from_dict(c) for c in payload.get("children", [])],
        )


@dataclass(slots=True)
class RunReport:
    """Everything one run recorded, ready to serialise or merge.

    Attributes:
        enabled: whether the producing registry was recording.
        counters: name -> monotonically accumulated total.
        gauges: name -> last observed value.
        timers: name -> aggregate :class:`TimerStats`.
        spans: completed root spans, in completion order.
    """

    enabled: bool = True
    counters: dict[str, int | float] = field(default_factory=dict)
    gauges: dict[str, int | float] = field(default_factory=dict)
    timers: dict[str, TimerStats] = field(default_factory=dict)
    spans: list[SpanNode] = field(default_factory=list)

    # -- queries ---------------------------------------------------------

    def span_names(self) -> list[str]:
        """Names of the root spans, in order."""
        return [s.name for s in self.spans]

    def find_span(self, name: str) -> SpanNode | None:
        """First span anywhere in the forest with the given name."""
        for root in self.spans:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def total_wall_seconds(self) -> float:
        """Summed wall time of the root spans."""
        return sum(s.wall_seconds for s in self.spans)

    # -- merging ---------------------------------------------------------

    def merge(self, other: "RunReport", under: SpanNode | None = None) -> None:
        """Fold another report (typically a worker's) into this one.

        Counters add, gauges last-write-wins, timers aggregate, and the
        other report's root spans are appended — as children of ``under``
        when given, else as new roots.
        """
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(other.gauges)
        for name, stats in other.timers.items():
            self.timers.setdefault(name, TimerStats()).merge(stats)
        target = under.children if under is not None else self.spans
        target.extend(other.spans)

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "enabled": self.enabled,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {name: t.to_dict() for name, t in sorted(self.timers.items())},
            "spans": [s.to_dict() for s in self.spans],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunReport":
        version = payload.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(f"unsupported telemetry schema version: {version!r}")
        return cls(
            enabled=bool(payload.get("enabled", True)),
            counters=dict(payload.get("counters", {})),
            gauges=dict(payload.get("gauges", {})),
            timers={
                name: TimerStats.from_dict(t)
                for name, t in payload.get("timers", {}).items()
            },
            spans=[SpanNode.from_dict(s) for s in payload.get("spans", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    # -- rendering -------------------------------------------------------

    def render(self, max_depth: int = 2) -> str:
        """Human-readable timing summary (the CLIs' ``--timings`` output)."""
        lines = ["stage                                wall        cpu"]

        def emit(node: SpanNode, depth: int) -> None:
            label = "  " * depth + node.name
            lines.append(
                f"{label:32s} {node.wall_seconds:9.3f}s {node.cpu_seconds:9.3f}s"
            )
            if depth + 1 < max_depth:
                for child in node.children:
                    emit(child, depth + 1)

        for root in self.spans:
            emit(root, 0)
        if self.timers:
            lines.append("")
            lines.append("timer                            count      wall        cpu")
            for name, t in sorted(self.timers.items()):
                lines.append(
                    f"{name:30s} {t.count:7d} {t.wall_seconds:9.3f}s "
                    f"{t.cpu_seconds:9.3f}s"
                )
        if self.counters:
            lines.append("")
            lines.append("counter                          value")
            for name, value in sorted(self.counters.items()):
                lines.append(f"{name:30s} {value:9g}")
        return "\n".join(lines)
