"""Structural validation of serialised RunReports (no third-party deps).

The JSON schema is documented in ``docs/TELEMETRY.md``; this module is the
executable version of that document.  CI's smoke job runs::

    python -m repro.telemetry report.json

which exits non-zero and lists every problem when a report drifts from the
schema.  :func:`validate_report` is also usable as a library (the tests
feed it both good and corrupted reports).
"""

from __future__ import annotations

import json
import sys
from typing import Any

from repro.telemetry.report import SCHEMA_VERSION

__all__ = ["validate_report", "main"]

_TIMER_FIELDS = (
    "count",
    "wall_seconds",
    "cpu_seconds",
    "min_wall_seconds",
    "max_wall_seconds",
)
_SPAN_FIELDS = ("name", "wall_seconds", "cpu_seconds", "attrs", "children")

#: JSON-safe scalar types allowed in counters, gauges and span attrs.
_SCALAR = (int, float, str, bool, type(None))


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_span(span: Any, path: str, problems: list[str]) -> None:
    if not isinstance(span, dict):
        problems.append(f"{path}: span must be an object, got {type(span).__name__}")
        return
    for key in _SPAN_FIELDS:
        if key not in span:
            problems.append(f"{path}: missing field {key!r}")
    name = span.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{path}: name must be a non-empty string")
    elif not all(part for part in name.split(".")):
        problems.append(f"{path}: dotted name {name!r} has an empty segment")
    for key in ("wall_seconds", "cpu_seconds"):
        value = span.get(key)
        if key in span and (not _is_number(value) or value < 0):
            problems.append(f"{path}.{key}: must be a non-negative number")
    attrs = span.get("attrs", {})
    if not isinstance(attrs, dict):
        problems.append(f"{path}.attrs: must be an object")
    else:
        for key, value in attrs.items():
            if not isinstance(value, _SCALAR):
                problems.append(
                    f"{path}.attrs[{key!r}]: must be a JSON scalar, "
                    f"got {type(value).__name__}"
                )
    children = span.get("children", [])
    if not isinstance(children, list):
        problems.append(f"{path}.children: must be a list")
    else:
        label = name if isinstance(name, str) else "?"
        for index, child in enumerate(children):
            _check_span(child, f"{path}.children[{index}] ({label})", problems)


def validate_report(payload: Any) -> list[str]:
    """Check a parsed report against the documented schema.

    Returns:
        A list of human-readable problems; empty means the report is valid.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"report must be a JSON object, got {type(payload).__name__}"]
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        problems.append(
            f"schema_version: expected {SCHEMA_VERSION}, got {version!r}"
        )
    if not isinstance(payload.get("enabled"), bool):
        problems.append("enabled: must be a boolean")
    for section in ("counters", "gauges"):
        mapping = payload.get(section)
        if not isinstance(mapping, dict):
            problems.append(f"{section}: must be an object")
            continue
        for name, value in mapping.items():
            if not _is_number(value):
                problems.append(f"{section}[{name!r}]: must be a number")
    timers = payload.get("timers")
    if not isinstance(timers, dict):
        problems.append("timers: must be an object")
    else:
        for name, stats in timers.items():
            if not isinstance(stats, dict):
                problems.append(f"timers[{name!r}]: must be an object")
                continue
            for key in _TIMER_FIELDS:
                value = stats.get(key)
                if not _is_number(value) or value < 0:
                    problems.append(
                        f"timers[{name!r}].{key}: must be a non-negative number"
                    )
    spans = payload.get("spans")
    if not isinstance(spans, list):
        problems.append("spans: must be a list")
    else:
        for index, span in enumerate(spans):
            _check_span(span, f"spans[{index}]", problems)
    return problems


def main(argv: list[str] | None = None) -> int:
    """Validate report files given on the command line."""
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.telemetry REPORT.json [...]", file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            failed = True
            continue
        problems = validate_report(payload)
        if problems:
            failed = True
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0
