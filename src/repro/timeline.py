"""Monthly timeline arithmetic for the six-year study window.

The paper analyses one representative scan per month from July 2010 through
May 2016.  Everything time-related in the simulation — device deployment,
advisories, Heartbleed, end-of-life dates, scan schedules — is expressed in
:class:`Month` units, which are totally ordered and support integer
arithmetic (``month + 3``, ``b - a``).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Iterator

__all__ = ["Month", "STUDY_START", "STUDY_END", "HEARTBLEED"]


@dataclass(frozen=True, slots=True, order=True)
class Month:
    """A calendar month, ordered and hashable.

    Attributes:
        year: four-digit year.
        month: 1-12.
    """

    year: int
    month: int

    def __post_init__(self) -> None:
        if not 1 <= self.month <= 12:
            raise ValueError(f"month out of range: {self.month}")

    @property
    def index(self) -> int:
        """Months since year 0 (an absolute, order-preserving integer)."""
        return self.year * 12 + (self.month - 1)

    @classmethod
    def from_index(cls, index: int) -> "Month":
        """Inverse of :attr:`index`."""
        return cls(index // 12, index % 12 + 1)

    @classmethod
    def parse(cls, text: str) -> "Month":
        """Parse ``"YYYY-MM"``."""
        year_text, _, month_text = text.partition("-")
        return cls(int(year_text), int(month_text))

    @classmethod
    def from_date(cls, d: date) -> "Month":
        """The month containing a calendar date."""
        return cls(d.year, d.month)

    def first_day(self) -> date:
        """The first calendar day of the month."""
        return date(self.year, self.month, 1)

    def __add__(self, months: int) -> "Month":
        return Month.from_index(self.index + months)

    def __sub__(self, other: "Month | int") -> "Month | int":
        if isinstance(other, Month):
            return self.index - other.index
        return Month.from_index(self.index - other)

    def __str__(self) -> str:
        return f"{self.year:04d}-{self.month:02d}"

    @staticmethod
    def range(start: "Month", end: "Month") -> Iterator["Month"]:
        """Yield months from ``start`` through ``end`` inclusive."""
        for index in range(start.index, end.index + 1):
            yield Month.from_index(index)


#: First month with scan data (EFF SSL Observatory, July 2010).
STUDY_START = Month(2010, 7)
#: Last month with scan data (Censys, May 2016).
STUDY_END = Month(2016, 5)
#: The Heartbleed disclosure month (April 2014) — the single largest drop in
#: vulnerable hosts in the paper's data.
HEARTBLEED = Month(2014, 4)
