"""A miniature TLS substrate: the protocol surface the weak keys expose.

Section 2.1 of the paper lays out the threat model: a server's RSA
certificate key is used either to *decrypt* RSA-key-transport sessions or
to *sign* (EC)DHE key-exchange messages.  A factored certificate key
therefore enables

- **passive decryption** of any recorded RSA-key-exchange session (74 % of
  the vulnerable devices in the paper's final scan support only this), and
- **active impersonation / man-in-the-middle** against either cipher
  family.

This package implements just enough of the handshake to make those attacks
runnable against simulated devices:

- :mod:`repro.tls.suites` — cipher-suite definitions (RSA kex, DHE-RSA).
- :mod:`repro.tls.session` — servers, clients, handshakes, transcripts,
  and (toy) record encryption.
- :mod:`repro.tls.attacker` — the passive eavesdropper and the active
  man in the middle, both armed with nothing but batch-GCD output.

The record cipher is an explicitly toy SHA-256 keystream — the
cryptography under study is the RSA key establishment, not the bulk
cipher.
"""

from repro.tls.attacker import ActiveMitm, PassiveEavesdropper
from repro.tls.fleet import server_for_device
from repro.tls.session import (
    HandshakeFailure,
    SessionTranscript,
    TlsClient,
    TlsServer,
    handshake,
)
from repro.tls.suites import CipherSuite

__all__ = [
    "ActiveMitm",
    "CipherSuite",
    "HandshakeFailure",
    "PassiveEavesdropper",
    "SessionTranscript",
    "TlsClient",
    "TlsServer",
    "handshake",
    "server_for_device",
]
