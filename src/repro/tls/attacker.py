"""Attackers armed with batch-GCD output (the paper's Section 2.1).

- :class:`PassiveEavesdropper` records transcripts off the wire.  Once the
  server's modulus is factored it decrypts every recorded RSA-key-transport
  session; DHE sessions stay opaque (forward secrecy) — exactly the
  distinction behind the paper's "74 % only support RSA key exchange"
  exposure statistic.
- :class:`ActiveMitm` sits on-path and impersonates a server whose key it
  recovered: it can serve the genuine certificate and complete either kind
  of handshake itself, defeating DHE's forward secrecy for live
  connections.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.rsa import RsaPrivateKey, recover_private_key
from repro.tls.session import (
    HandshakeFailure,
    SessionTranscript,
    TlsClient,
    TlsServer,
    derive_master_secret,
    handshake,
    keystream_encrypt,
)
from repro.tls.suites import CipherSuite

__all__ = ["PassiveEavesdropper", "ActiveMitm"]


@dataclass(slots=True)
class PassiveEavesdropper:
    """A wiretap that records sessions and decrypts them after factoring.

    Attributes:
        transcripts: every recorded session, in capture order.
        recovered_keys: modulus -> recovered private key.
    """

    transcripts: list[SessionTranscript] = field(default_factory=list)
    recovered_keys: dict[int, RsaPrivateKey] = field(default_factory=dict)

    def record(self, transcript: SessionTranscript) -> None:
        """Capture one session off the wire."""
        self.transcripts.append(transcript)

    def learn_factor(self, modulus: int, factor: int, e: int = 65537) -> None:
        """Turn one batch-GCD divisor into a usable private key."""
        self.recovered_keys[modulus] = recover_private_key(modulus, e, factor)

    def can_decrypt(self, transcript: SessionTranscript) -> bool:
        """Whether this recorded session is passively decryptable."""
        if transcript.suite is not CipherSuite.RSA:
            return False
        return transcript.certificate.public_key.n in self.recovered_keys

    def decrypt(self, transcript: SessionTranscript) -> list[bytes]:
        """Recover the plaintext application records of one session.

        Raises:
            HandshakeFailure: if the session is not passively decryptable
                (a DHE session, or a key we have not factored).
        """
        if not self.can_decrypt(transcript):
            raise HandshakeFailure(
                "session is not passively decryptable "
                f"(suite={transcript.suite.name})"
            )
        key = self.recovered_keys[transcript.certificate.public_key.n]
        premaster = key.decrypt(transcript.rsa_encrypted_premaster)
        master = derive_master_secret(
            premaster, transcript.client_random, transcript.server_random
        )
        return [
            keystream_encrypt(master, sequence, ciphertext)
            for sequence, ciphertext in enumerate(transcript.records)
        ]

    def decryptable_fraction(self) -> float:
        """Share of recorded sessions this attacker can read."""
        if not self.transcripts:
            return 0.0
        readable = sum(1 for t in self.transcripts if self.can_decrypt(t))
        return readable / len(self.transcripts)


@dataclass(slots=True)
class ActiveMitm:
    """An on-path attacker impersonating a compromised server.

    Holding the recovered private key, the attacker terminates the victim
    client's connection itself — serving the *genuine* certificate — and
    reads everything, regardless of cipher suite.
    """

    recovered_keys: dict[int, RsaPrivateKey] = field(default_factory=dict)

    def learn_factor(self, modulus: int, factor: int, e: int = 65537) -> None:
        """Turn one batch-GCD divisor into a usable private key."""
        self.recovered_keys[modulus] = recover_private_key(modulus, e, factor)

    def impersonate(self, victim: TlsServer) -> TlsServer:
        """An endpoint indistinguishable from the victim server.

        Raises:
            HandshakeFailure: if the victim's key has not been recovered.
        """
        key = self.recovered_keys.get(victim.certificate.public_key.n)
        if key is None:
            raise HandshakeFailure("victim key not recovered")
        return TlsServer(
            certificate=victim.certificate,
            private_key=key,
            suites=victim.suites,
        )

    def intercept(
        self, client: TlsClient, victim: TlsServer, rng: random.Random
    ):
        """Complete the client's handshake in the victim's place."""
        return handshake(client, self.impersonate(victim), rng)
