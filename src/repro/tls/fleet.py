"""Bridging the device world model to live TLS endpoints.

Turns a simulated :class:`~repro.devices.population.Device` into a
:class:`~repro.tls.session.TlsServer`, honouring the model's key-exchange
support — devices flagged ``supports_only_rsa_kex`` (74 % of the paper's
vulnerable devices) negotiate only RSA key transport, and are therefore
passively decryptable once factored.
"""

from __future__ import annotations

from repro.devices.population import Device
from repro.tls.session import TlsServer
from repro.tls.suites import CipherSuite

__all__ = ["server_for_device"]


def server_for_device(device: Device) -> TlsServer:
    """Expose a simulated device as a live TLS endpoint."""
    if device.model.supports_only_rsa_kex:
        suites: tuple[CipherSuite, ...] = (CipherSuite.RSA,)
    else:
        suites = (CipherSuite.RSA, CipherSuite.DHE_RSA)
    return TlsServer(
        certificate=device.certificate,
        private_key=device.key.keypair.private,
        suites=suites,
    )
