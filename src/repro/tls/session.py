"""Handshakes, transcripts, and record protection for the mini-TLS.

The handshake follows the TLS 1.2 RSA / DHE_RSA shapes closely enough for
the paper's attacks to be faithful:

1. ClientHello: client random + offered suites.
2. ServerHello + Certificate: server random, chosen suite, certificate.
3. Key exchange:
   - RSA: client sends ``Enc_serverkey(premaster)``;
   - DHE: server sends ``(p, g, g^x)`` *signed with its certificate key*,
     client replies with ``g^y``.
4. Both sides derive ``master = H(premaster | client_random |
   server_random)`` and protect application records with a SHA-256
   keystream (a stand-in cipher; the security property under study lives
   entirely in step 3).

Everything observable on the wire is captured in a
:class:`SessionTranscript`, which is exactly what the passive attacker
records.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.crypto.certs import Certificate
from repro.crypto.rsa import RsaPrivateKey
from repro.tls.suites import DHE_GENERATOR, DHE_PRIME, CipherSuite

__all__ = [
    "HandshakeFailure",
    "SessionTranscript",
    "TlsClient",
    "TlsServer",
    "handshake",
    "derive_master_secret",
    "keystream_encrypt",
]


class HandshakeFailure(Exception):
    """Raised when negotiation or authentication fails."""


def derive_master_secret(premaster: int, client_random: bytes, server_random: bytes) -> bytes:
    """``H(premaster | randoms)`` — the session's traffic-key root."""
    blob = premaster.to_bytes((premaster.bit_length() + 7) // 8 or 1, "big")
    return hashlib.sha256(blob + client_random + server_random).digest()


def keystream_encrypt(master: bytes, sequence: int, plaintext: bytes) -> bytes:
    """XOR the plaintext with a SHA-256 counter keystream (toy cipher)."""
    out = bytearray()
    counter = 0
    while len(out) < len(plaintext):
        block = hashlib.sha256(
            master + sequence.to_bytes(8, "big") + counter.to_bytes(8, "big")
        ).digest()
        out.extend(block)
        counter += 1
    return bytes(x ^ k for x, k in zip(plaintext, out))


@dataclass(slots=True)
class SessionTranscript:
    """Everything a wiretap sees of one TLS session.

    Attributes:
        suite: the negotiated cipher suite.
        certificate: the server certificate as presented.
        client_random, server_random: hello nonces.
        rsa_encrypted_premaster: the key-transport ciphertext (RSA suites).
        dhe_params: ``(p, g, server_public)`` for DHE suites.
        dhe_signature: the server's RSA signature over its DHE params.
        dhe_client_public: the client's DH share.
        records: encrypted application records, in order.
    """

    suite: CipherSuite
    certificate: Certificate
    client_random: bytes
    server_random: bytes
    rsa_encrypted_premaster: int | None = None
    dhe_params: tuple[int, int, int] | None = None
    dhe_signature: int | None = None
    dhe_client_public: int | None = None
    records: list[bytes] = field(default_factory=list)

    def signed_dhe_blob(self) -> bytes:
        """The bytes the server signed for its DHE parameters."""
        if self.dhe_params is None:
            raise HandshakeFailure("no DHE parameters in this transcript")
        p, g, server_public = self.dhe_params
        return b"|".join(
            [
                self.client_random,
                self.server_random,
                str(p).encode(),
                str(g).encode(),
                str(server_public).encode(),
            ]
        )


@dataclass(slots=True)
class TlsServer:
    """A TLS endpoint: certificate, private key, supported suites.

    ``private_key`` may be None to model a server whose key the simulation
    should never need (the handshake then fails on use, loudly).
    """

    certificate: Certificate
    private_key: RsaPrivateKey | None
    suites: tuple[CipherSuite, ...] = (CipherSuite.RSA, CipherSuite.DHE_RSA)

    def supports(self, suite: CipherSuite) -> bool:
        """Whether this server negotiates the given suite."""
        return suite in self.suites


@dataclass(slots=True)
class TlsClient:
    """A TLS client with a suite preference list."""

    offered: tuple[CipherSuite, ...] = (CipherSuite.DHE_RSA, CipherSuite.RSA)
    verify_certificate: bool = True


@dataclass(slots=True)
class _SessionKeys:
    """Both endpoints' view of the established session."""

    master: bytes
    transcript: SessionTranscript

    def send(self, plaintext: bytes) -> bytes:
        """Encrypt one application record onto the transcript."""
        sequence = len(self.transcript.records)
        ciphertext = keystream_encrypt(self.master, sequence, plaintext)
        self.transcript.records.append(ciphertext)
        return ciphertext


def handshake(
    client: TlsClient, server: TlsServer, rng: random.Random
) -> _SessionKeys:
    """Run a handshake and return the established session.

    Raises:
        HandshakeFailure: when no common suite exists, the certificate is
            unacceptable to the client, a DHE signature fails, or the
            server lacks its private key.
    """
    chosen = next((s for s in client.offered if server.supports(s)), None)
    if chosen is None:
        raise HandshakeFailure("no cipher suite in common")
    if client.verify_certificate and not server.certificate.verify_signature():
        # Self-signed device certificates self-verify; a tampered or
        # key-substituted certificate does not.
        raise HandshakeFailure("certificate signature invalid")

    client_random = rng.getrandbits(256).to_bytes(32, "big")
    server_random = rng.getrandbits(256).to_bytes(32, "big")
    transcript = SessionTranscript(
        suite=chosen,
        certificate=server.certificate,
        client_random=client_random,
        server_random=server_random,
    )

    if chosen is CipherSuite.RSA:
        if server.private_key is None:
            raise HandshakeFailure("server cannot decrypt without its key")
        premaster = rng.randrange(2, server.certificate.public_key.n - 1)
        transcript.rsa_encrypted_premaster = server.certificate.public_key.encrypt(
            premaster
        )
        # The server decrypts to confirm both sides agree.
        if server.private_key.decrypt(transcript.rsa_encrypted_premaster) != premaster:
            raise HandshakeFailure("premaster decryption mismatch")
    else:
        if server.private_key is None:
            raise HandshakeFailure("server cannot sign without its key")
        x = rng.randrange(2, DHE_PRIME - 2)
        y = rng.randrange(2, DHE_PRIME - 2)
        server_public = pow(DHE_GENERATOR, x, DHE_PRIME)
        transcript.dhe_params = (DHE_PRIME, DHE_GENERATOR, server_public)
        transcript.dhe_signature = server.private_key.sign(
            transcript.signed_dhe_blob()
        )
        if client.verify_certificate and not server.certificate.public_key.verify(
            transcript.signed_dhe_blob(), transcript.dhe_signature
        ):
            raise HandshakeFailure("DHE parameter signature invalid")
        transcript.dhe_client_public = pow(DHE_GENERATOR, y, DHE_PRIME)
        premaster = pow(transcript.dhe_client_public, x, DHE_PRIME)
        assert premaster == pow(server_public, y, DHE_PRIME)

    master = derive_master_secret(premaster, client_random, server_random)
    return _SessionKeys(master=master, transcript=transcript)
