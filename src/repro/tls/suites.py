"""Cipher-suite definitions for the miniature TLS substrate.

Only the key-exchange dimension matters to the paper's threat model, so a
suite is essentially "RSA key transport" or "ephemeral Diffie-Hellman
signed by the server's RSA key".
"""

from __future__ import annotations

from enum import Enum

__all__ = ["CipherSuite", "DHE_PRIME", "DHE_GENERATOR"]


class CipherSuite(Enum):
    """The two key-establishment families the paper distinguishes."""

    #: RSA key transport: the client encrypts the premaster secret to the
    #: server's certificate key.  Recorded sessions are passively
    #: decryptable once that key is factored.
    RSA = "TLS_RSA_WITH_TOY_STREAM_SHA256"
    #: Ephemeral Diffie-Hellman, authenticated by an RSA signature from the
    #: certificate key.  Forward-secret against passive attackers; still
    #: impersonable by an active attacker holding the factored key.
    DHE_RSA = "TLS_DHE_RSA_WITH_TOY_STREAM_SHA256"

    @property
    def forward_secret(self) -> bool:
        """Whether a later key compromise exposes recorded traffic."""
        return self is CipherSuite.DHE_RSA


#: A fixed 256-bit safe-prime DHE group (generator 2), standing in for the
#: RFC 3526 groups real stacks negotiate.
DHE_PRIME = 0x8A113EB21A507A9F5F358F853D736F32779613829472FF7E4E2D026E0151FDD7
DHE_GENERATOR = 2
