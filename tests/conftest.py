"""Shared fixtures: RNGs, small prime tables, and a session-scoped study."""

from __future__ import annotations

import random

import pytest

from repro.numt.sieve import first_n_primes
from repro.pipeline import run_study
from repro.studyconfig import StudyConfig
from repro.telemetry import Telemetry


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG, fresh per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def small_openssl_table() -> tuple[int, ...]:
    """A 64-odd-prime table standing in for OpenSSL's 2048 in fast tests."""
    return first_n_primes(65)[1:]


@pytest.fixture(scope="session")
def tiny_config() -> StudyConfig:
    """The unit-test study configuration."""
    return StudyConfig.tiny()


@pytest.fixture(scope="session")
def tiny_study(tiny_config):
    """One tiny end-to-end study shared by all integration tests.

    Runs with telemetry recording so the telemetry integration tests can
    assert on the same study every other test consumes.
    """
    return run_study(tiny_config, telemetry=Telemetry())
